//! Cross-crate model-checking matrix: every algorithm variant, small
//! instances, exhaustive exploration — the repository's strongest
//! automated correctness evidence, in one table-driven test file.

use kex::core::sim::Algorithm;
use kex::sim::explore::{explore, ExploreConfig};
use kex::sim::liveness::check_starvation_freedom;

/// (algorithm, n, k, cycles-bound, adversarial crashes, expect-liveness)
///
/// `cycles: None` explores the infinite-horizon system; `Some(c)` bounds
/// each process to `c` acquisitions (needed where the state space is
/// unbounded or too large). Liveness is checked where meaningful.
struct Case {
    algo: Algorithm,
    n: usize,
    k: usize,
    cycles: Option<u64>,
    failures: usize,
    liveness: bool,
}

const fn case(
    algo: Algorithm,
    n: usize,
    k: usize,
    cycles: Option<u64>,
    failures: usize,
    liveness: bool,
) -> Case {
    Case {
        algo,
        n,
        k,
        cycles,
        failures,
        liveness,
    }
}

fn run(case: &Case) {
    let proto = case.algo.build(case.n, case.k, 64);
    let cfg = ExploreConfig {
        cycles: case.cycles,
        max_failures: case.failures,
        ..ExploreConfig::default()
    };
    let report = explore(proto, &cfg);
    assert!(
        report.is_clean(),
        "{} (n={}, k={}, cycles={:?}, f={}): states={} truncated={} violation={:?} invariant={:?}",
        case.algo.label(),
        case.n,
        case.k,
        case.cycles,
        case.failures,
        report.states,
        report.truncated,
        report.violation,
        report.invariant_failure,
    );
    if case.liveness {
        check_starvation_freedom(&report).unwrap_or_else(|s| {
            panic!(
                "{} (n={}, k={}, f={}): {s}",
                case.algo.label(),
                case.n,
                case.k,
                case.failures
            )
        });
    }
}

#[test]
fn matrix_no_failures() {
    let cases = [
        case(Algorithm::QueueFig1, 3, 1, None, 0, true),
        case(Algorithm::QueueFig1, 3, 2, None, 0, true),
        case(Algorithm::GlobalSpin, 3, 2, None, 0, false), // not starvation-free
        case(Algorithm::CcChain, 3, 1, None, 0, true),
        case(Algorithm::CcChain, 3, 2, None, 0, true),
        case(Algorithm::CcGraceful, 3, 1, None, 0, true),
        case(Algorithm::DsmChain, 2, 1, None, 0, true),
        case(Algorithm::DsmUnboundedChain, 2, 1, Some(3), 0, false),
        case(Algorithm::AssignmentCc, 3, 2, None, 0, true),
    ];
    for c in &cases {
        run(c);
    }
}

#[test]
fn matrix_with_adversarial_crashes() {
    // f <= k-1 everywhere: safety must hold and no survivor may starve.
    let cases = [
        case(Algorithm::QueueFig1, 3, 2, None, 1, true),
        case(Algorithm::CcChain, 3, 2, None, 1, true),
        case(Algorithm::AssignmentCc, 3, 2, None, 1, true),
        case(Algorithm::DsmChain, 3, 2, Some(1), 1, true),
    ];
    for c in &cases {
        run(c);
    }
}

#[test]
fn the_two_reference_negatives_still_hold() {
    // These two *must* fail their respective liveness/safety checks; if
    // an edit ever makes them pass, either something is wrong with the
    // checker or somebody silently "fixed" a deliberate baseline.
    let spin = explore(
        Algorithm::GlobalSpin.build(3, 1, 0),
        &ExploreConfig::default(),
    );
    assert!(spin.is_clean());
    assert!(
        check_starvation_freedom(&spin).is_err(),
        "global-spin is supposed to be starvable"
    );

    let mcs_crash = {
        use kex::sim::prelude::*;
        let mut b = ProtocolBuilder::new(3);
        let root = kex::core::sim::mcs(&mut b);
        b.finish(root, 1)
    };
    let report = explore(
        mcs_crash,
        &ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        },
    );
    assert!(report.is_clean());
    assert!(
        check_starvation_freedom(&report).is_err(),
        "MCS is supposed to wedge behind a dead waiter"
    );
}

#[test]
fn counterexamples_from_the_matrix_are_replayable() {
    // The broken Figure-1 decomposition again, this time asserting the
    // whole tooling chain end to end from the umbrella crate.
    use kex::core::sim::fig1_nonatomic;
    use kex::sim::prelude::*;
    let proto = {
        let mut b = ProtocolBuilder::new(3);
        let root = fig1_nonatomic(&mut b, 1);
        b.finish(root, 1)
    };
    let report = explore(proto.clone(), &ExploreConfig::default());
    let schedule = report.first_counterexample().expect("violation expected");
    assert!(schedule.len() < 100, "BFS counterexamples should be short");
    let trace = kex::sim::replay::replay(proto, &schedule);
    assert!(trace.ends_in_violation());
}

//! Cross-crate model-checking matrix: every algorithm variant, small
//! instances, exhaustive exploration — the repository's strongest
//! automated correctness evidence, in one table-driven test file.

use kex::core::sim::Algorithm;
use kex::sim::explore::{explore, ExploreConfig};
use kex::sim::liveness::check_starvation_freedom;
use kex::sim::replay::replay_with;

/// (algorithm, n, k, cycles-bound, adversarial crashes, expect-liveness)
///
/// `cycles: None` explores the infinite-horizon system; `Some(c)` bounds
/// each process to `c` acquisitions (needed where the state space is
/// unbounded or too large). Liveness is checked where meaningful.
struct Case {
    algo: Algorithm,
    n: usize,
    k: usize,
    cycles: Option<u64>,
    failures: usize,
    liveness: bool,
}

const fn case(
    algo: Algorithm,
    n: usize,
    k: usize,
    cycles: Option<u64>,
    failures: usize,
    liveness: bool,
) -> Case {
    Case {
        algo,
        n,
        k,
        cycles,
        failures,
        liveness,
    }
}

fn run(case: &Case) {
    let proto = case.algo.build(case.n, case.k, 64);
    let cfg = ExploreConfig {
        cycles: case.cycles,
        max_failures: case.failures,
        ..ExploreConfig::default()
    };
    let report = explore(proto.clone(), &cfg);
    if !report.is_clean() {
        // Don't just dump the raw violation: replay the BFS
        // counterexample through the simulator and show the per-process
        // lanes, so the failing interleaving is readable straight from
        // the test log.
        let diagnosis = report
            .first_counterexample()
            .map(|schedule| {
                let trace = replay_with(
                    proto,
                    &schedule,
                    cfg.timing,
                    cfg.cycles,
                    cfg.participants.as_deref(),
                );
                format!(
                    "counterexample ({} labels):\n{}",
                    schedule.len(),
                    trace.render_lanes(case.n)
                )
            })
            .unwrap_or_else(|| "no counterexample schedule recorded (truncated search?)".into());
        panic!(
            "{} (n={}, k={}, cycles={:?}, f={}): states={} truncated={} violation={:?} invariant={:?}\n{diagnosis}",
            case.algo.label(),
            case.n,
            case.k,
            case.cycles,
            case.failures,
            report.states,
            report.truncated,
            report.violation,
            report.invariant_failure,
        );
    }
    if case.liveness {
        check_starvation_freedom(&report).unwrap_or_else(|s| {
            panic!(
                "{} (n={}, k={}, f={}): {s}",
                case.algo.label(),
                case.n,
                case.k,
                case.failures
            )
        });
    }
}

#[test]
fn matrix_no_failures() {
    let cases = [
        case(Algorithm::QueueFig1, 3, 1, None, 0, true),
        case(Algorithm::QueueFig1, 3, 2, None, 0, true),
        case(Algorithm::GlobalSpin, 3, 2, None, 0, false), // not starvation-free
        case(Algorithm::CcChain, 3, 1, None, 0, true),
        case(Algorithm::CcChain, 3, 2, None, 0, true),
        case(Algorithm::CcGraceful, 3, 1, None, 0, true),
        case(Algorithm::DsmChain, 2, 1, None, 0, true),
        case(Algorithm::DsmUnboundedChain, 2, 1, Some(3), 0, false),
        case(Algorithm::AssignmentCc, 3, 2, None, 0, true),
    ];
    for c in &cases {
        run(c);
    }
}

#[test]
fn matrix_with_adversarial_crashes() {
    // f <= k-1 everywhere: safety must hold and no survivor may starve.
    let cases = [
        case(Algorithm::QueueFig1, 3, 2, None, 1, true),
        case(Algorithm::CcChain, 3, 2, None, 1, true),
        case(Algorithm::AssignmentCc, 3, 2, None, 1, true),
        case(Algorithm::DsmChain, 3, 2, Some(1), 1, true),
    ];
    for c in &cases {
        run(c);
    }
}

#[test]
fn the_two_reference_negatives_still_hold() {
    // These two *must* fail their respective liveness/safety checks; if
    // an edit ever makes them pass, either something is wrong with the
    // checker or somebody silently "fixed" a deliberate baseline.
    let spin = explore(
        Algorithm::GlobalSpin.build(3, 1, 0),
        &ExploreConfig::default(),
    );
    assert!(spin.is_clean());
    assert!(
        check_starvation_freedom(&spin).is_err(),
        "global-spin is supposed to be starvable"
    );

    let mcs_crash = {
        use kex::sim::prelude::*;
        let mut b = ProtocolBuilder::new(3);
        let root = kex::core::sim::mcs(&mut b);
        b.finish(root, 1)
    };
    let report = explore(
        mcs_crash,
        &ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        },
    );
    assert!(report.is_clean());
    assert!(
        check_starvation_freedom(&report).is_err(),
        "MCS is supposed to wedge behind a dead waiter"
    );
}

#[test]
fn counterexamples_from_the_matrix_are_replayable() {
    // The broken Figure-1 decomposition again, this time asserting the
    // whole tooling chain end to end from the umbrella crate.
    use kex::core::sim::fig1_nonatomic;
    use kex::sim::prelude::*;
    let proto = {
        let mut b = ProtocolBuilder::new(3);
        let root = fig1_nonatomic(&mut b, 1);
        b.finish(root, 1)
    };
    let report = explore(proto.clone(), &ExploreConfig::default());
    let schedule = report.first_counterexample().expect("violation expected");
    assert!(schedule.len() < 100, "BFS counterexamples should be short");
    let trace = kex::sim::replay::replay(proto.clone(), &schedule);
    assert!(trace.ends_in_violation());
    // The pretty-printer `run()` uses on failure must produce a usable
    // rendering of the same schedule.
    let lanes = replay_with(proto, &schedule, Timing::default(), None, None).render_lanes(3);
    assert!(
        lanes.lines().count() > 1 && lanes.starts_with("step") && lanes.contains("p2"),
        "render_lanes produced no lane output:\n{lanes}"
    );
}

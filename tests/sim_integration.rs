//! Cross-crate integration: every simulator algorithm variant, under both
//! memory models and many schedules, against the safety checker and the
//! theorem bounds.

use kex::core::sim::{tree_depth, Algorithm};
use kex::sim::prelude::*;

/// Run a configuration to quiescence and return the report.
fn run(
    algo: Algorithm,
    n: usize,
    k: usize,
    participants: usize,
    seed: u64,
    cycles: u64,
) -> RunReport {
    let proto = algo.build(n, k, 4096);
    let mut sim = Sim::new(proto, algo.model())
        .cycles(cycles)
        .scheduler(RandomSched::new(seed))
        .participants(0..participants)
        .timing(Timing {
            ncs_steps: 1,
            cs_steps: 2,
        })
        .build();
    let report = sim.run(100_000_000);
    report.assert_safe();
    assert_eq!(
        report.stop,
        StopReason::Quiescent,
        "{} (n={n},k={k}) did not finish",
        algo.label()
    );
    report
}

#[test]
fn every_algorithm_is_safe_at_full_contention() {
    for algo in Algorithm::ALL {
        for seed in 0..5 {
            let report = run(algo, 12, 3, 12, seed, 10);
            assert_eq!(report.total_completed(), 120, "{}", algo.label());
        }
    }
}

#[test]
fn every_algorithm_is_safe_at_low_contention() {
    for algo in Algorithm::ALL {
        let report = run(algo, 12, 3, 2, 7, 15);
        assert_eq!(report.total_completed(), 30, "{}", algo.label());
    }
}

#[test]
fn theorem_1_chain_bound_holds_across_sizes() {
    for (n, k) in [(6, 2), (8, 3), (10, 4)] {
        let mut worst = 0;
        for seed in 0..6 {
            let report = run(Algorithm::CcChain, n, k, n, seed, 15);
            worst = worst.max(report.stats.worst_pair());
        }
        assert!(
            worst <= 7 * (n as u64 - k as u64),
            "Thm 1 violated at (n={n},k={k}): {worst}"
        );
    }
}

#[test]
fn theorem_5_dsm_chain_bound_holds_across_sizes() {
    for (n, k) in [(6, 2), (8, 3)] {
        let mut worst = 0;
        for seed in 0..6 {
            let report = run(Algorithm::DsmChain, n, k, n, seed, 15);
            worst = worst.max(report.stats.worst_pair());
        }
        assert!(
            worst <= 14 * (n as u64 - k as u64),
            "Thm 5 violated at (n={n},k={k}): {worst}"
        );
    }
}

#[test]
fn theorem_2_and_6_tree_bounds_hold() {
    let (n, k) = (16, 2);
    let depth = tree_depth(n, k) as u64;
    let mut worst_cc = 0;
    let mut worst_dsm = 0;
    for seed in 0..6 {
        worst_cc = worst_cc.max(run(Algorithm::CcTree, n, k, n, seed, 10).stats.worst_pair());
        worst_dsm = worst_dsm.max(
            run(Algorithm::DsmTree, n, k, n, seed, 10)
                .stats
                .worst_pair(),
        );
    }
    assert!(worst_cc <= 7 * k as u64 * depth, "Thm 2: {worst_cc}");
    assert!(worst_dsm <= 14 * k as u64 * depth, "Thm 6: {worst_dsm}");
}

#[test]
fn theorem_3_fast_path_is_constant_at_low_contention() {
    // Same k, growing N: the low-contention worst pair must not grow.
    let mut costs = Vec::new();
    for n in [8, 16, 32] {
        let mut worst = 0;
        for seed in 0..4 {
            worst = worst.max(
                run(Algorithm::CcFastPath, n, 2, 2, seed, 15)
                    .stats
                    .worst_pair(),
            );
        }
        costs.push(worst);
    }
    assert_eq!(costs[0], costs[1], "fast-path cost grew with N: {costs:?}");
    assert_eq!(costs[1], costs[2], "fast-path cost grew with N: {costs:?}");
}

#[test]
fn theorem_4_graceful_cost_tracks_contention_not_n() {
    // Fixed N, growing contention: cost should step up roughly with
    // ceil(c/k), and low-contention cost must be far below the full cost.
    let n = 24;
    let k = 2;
    let worst_at = |c: usize| {
        let mut worst = 0;
        for seed in 0..4 {
            worst = worst.max(
                run(Algorithm::CcGraceful, n, k, c, seed, 10)
                    .stats
                    .worst_pair(),
            );
        }
        worst
    };
    let low = worst_at(2);
    let mid = worst_at(8);
    let high = worst_at(24);
    assert!(
        low < mid && mid <= high,
        "no graceful degradation: {low} {mid} {high}"
    );
    // Proportionality check (shape, not constants): cost at c=8 should be
    // well below cost at c=24.
    assert!(
        mid as f64 <= 0.75 * high as f64,
        "cost is not proportional to contention: mid={mid} high={high}"
    );
}

#[test]
fn assignment_names_stay_unique_under_stress() {
    // The Sim's checker validates names in every state; surviving a long
    // random run is the assertion.
    for algo in [Algorithm::AssignmentCc, Algorithm::AssignmentDsm] {
        for seed in 0..5 {
            let report = run(algo, 10, 3, 10, seed, 12);
            assert_eq!(report.total_completed(), 120, "{}", algo.label());
        }
    }
}

#[test]
fn starvation_freedom_survives_a_maximal_adversary() {
    // A scheduler that lets rivals lap the victim 200 times between its
    // steps: the paper's algorithms still deliver the victim's
    // acquisitions (starvation-freedom is scheduler-independent), while
    // the global-spin baseline leaves it spinning.
    let victim = 3;
    let run_with_adversary = |algo: Algorithm, budget: u64| {
        let proto = algo.build(6, 2, 4096);
        let mut sim = Sim::new(proto, algo.model())
            .cycles(5)
            .scheduler(VictimSched::new(victim, 200))
            .timing(Timing {
                ncs_steps: 0,
                cs_steps: 2,
            })
            .build();
        let report = sim.run(budget);
        report.assert_safe();
        report
    };

    for algo in [
        Algorithm::CcChain,
        Algorithm::DsmChain,
        Algorithm::CcFastPath,
        Algorithm::CcGraceful,
        Algorithm::AssignmentCc,
    ] {
        let report = run_with_adversary(algo, 50_000_000);
        assert_eq!(
            report.completed[victim],
            5,
            "{}: victim starved under the adversary",
            algo.label()
        );
        assert_eq!(report.stop, StopReason::Quiescent, "{}", algo.label());
        // And the victim's per-acquisition RMR cost stays bounded even
        // while being lapped 200:1 — the local-spin guarantee.
        let victim_worst = report.stats.proc(victim).pair.max;
        assert!(
            victim_worst <= 14 * 6,
            "{}: victim paid {victim_worst} RMRs under adversity",
            algo.label()
        );
    }
}

#[test]
fn baselines_burn_unboundedly_many_rmrs_under_contention() {
    // The global-spin baseline's worst pair grows with critical-section
    // dwell time; the local-spin algorithms' does not. This is Table 1's
    // "infinity" column made measurable. DSM accounting: without caches
    // every spin read is remote (under CC the divergence shows up with
    // contention churn instead; see the table1 harness).
    let worst_with_dwell = |algo: Algorithm, cs: u32| {
        let proto = algo.build(6, 2, 4096);
        let mut sim = Sim::new(proto, MemoryModel::Dsm)
            .cycles(10)
            .scheduler(RandomSched::new(3))
            .timing(Timing {
                ncs_steps: 0,
                cs_steps: cs,
            })
            .build();
        let report = sim.run(50_000_000);
        report.assert_safe();
        report.stats.worst_pair()
    };
    let spin_short = worst_with_dwell(Algorithm::GlobalSpin, 2);
    let spin_long = worst_with_dwell(Algorithm::GlobalSpin, 2000);
    assert!(
        spin_long > spin_short * 10,
        "global-spin should degrade with dwell time: {spin_short} -> {spin_long}"
    );
    let fig6_short = worst_with_dwell(Algorithm::DsmChain, 2);
    let fig6_long = worst_with_dwell(Algorithm::DsmChain, 2000);
    assert!(
        fig6_long <= fig6_short.max(14 * 4),
        "local-spin must not degrade with dwell time: {fig6_short} -> {fig6_long}"
    );
}

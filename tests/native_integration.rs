//! Cross-crate integration of the native algorithms with real threads:
//! uniform occupancy stress over the whole algorithm family, the process
//! registry, and the resilient-object methodology end to end.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

use kex::core::native::{
    CcChainKex, DsmChainKex, FastPathKex, GracefulKex, KAssignment, ProcessRegistry, QueueKex,
    RawKex, Resilient, SemaphoreKex, TreeKex,
};
use kex::waitfree::{SlotCounter, Snapshot, WfQueue};

fn all_algorithms(n: usize, k: usize) -> Vec<(&'static str, Box<dyn RawKex>)> {
    vec![
        ("cc-chain", Box::new(CcChainKex::new(n, k))),
        ("dsm-chain", Box::new(DsmChainKex::new(n, k))),
        ("cc-tree", Box::new(TreeKex::cc(n, k))),
        ("dsm-tree", Box::new(TreeKex::dsm(n, k))),
        ("cc-fastpath", Box::new(FastPathKex::new(n, k))),
        ("dsm-fastpath", Box::new(FastPathKex::new_dsm(n, k))),
        ("cc-graceful", Box::new(GracefulKex::new(n, k))),
        ("dsm-graceful", Box::new(GracefulKex::new_dsm(n, k))),
        ("fig1-queue", Box::new(QueueKex::new(n, k))),
        ("semaphore", Box::new(SemaphoreKex::new(n, k))),
    ]
}

fn occupancy_stress(kex: &dyn RawKex, cycles: u64) -> (usize, u64) {
    let inside = AtomicUsize::new(0);
    let max = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..kex.n() {
            let (inside, max, total) = (&inside, &max, &total);
            s.spawn(move || {
                for i in 0..cycles {
                    kex.acquire(p);
                    let now = inside.fetch_add(1, SeqCst) + 1;
                    max.fetch_max(now, SeqCst);
                    total.fetch_add(1, SeqCst);
                    for _ in 0..((p + i as usize) % 32) {
                        std::hint::spin_loop();
                    }
                    inside.fetch_sub(1, SeqCst);
                    kex.release(p);
                }
            });
        }
    });
    (max.load(SeqCst), total.load(SeqCst) as u64)
}

#[test]
fn every_native_algorithm_respects_its_bound() {
    for (name, kex) in all_algorithms(10, 3) {
        let (max, total) = occupancy_stress(&*kex, 200);
        assert!(max <= 3, "{name}: {max} threads inside at once");
        assert_eq!(total, 2000, "{name}: lost acquisitions");
    }
}

#[test]
fn every_native_algorithm_works_with_k_equal_one() {
    for (name, kex) in all_algorithms(6, 1) {
        let (max, total) = occupancy_stress(&*kex, 150);
        assert_eq!(max, 1, "{name} must reduce to mutual exclusion");
        assert_eq!(total, 900, "{name}");
    }
}

#[test]
fn registry_feeds_the_algorithms() {
    let registry = ProcessRegistry::new(8);
    let kex = FastPathKex::new(8, 2);
    let inside = AtomicUsize::new(0);
    let max = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let (registry, kex, inside, max) = (registry.clone(), &kex, &inside, &max);
            s.spawn(move || {
                let id = registry.register().expect("id available");
                for _ in 0..200 {
                    let _g = kex.enter(id.get());
                    let now = inside.fetch_add(1, SeqCst) + 1;
                    max.fetch_max(now, SeqCst);
                    inside.fetch_sub(1, SeqCst);
                }
            });
        }
    });
    assert!(max.load(SeqCst) <= 2);
}

#[test]
fn resilient_wait_free_queue_conserves_items() {
    // The paper's methodology with a real wait-free payload: a 3-process
    // wait-free queue (universal construction) made 10-process and
    // 2-resilient by the wrapper.
    let n = 10;
    let k = 3;
    let per = 200u32;
    let q = Resilient::new(n, k, WfQueue::<u32>::new(k));
    let popped: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let q = &q;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        q.with(p, |q, name| q.enqueue(name, (p as u32) * 10_000 + i));
                        if let Some(v) = q.with(p, |q, name| q.dequeue(name)) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut all: Vec<u32> = popped.into_iter().flatten().collect();
    while let Some(v) = q.with(0, |q, name| q.dequeue(name)) {
        all.push(v);
    }
    assert_eq!(all.len(), n * per as usize, "items lost or duplicated");
    let set: HashSet<_> = all.iter().collect();
    assert_eq!(set.len(), all.len(), "duplicates");
}

#[test]
fn resilient_snapshot_scans_are_coherent() {
    let n = 8;
    let k = 4;
    let snap = Resilient::new(n, k, Snapshot::<u64>::new(k));
    std::thread::scope(|s| {
        for p in 0..n {
            let snap = &snap;
            s.spawn(move || {
                for i in 1..=100u64 {
                    snap.with(p, |obj, name| {
                        obj.update(name, i);
                        let view = obj.scan();
                        assert_eq!(view.len(), k);
                        // Our own register must reflect our write.
                        assert!(view[name] >= i.min(1));
                    });
                }
            });
        }
    });
}

#[test]
fn resilient_counter_under_churning_identities() {
    // Threads come and go, recycling process ids through the registry —
    // the long-lived property in action.
    let registry = ProcessRegistry::new(4);
    let counter = Resilient::new(4, 2, SlotCounter::new(2));
    for _wave in 0..5 {
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (registry, counter) = (registry.clone(), &counter);
                s.spawn(move || {
                    let id = registry.register().expect("wave fits");
                    for _ in 0..500 {
                        counter.with(id.get(), |c, name| c.add(name, 1));
                    }
                });
            }
        });
    }
    assert_eq!(counter.object_unguarded().read(), 5 * 4 * 500);
}

#[test]
fn assignment_names_are_unique_across_algorithm_choices() {
    for kex in [
        Box::new(CcChainKex::new(6, 2)) as Box<dyn RawKex>,
        Box::new(TreeKex::dsm(6, 2)),
        Box::new(GracefulKex::new(6, 2)),
    ] {
        let assign = KAssignment::over(kex);
        let held = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for p in 0..6 {
                let (assign, held) = (&assign, &held);
                s.spawn(move || {
                    for _ in 0..200 {
                        let g = assign.enter(p);
                        assert!(held.lock().unwrap().insert(g.name()), "dup name");
                        std::hint::spin_loop();
                        held.lock().unwrap().remove(&g.name());
                    }
                });
            }
        });
    }
}

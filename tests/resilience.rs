//! The resiliency story, verified from both sides:
//! `k-1` failures are survivable (for the paper's algorithms), the
//! `k`-th is not (for anyone), and the Figure-1 queue baseline is not
//! even 1-resilient.

use kex::core::sim::Algorithm;
use kex::sim::prelude::*;

/// Run with `f` processes crashing the first time they are inside their
/// critical sections; return completed acquisitions of the survivors.
fn run_with_crashes(algo: Algorithm, n: usize, k: usize, f: usize, seed: u64) -> RunReport {
    let proto = algo.build(n, k, 4096);
    let mut sim = Sim::new(proto, algo.model())
        .cycles(10)
        .scheduler(RandomSched::new(seed))
        .failures(FailurePlan::crash_in_cs(0..f))
        .timing(Timing {
            ncs_steps: 1,
            cs_steps: 2,
        })
        .build();
    let report = sim.run(20_000_000);
    report.assert_safe();
    report
}

#[test]
fn local_spin_algorithms_survive_k_minus_1_cs_crashes() {
    for algo in [
        Algorithm::CcChain,
        Algorithm::CcTree,
        Algorithm::CcFastPath,
        Algorithm::CcGraceful,
        Algorithm::DsmChain,
        Algorithm::DsmTree,
        Algorithm::DsmFastPath,
        Algorithm::DsmGraceful,
        Algorithm::AssignmentCc,
        Algorithm::AssignmentDsm,
    ] {
        for seed in 0..3 {
            let (n, k) = (8, 3);
            let report = run_with_crashes(algo, n, k, k - 1, seed);
            // The 6 survivors must all finish their 10 cycles.
            for p in (k - 1)..n {
                assert_eq!(
                    report.completed[p],
                    10,
                    "{}: survivor {p} blocked (seed {seed})",
                    algo.label()
                );
            }
        }
    }
}

#[test]
fn k_crashes_block_everyone() {
    // Negative control: with all k slots held by crashed processes, no
    // survivor can complete another acquisition — the promised resilience
    // is exactly k-1, not k.
    let (n, k) = (6, 2);
    let proto = Algorithm::CcFastPath.build(n, k, 0);
    let mut sim = Sim::new(proto, MemoryModel::CacheCoherent)
        .cycles(10)
        .scheduler(RandomSched::new(1))
        .failures(FailurePlan::crash_in_cs(0..k))
        .timing(Timing {
            ncs_steps: 0,
            cs_steps: 1,
        })
        .build();
    let report = sim.run(2_000_000);
    report.assert_safe();
    // The run cannot quiesce: survivors spin forever.
    assert_eq!(report.stop, StopReason::StepBudget);
    let survivor_completed: u64 = report.completed[k..].iter().sum();
    // Survivors may have slipped a few acquisitions in before both
    // crashes landed, but cannot all finish.
    assert!(
        report.completed[k..].iter().any(|&c| c < 10),
        "some survivor should be blocked; completed = {:?}",
        report.completed
    );
    let _ = survivor_completed;
}

#[test]
fn a_waiting_crash_costs_exactly_one_slot_everywhere() {
    // A crash while waiting (after the entry decrement) consumes one of
    // the k slots in *every* counting algorithm — atomic Figure 1
    // included — and the survivors keep going through the remaining
    // slots. The paper's objection to Figure 1 is implementability, not
    // this; see `naive_fig1_decomposition_is_broken`.
    for algo in [
        Algorithm::QueueFig1,
        Algorithm::CcChain,
        Algorithm::DsmChain,
    ] {
        let proto = algo.build(4, 2, 0);
        let mut plan = FailurePlan::new();
        plan.push(FailureSpec {
            pid: 0,
            when: FailWhen::WhileContending { after_own_steps: 3 },
        });
        let mut sim = Sim::new(proto, algo.model())
            .cycles(50)
            .scheduler(RandomSched::new(5))
            .failures(plan)
            .timing(Timing {
                ncs_steps: 0,
                cs_steps: 4,
            })
            .build();
        let report = sim.run(20_000_000);
        report.assert_safe();
        for p in 1..4 {
            assert_eq!(
                report.completed[p],
                50,
                "{}: survivor {p} blocked",
                algo.label()
            );
        }
    }
}

#[test]
fn naive_fig1_decomposition_is_broken() {
    // Removing Figure 1's atomic brackets — i.e. trying to run it on
    // realistic single-word primitives without further synchronization —
    // lets the model checker find a k-exclusion violation with no
    // failures at all. This is the paper's argument for why the queue
    // approach needs either unrealistic hardware or a lock.
    use kex::core::sim::fig1_nonatomic;
    let mut b = ProtocolBuilder::new(3);
    let root = fig1_nonatomic(&mut b, 1);
    let proto = b.finish(root, 1);
    let report = kex::sim::explore::explore(proto, &ExploreConfig::default());
    assert!(
        report.violation.is_some(),
        "the naive decomposition should violate k-exclusion"
    );
}

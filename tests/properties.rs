//! Property-based tests (proptest): random `(n, k, seed, schedule)`
//! configurations against the core invariants.

use proptest::prelude::*;

use kex::core::native::TasRenaming;
use kex::core::sim::Algorithm;
use kex::sim::prelude::*;

/// Strategy: a random algorithm variant.
fn algorithm() -> impl Strategy<Value = Algorithm> {
    prop::sample::select(Algorithm::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Safety holds and runs quiesce for every algorithm under random
    /// instance sizes, participant sets, dwell times, and schedules.
    #[test]
    fn any_configuration_is_safe_and_quiescent(
        algo in algorithm(),
        n in 3usize..12,
        k_frac in 1usize..100,
        participants_frac in 1usize..100,
        seed in any::<u64>(),
        ncs in 0u32..3,
        cs in 0u32..4,
    ) {
        let k = 1 + k_frac % (n - 1);
        let participants = 1 + participants_frac % n;
        let proto = algo.build(n, k, 4096);
        let mut sim = Sim::new(proto, algo.model())
            .cycles(6)
            .scheduler(RandomSched::new(seed))
            .participants(0..participants)
            .timing(Timing { ncs_steps: ncs, cs_steps: cs })
            .build();
        let report = sim.run(50_000_000);
        prop_assert!(report.violation.is_none(), "{}: {:?}", algo.label(), report.violation);
        prop_assert_eq!(report.stop, StopReason::Quiescent, "{} hung", algo.label());
        prop_assert_eq!(report.total_completed(), 6 * participants as u64);
    }

    /// The Theorem-1 RMR bound holds for random chain instances.
    #[test]
    fn chain_rmr_bound_holds(
        n in 3usize..10,
        k_frac in 1usize..100,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_frac % (n - 1);
        let proto = Algorithm::CcChain.build(n, k, 0);
        let mut sim = Sim::new(proto, MemoryModel::CacheCoherent)
            .cycles(10)
            .scheduler(RandomSched::new(seed))
            .build();
        let report = sim.run(50_000_000);
        prop_assert!(report.violation.is_none());
        prop_assert!(
            report.stats.worst_pair() <= 7 * (n as u64 - k as u64),
            "worst {} > 7(N-k) = {}",
            report.stats.worst_pair(),
            7 * (n as u64 - k as u64)
        );
    }

    /// The Theorem-5 DSM bound holds for random Figure-6 chains.
    #[test]
    fn dsm_chain_rmr_bound_holds(
        n in 3usize..8,
        k_frac in 1usize..100,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_frac % (n - 1);
        let proto = Algorithm::DsmChain.build(n, k, 0);
        let mut sim = Sim::new(proto, MemoryModel::Dsm)
            .cycles(10)
            .scheduler(RandomSched::new(seed))
            .build();
        let report = sim.run(50_000_000);
        prop_assert!(report.violation.is_none());
        prop_assert!(
            report.stats.worst_pair() <= 14 * (n as u64 - k as u64),
            "worst {} > 14(N-k)",
            report.stats.worst_pair(),
        );
    }

    /// Sequential renaming always yields names in range, and a full
    /// acquire-all yields a permutation of 0..k.
    #[test]
    fn renaming_dense_permutation(k in 1usize..12) {
        let r = TasRenaming::new(k);
        let mut names: Vec<usize> = (0..k).map(|_| r.acquire_name()).collect();
        names.sort_unstable();
        let expect: Vec<usize> = (0..k).collect();
        prop_assert_eq!(names, expect);
    }

    /// Random acquire/release interleavings never hand out a held name
    /// and never exceed k outstanding names.
    #[test]
    fn renaming_long_lived_uniqueness(
        k in 1usize..8,
        script in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let r = TasRenaming::new(k);
        let mut held: Vec<usize> = Vec::new();
        for acquire in script {
            if acquire && held.len() < k {
                let name = r.acquire_name();
                prop_assert!(name < k, "name {} out of range", name);
                prop_assert!(!held.contains(&name), "name {} already held", name);
                held.push(name);
            } else if let Some(name) = held.pop() {
                r.release_name(name);
            }
        }
    }

    /// Random crash placements never break safety (k-exclusion and name
    /// uniqueness hold no matter who dies where).
    #[test]
    fn crashes_never_break_safety(
        algo in algorithm(),
        seed in any::<u64>(),
        crash_steps in prop::collection::vec(1u64..200, 1..3),
    ) {
        let (n, k) = (8, 3);
        let mut plan = FailurePlan::new();
        for (i, &steps) in crash_steps.iter().enumerate() {
            plan.push(FailureSpec { pid: i, when: FailWhen::AfterOwnSteps(steps) });
        }
        let proto = algo.build(n, k, 4096);
        let mut sim = Sim::new(proto, algo.model())
            .cycles(8)
            .scheduler(RandomSched::new(seed))
            .failures(plan)
            .build();
        // Runs may wedge (fig1 does); we only demand safety.
        let report = sim.run(2_000_000);
        prop_assert!(report.violation.is_none(), "{}: {:?}", algo.label(), report.violation);
    }
}

//! Property-style tests: seeded random `(n, k, seed, schedule)`
//! configurations against the core invariants.
//!
//! A fixed PRNG stream drives the "random" inputs, so every case is
//! deterministic and failures reproduce exactly without an external
//! property-testing runtime.

use kex_util::rng::SmallRng;

use kex::core::native::TasRenaming;
use kex::core::sim::Algorithm;
use kex::sim::prelude::*;

fn pick_algorithm(gen: &mut SmallRng) -> Algorithm {
    Algorithm::ALL[gen.gen_range(0..Algorithm::ALL.len())]
}

/// Safety holds and runs quiesce for every algorithm under random
/// instance sizes, participant sets, dwell times, and schedules.
#[test]
fn any_configuration_is_safe_and_quiescent() {
    let mut gen = SmallRng::seed_from_u64(0x5AFE01);
    for _ in 0..48 {
        let algo = pick_algorithm(&mut gen);
        let n = gen.gen_range(3..12);
        let k = 1 + gen.gen_range(1..100) % (n - 1);
        let participants = 1 + gen.gen_range(1..100) % n;
        let seed = gen.next_u64();
        let ncs = gen.gen_range(0..3) as u32;
        let cs = gen.gen_range(0..4) as u32;
        let proto = algo.build(n, k, 4096);
        let mut sim = Sim::new(proto, algo.model())
            .cycles(6)
            .scheduler(RandomSched::new(seed))
            .participants(0..participants)
            .timing(Timing {
                ncs_steps: ncs,
                cs_steps: cs,
            })
            .build();
        let report = sim.run(50_000_000);
        assert!(
            report.violation.is_none(),
            "{}: {:?} (n={n} k={k} seed={seed})",
            algo.label(),
            report.violation
        );
        assert_eq!(
            report.stop,
            StopReason::Quiescent,
            "{} hung (n={n} k={k} seed={seed})",
            algo.label()
        );
        assert_eq!(report.total_completed(), 6 * participants as u64);
    }
}

/// The Theorem-1 RMR bound holds for random chain instances.
#[test]
fn chain_rmr_bound_holds() {
    let mut gen = SmallRng::seed_from_u64(0x7B01);
    for _ in 0..24 {
        let n = gen.gen_range(3..10);
        let k = 1 + gen.gen_range(1..100) % (n - 1);
        let seed = gen.next_u64();
        let proto = Algorithm::CcChain.build(n, k, 0);
        let mut sim = Sim::new(proto, MemoryModel::CacheCoherent)
            .cycles(10)
            .scheduler(RandomSched::new(seed))
            .build();
        let report = sim.run(50_000_000);
        assert!(report.violation.is_none());
        assert!(
            report.stats.worst_pair() <= 7 * (n as u64 - k as u64),
            "worst {} > 7(N-k) = {} (n={n} k={k} seed={seed})",
            report.stats.worst_pair(),
            7 * (n as u64 - k as u64)
        );
    }
}

/// The Theorem-5 DSM bound holds for random Figure-6 chains.
#[test]
fn dsm_chain_rmr_bound_holds() {
    let mut gen = SmallRng::seed_from_u64(0x7B05);
    for _ in 0..24 {
        let n = gen.gen_range(3..8);
        let k = 1 + gen.gen_range(1..100) % (n - 1);
        let seed = gen.next_u64();
        let proto = Algorithm::DsmChain.build(n, k, 0);
        let mut sim = Sim::new(proto, MemoryModel::Dsm)
            .cycles(10)
            .scheduler(RandomSched::new(seed))
            .build();
        let report = sim.run(50_000_000);
        assert!(report.violation.is_none());
        assert!(
            report.stats.worst_pair() <= 14 * (n as u64 - k as u64),
            "worst {} > 14(N-k) (n={n} k={k} seed={seed})",
            report.stats.worst_pair(),
        );
    }
}

/// Sequential renaming always yields names in range, and a full
/// acquire-all yields a permutation of 0..k.
#[test]
fn renaming_dense_permutation() {
    for k in 1usize..12 {
        let r = TasRenaming::new(k);
        let mut names: Vec<usize> = (0..k).map(|_| r.acquire_name()).collect();
        names.sort_unstable();
        let expect: Vec<usize> = (0..k).collect();
        assert_eq!(names, expect);
    }
}

/// Random acquire/release interleavings never hand out a held name and
/// never exceed k outstanding names.
#[test]
fn renaming_long_lived_uniqueness() {
    let mut gen = SmallRng::seed_from_u64(0x4E4A);
    for _ in 0..32 {
        let k = gen.gen_range(1..8);
        let script_len = gen.gen_range(1..200);
        let r = TasRenaming::new(k);
        let mut held: Vec<usize> = Vec::new();
        for _ in 0..script_len {
            let acquire = gen.gen_bool(0.5);
            if acquire && held.len() < k {
                let name = r.acquire_name();
                assert!(name < k, "name {name} out of range (k={k})");
                assert!(!held.contains(&name), "name {name} already held");
                held.push(name);
            } else if let Some(name) = held.pop() {
                r.release_name(name);
            }
        }
    }
}

/// Random crash placements never break safety (k-exclusion and name
/// uniqueness hold no matter who dies where).
#[test]
fn crashes_never_break_safety() {
    let mut gen = SmallRng::seed_from_u64(0xC4A54);
    for _ in 0..24 {
        let algo = pick_algorithm(&mut gen);
        let seed = gen.next_u64();
        let crashes = gen.gen_range(1..3);
        let (n, k) = (8, 3);
        let mut plan = FailurePlan::new();
        for i in 0..crashes {
            let steps = gen.gen_range(1..200) as u64;
            plan.push(FailureSpec {
                pid: i,
                when: FailWhen::AfterOwnSteps(steps),
            });
        }
        let proto = algo.build(n, k, 4096);
        let mut sim = Sim::new(proto, algo.model())
            .cycles(8)
            .scheduler(RandomSched::new(seed))
            .failures(plan)
            .build();
        // Runs may wedge (fig1 does); we only demand safety.
        let report = sim.run(2_000_000);
        assert!(
            report.violation.is_none(),
            "{}: {:?} (seed={seed})",
            algo.label(),
            report.violation
        );
    }
}

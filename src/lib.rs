//! # kex — resilient, scalable shared objects via local-spin k-exclusion
//!
//! Umbrella crate for the reproduction of Anderson & Moir, *"Using
//! k-Exclusion to Implement Resilient, Scalable Shared Objects"*
//! (PODC 1994). It re-exports the three component crates:
//!
//! * [`core`] (`kex-core`) — the paper's k-exclusion, renaming,
//!   k-assignment, and resilient-object algorithms, in both
//!   statement-exact simulator form and native-atomics form.
//! * [`sim`] (`kex-sim`) — the shared-memory simulator with remote-
//!   memory-reference accounting, failure injection, and a model checker.
//! * [`waitfree`] (`kex-waitfree`) — wait-free k-process objects to wrap.
//!
//! See the repository's `README.md` for the quickstart, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and theorem bound.
//!
//! ```rust
//! use kex::core::native::Resilient;
//! use kex::waitfree::SlotCounter;
//!
//! // 16 threads; tolerate up to 2 crash failures (k = 3).
//! let counter = Resilient::new(16, 3, SlotCounter::new(3));
//! counter.with(5, |c, name| c.add(name, 1));
//! assert_eq!(counter.object_unguarded().read(), 1);
//! ```

#![warn(missing_docs)]

pub use kex_core as core;
pub use kex_sim as sim;
pub use kex_waitfree as waitfree;

/// Runtime observability (`kex-obs`): spans, counters, RMR estimators,
/// and the JSON snapshot. Only present with `--features obs`, which also
/// routes every algorithm's atomics through the instrumented backend;
/// see `docs/OBSERVABILITY.md`.
#[cfg(feature = "obs")]
pub use kex_obs as obs;

//! Drive the model checker from the command line: exhaustively verify an
//! algorithm instance (safety + starvation-freedom), or watch it produce
//! a replayable counterexample for the broken Figure-1 decomposition.
//!
//! Usage:
//! ```sh
//! cargo run --release --example model_check               # defaults
//! cargo run --release --example model_check -- cc-chain 3 2 1
//! cargo run --release --example model_check -- fig1-nonatomic 3 1
//! ```
//! Arguments: `<algorithm> <N> <k> [max_failures]`, with algorithms
//! `cc-chain | dsm-chain | cc-fastpath | cc-graceful | fig1 |
//! fig1-nonatomic | global-spin | assign-cc`.

use std::sync::Arc;
use std::time::Instant;

use kex::core::sim::{fig1_nonatomic, Algorithm};
use kex::sim::explore::{explore, ExploreConfig};
use kex::sim::liveness::check_starvation_freedom;
use kex::sim::prelude::*;

fn build(name: &str, n: usize, k: usize) -> Arc<Protocol> {
    match name {
        "cc-chain" => Algorithm::CcChain.build(n, k, 0),
        "dsm-chain" => Algorithm::DsmChain.build(n, k, 0),
        "cc-fastpath" => Algorithm::CcFastPath.build(n, k, 0),
        "cc-graceful" => Algorithm::CcGraceful.build(n, k, 0),
        "fig1" => Algorithm::QueueFig1.build(n, k, 0),
        "global-spin" => Algorithm::GlobalSpin.build(n, k, 0),
        "assign-cc" => Algorithm::AssignmentCc.build(n, k, 0),
        "fig1-nonatomic" => {
            let mut b = ProtocolBuilder::new(n);
            let root = fig1_nonatomic(&mut b, k);
            b.finish(root, k)
        }
        other => {
            eprintln!("unknown algorithm '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("cc-chain");
    let n: usize = args.get(1).map_or(3, |s| s.parse().expect("N"));
    let k: usize = args.get(2).map_or(1, |s| s.parse().expect("k"));
    let failures: usize = args.get(3).map_or(0, |s| s.parse().expect("max_failures"));

    let proto = build(name, n, k);
    println!("model-checking {name} (N={n}, k={k}, adversarial crashes <= {failures}) ...");
    let cfg = ExploreConfig {
        max_failures: failures,
        ..ExploreConfig::default()
    };
    let t = Instant::now();
    let report = explore(proto.clone(), &cfg);
    println!(
        "explored {} states / {} transitions in {:?}{}",
        report.states,
        report.transitions,
        t.elapsed(),
        if report.truncated { " (TRUNCATED)" } else { "" },
    );

    if let Some((state, violation)) = &report.violation {
        println!("\nSAFETY VIOLATION in state {state}: {violation}");
        let schedule = report.counterexample(*state);
        println!("counterexample ({} steps), replaying:\n", schedule.len());
        let trace = kex::sim::replay::replay(proto, &schedule);
        print!("{trace}");
        println!("\nper-process lanes:");
        print!("{}", trace.render_lanes(n));
        std::process::exit(1);
    }
    println!("safety: OK (k-exclusion and name uniqueness hold in every state)");

    if report.truncated {
        println!("liveness: skipped (exploration truncated)");
        return;
    }
    match check_starvation_freedom(&report) {
        Ok(()) => println!("liveness: OK (no fair schedule starves any nonfaulty process)"),
        Err(starv) => println!("liveness: STARVATION — {starv}"),
    }
}

//! k-assignment as a resource allocator: N worker threads share k
//! scratch buffers, and the *name* handed out by the wrapper doubles as
//! the buffer index — no further synchronization needed on the buffers.
//!
//! This is the k-assignment problem exactly as the paper defines it
//! (§2): at most k processes inside, each holding a distinct name in
//! 0..k. The long-lived renaming algorithm (Figure 7) lets names be
//! acquired and released millions of times.
//!
//! Run: `cargo run --release --example resource_pool`

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use kex::core::native::KAssignment;

const THREADS: usize = 12;
const BUFFERS: usize = 4; // k
const ROUNDS: usize = 20_000;
const BUF_LEN: usize = 64;

/// A scratch buffer that detects concurrent use: workers stamp every
/// slot with their thread id and verify the stamps before leaving.
struct Buffer {
    cells: UnsafeCell<[u64; BUF_LEN]>,
}

// SAFETY: the k-assignment wrapper guarantees at most one holder per
// buffer index at a time; this example is precisely a test of that.
unsafe impl Sync for Buffer {}

fn main() {
    let pool = KAssignment::new(THREADS, BUFFERS);
    let buffers: Vec<Buffer> = (0..BUFFERS)
        .map(|_| Buffer {
            cells: UnsafeCell::new([0; BUF_LEN]),
        })
        .collect();
    let uses_per_buffer: Vec<AtomicU64> = (0..BUFFERS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for p in 0..THREADS {
            let (pool, buffers, uses) = (&pool, &buffers, &uses_per_buffer);
            s.spawn(move || {
                let stamp = p as u64 + 1;
                for round in 0..ROUNDS {
                    let guard = pool.enter(p);
                    let buf = &buffers[guard.name()];
                    uses[guard.name()].fetch_add(1, SeqCst);
                    // SAFETY: guard.name() is exclusive while held.
                    let cells = unsafe { &mut *buf.cells.get() };
                    for c in cells.iter_mut() {
                        *c = stamp;
                    }
                    // Hold the buffer for a while so holders overlap and
                    // the renaming actually spreads across the pool.
                    for _ in 0..((p + round) % 256) {
                        std::hint::spin_loop();
                    }
                    for c in cells.iter() {
                        assert_eq!(*c, stamp, "buffer {} corrupted!", guard.name());
                    }
                }
            });
        }
    });

    println!("{THREADS} threads completed {ROUNDS} rounds over {BUFFERS} buffers");
    for (i, u) in uses_per_buffer.iter().enumerate() {
        println!("  buffer {i}: {} uses", u.load(SeqCst));
    }
    let total: u64 = uses_per_buffer.iter().map(|u| u.load(SeqCst)).sum();
    assert_eq!(total, (THREADS * ROUNDS) as u64);
    println!("no buffer was ever used by two threads at once");
}

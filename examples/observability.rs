//! Observability: watch the paper's cost model live on real threads.
//!
//! Builds only with the instrumented facade backend, which counts every
//! atomic operation the algorithms perform — by process, by protocol
//! section, with estimated remote-memory references under both of the
//! paper's machine models — then prints the per-section totals, checks
//! the measured CC estimate against Theorem 3's closed form, and dumps
//! the full JSON snapshot (the same shape `kex-bench --bin native_obs`
//! writes to `BENCH_native.json`).
//!
//! Run: `cargo run --release --features obs --example observability`

use kex::core::native::{FastPathKex, RawKex};
use kex::core::sim::tree_depth;
use kex::obs::Section;

const THREADS: usize = 8;
const K: usize = 3;
const CYCLES: usize = 200;

fn main() {
    let kex = FastPathKex::new(THREADS, K);

    kex::obs::reset();
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let kex = &kex;
            s.spawn(move || {
                for _ in 0..CYCLES {
                    let _guard = kex.enter(p);
                    for _ in 0..32 {
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });
    let snap = kex::obs::snapshot();

    let pairs = (THREADS * CYCLES) as f64;
    println!("fast-path k-exclusion, N = {THREADS}, k = {K}, {pairs} acquisitions\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "section", "loads", "stores", "rmws", "cc-remote", "dsm-remote", "spins"
    );
    for section in [Section::Entry, Section::Cs, Section::Exit] {
        let t = snap.section_totals(section);
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            format!("{section:?}"),
            t.loads,
            t.stores,
            t.rmws,
            t.cc_remote,
            t.dsm_remote,
            t.spins
        );
    }

    // Theorem 3: at most 7k(log2(N/k) + 1) + 2 CC-remote references per
    // entry+exit pair. The measured *mean* must sit well below that
    // worst case.
    let entry = snap.section_totals(Section::Entry);
    let exit = snap.section_totals(Section::Exit);
    let mean_cc = (entry.cc_remote + exit.cc_remote) as f64 / pairs;
    let bound = 7 * K * (tree_depth(THREADS, K) as usize + 1) + 2;
    println!("\nmean CC-remote per pair: {mean_cc:.2}  (Theorem 3 worst case: {bound})");
    assert!(mean_cc <= bound as f64, "estimate exceeded the paper bound");

    println!(
        "occupancy: max {} of k = {K}, {} still inside",
        snap.occupancy.max, snap.occupancy.current
    );
    assert!(snap.occupancy.max as usize <= K);

    println!("\nfull snapshot as JSON (what native_obs exports):");
    println!("{}", snap.to_json().to_string_pretty());
}

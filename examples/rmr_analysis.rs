//! Remote-memory-reference analysis on the instrumented simulator: a
//! compact rendition of the paper's Table 1, comparing the algorithms'
//! measured worst-case RMRs per entry+exit pair at low and high
//! contention under each algorithm's target memory model.
//!
//! (The full experiment suite lives in the `kex-bench` crate:
//! `cargo run -p kex-bench --bin table1`.)
//!
//! Run: `cargo run --release --example rmr_analysis`

use kex::core::sim::Algorithm;
use kex::sim::prelude::*;

const N: usize = 16;
const K: usize = 4;
const CYCLES: u64 = 20;
const SEEDS: u64 = 8;

/// Worst observed entry+exit RMR pair over several seeded schedules with
/// exactly `c` participating processes.
fn worst_pair(algo: Algorithm, contention: usize) -> u64 {
    let mut worst = 0;
    for seed in 0..SEEDS {
        let proto = algo.build(N, K, 4096);
        let mut sim = Sim::new(proto, algo.model())
            .cycles(CYCLES)
            .scheduler(RandomSched::new(seed))
            .participants(0..contention)
            .timing(Timing {
                ncs_steps: 1,
                cs_steps: 2,
            })
            .build();
        let report = sim.run(50_000_000);
        report.assert_safe();
        assert_eq!(report.stop, StopReason::Quiescent, "{} hung", algo.label());
        worst = worst.max(report.stats.worst_pair());
    }
    worst
}

fn main() {
    println!("worst-case remote references per acquisition, N = {N}, k = {K}");
    println!("(compare with the paper's Table 1 complexity columns)\n");
    println!(
        "{:<24} {:>6} {:>14} {:>14}",
        "algorithm", "model", "contention<=k", "contention=N"
    );
    println!("{}", "-".repeat(62));
    for algo in Algorithm::ALL {
        let low = worst_pair(algo, K);
        let high = worst_pair(algo, N);
        println!(
            "{:<24} {:>6} {:>14} {:>14}",
            algo.label(),
            algo.model().label(),
            low,
            high
        );
    }
    println!();
    println!("note: fig1-queue and global-spin RMRs grow with schedule length —");
    println!("rerun with longer critical sections to watch them diverge.");
}

//! The resiliency/performance dial: measure native throughput of the
//! same workload as `k` varies.
//!
//! The paper's pitch (§1 and §5): wait-freedom fixes resiliency at
//! `N-1` and pays for it; k-exclusion lets you "tune" resiliency to the
//! contention you actually expect. This example makes the trade
//! concrete: a fixed 12-thread workload against `FastPathKex` with
//! `k = 1 .. 11`. Small `k` = cheap entry sections but more waiting and
//! less failure tolerance; large `k` = more tolerance, more admitted
//! concurrency, deeper wrapper.
//!
//! Run: `cargo run --release --example tuning_k`

use std::time::Instant;

use kex::core::native::{FastPathKex, RawKex};

const THREADS: usize = 12;
const OPS: usize = 20_000;

fn throughput(k: usize) -> f64 {
    let kex = FastPathKex::new(THREADS, k);
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let kex = &kex;
            s.spawn(move || {
                for _ in 0..OPS {
                    let _g = kex.enter(p);
                    // Fixed-size critical section.
                    for _ in 0..32 {
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });
    (THREADS * OPS) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("{THREADS} threads x {OPS} ops; FastPathKex with varying k\n");
    println!("{:>3} {:>12} {:>18}", "k", "failures", "throughput (op/s)");
    println!("{}", "-".repeat(38));
    for k in [1usize, 2, 3, 4, 6, 8, 11] {
        let t = throughput(k);
        println!("{:>3} {:>12} {:>18.0}", k, k - 1, t);
    }
    println!();
    println!("reading: each unit of k buys tolerance of one more crash failure, and");
    println!("changes the cost profile: at k near 1 the critical section serializes;");
    println!("mid-range k pays the deepest wrapper (tree slow path under contention);");
    println!("at k near N the wrapper collapses to a single shallow block. Pick k from");
    println!("expected contention — the paper's thesis — not from worst-case N.");
}

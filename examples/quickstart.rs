//! Quickstart: bound the concurrency of a code section with local-spin
//! k-exclusion.
//!
//! Eight threads hammer a "rate-limited resource" that at most three may
//! use simultaneously. The `FastPathKex` algorithm (paper Figure 4 /
//! Theorem 3) costs O(k) remote references per entry while contention
//! stays at or below k, and keeps working even if up to k-1 threads die
//! inside the protected section.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::time::Instant;

use kex::core::native::{FastPathKex, RawKex};

const THREADS: usize = 8;
const K: usize = 3;
const OPS_PER_THREAD: usize = 50_000;

fn main() {
    let kex = FastPathKex::new(THREADS, K);
    let inside = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let (kex, inside, peak) = (&kex, &inside, &peak);
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    let _guard = kex.enter(p);
                    // ----- protected section: at most K threads here -----
                    let now = inside.fetch_add(1, SeqCst) + 1;
                    peak.fetch_max(now, SeqCst);
                    for _ in 0..64 {
                        std::hint::spin_loop();
                    }
                    inside.fetch_sub(1, SeqCst);
                    // ----- guard drop releases the slot ------------------
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let total = THREADS * OPS_PER_THREAD;
    println!("{total} acquisitions by {THREADS} threads through k = {K} slots");
    println!(
        "peak concurrency observed: {} (bound: {K})",
        peak.load(SeqCst)
    );
    println!(
        "elapsed: {elapsed:?} ({:.0} acquisitions/ms)",
        total as f64 / elapsed.as_secs_f64() / 1e3
    );
    assert!(peak.load(SeqCst) <= K);
}

//! The paper's headline methodology, end to end: a `(k-1)`-resilient
//! shared counter built from a wait-free k-process counter inside a
//! k-assignment wrapper — and a demonstration that it really does
//! survive `k-1` crash failures.
//!
//! 16 worker threads share one counter with resiliency knob k = 4. Two
//! workers "crash" while *inside* the wrapper (the worst case: each
//! permanently consumes a slot and a name). The other 14 keep counting
//! through the remaining two slots and finish.
//!
//! Run: `cargo run --release --example resilient_counter`

use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::time::Instant;

use kex::core::native::Resilient;
use kex::waitfree::SlotCounter;

const THREADS: usize = 16;
const K: usize = 4;
const CRASHERS: usize = K - 1 - 1; // 2: stay below the k-1 tolerance
const OPS: usize = 25_000;

fn main() {
    let counter = Resilient::new(THREADS, K, SlotCounter::new(K));
    let crashed = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let survivors = THREADS - CRASHERS;

    let start = Instant::now();
    std::thread::scope(|s| {
        // The crashers: enter the wrapper and never leave.
        for p in 0..CRASHERS {
            let (counter, crashed, finished) = (&counter, &crashed, &finished);
            s.spawn(move || {
                counter.with(p, |c, name| {
                    c.add(name, 1);
                    crashed.fetch_add(1, SeqCst);
                    println!("worker {p} crashed inside the wrapper holding name {name}");
                    // A crash: the thread stops participating forever
                    // (parked here until the demo ends so the scope joins).
                    while finished.load(SeqCst) < survivors {
                        std::thread::yield_now();
                    }
                });
            });
        }
        // The survivors: wait until the crashes have happened, then work.
        for p in CRASHERS..THREADS {
            let (counter, crashed, finished) = (&counter, &crashed, &finished);
            s.spawn(move || {
                while crashed.load(SeqCst) < CRASHERS {
                    std::thread::yield_now();
                }
                for _ in 0..OPS {
                    counter.with(p, |c, name| c.add(name, 1));
                }
                finished.fetch_add(1, SeqCst);
            });
        }
    });
    let elapsed = start.elapsed();

    let expected = (survivors * OPS + CRASHERS) as i64;
    let value = counter.object_unguarded().read();
    println!();
    println!("{survivors} survivors completed {OPS} operations each despite {CRASHERS} crashes");
    println!("counter value: {value} (expected {expected})");
    println!("elapsed: {elapsed:?}");
    assert_eq!(value, expected);
    println!();
    println!(
        "the wrapper tolerated {CRASHERS} <= k-1 = {} failures; {K} crashes \
         inside would exhaust the slots and block everyone — that is the \
         resiliency/performance dial the paper proposes.",
        K - 1,
    );
}

//! The MCS queue lock (Mellor-Crummey & Scott 1991, the paper's \[12\])
//! as a mutual-exclusion reference point.
//!
//! §5 sets the aspiration: *"We would also like for such algorithms to
//! have performance that approaches that of the fastest spin-lock
//! algorithms \[2, 11, 12, 14\] when k approaches 1."* MCS is that
//! yardstick: `O(1)` remote references per acquisition on both machine
//! models (each process spins on its own queue node), FIFO-fair, but
//! **only** mutual exclusion (`k = 1`) and **not** crash-resilient — a
//! process that dies holding the lock, or parked in the queue, wedges
//! everyone behind it. The experiment harness compares it against the
//! paper's `(N, 1)`-exclusion instances.
//!
//! Uses `swap` (fetch-and-store) and `compare_and_swap`.
//!
//! ```text
//! shared tail : pid | nil,  next[p] : pid | nil,  locked[p] : bool
//! entry:  1: next[p] := nil
//!         2: pred := swap(tail, p)
//!         3: if pred != nil then
//!              locked[p] := true
//!         4:   next[pred] := p
//!         5:   while locked[p] do od          /* local spin */
//! exit:   6: if next[p] = nil then
//!              if compare_and_swap(tail, p, nil) then return
//!         7:   while next[p] = nil do od      /* successor announcing */
//!         8: locked[next[p]] := false
//! ```

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

/// Sentinel for "nil" process references.
const NIL: Word = -1;

/// Local-variable layout.
const L_PRED: usize = 0;

/// The MCS mutual-exclusion node.
pub struct McsNode {
    tail: VarId,
    /// `next[p]`, homed at `p`... except that predecessors write it, so
    /// under DSM it is remote to the writer and local to the spinner's
    /// *successor* — as in the original algorithm, where queue nodes
    /// live in their owner's memory.
    next: VarId,
    /// `locked[p]`, homed at `p` (the spin location).
    locked: VarId,
    n: usize,
}

impl McsNode {
    /// Allocate the lock's variables for the builder's process universe.
    pub fn new(b: &mut ProtocolBuilder) -> Self {
        let n = b.n();
        let tail = b.vars.alloc("mcs.tail", NIL);
        let mut next = None;
        for p in 0..n {
            let v = b.vars.alloc_local(format!("mcs.next[{p}]"), p, NIL);
            next.get_or_insert(v);
        }
        let mut locked = None;
        for p in 0..n {
            let v = b.vars.alloc_local(format!("mcs.locked[{p}]"), p, 0);
            locked.get_or_insert(v);
        }
        McsNode {
            tail,
            next: next.unwrap(),
            locked: locked.unwrap(),
            n,
        }
    }
}

impl Node for McsNode {
    fn name(&self) -> String {
        format!("mcs(n={})", self.n)
    }

    fn locals_len(&self) -> usize {
        1
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid();
        match (sec, pc) {
            // 1: next[p] := nil
            (Section::Entry, 0) => {
                mem.write(at(self.next, p), NIL);
                Step::Goto(1)
            }
            // 2: pred := swap(tail, p)
            (Section::Entry, 1) => {
                locals[L_PRED] = mem.swap(self.tail, p as Word);
                if locals[L_PRED] == NIL {
                    Step::Return // lock acquired
                } else {
                    Step::Goto(2)
                }
            }
            // 3: locked[p] := true
            (Section::Entry, 2) => {
                mem.write(at(self.locked, p), 1);
                Step::Goto(3)
            }
            // 4: next[pred] := p
            (Section::Entry, 3) => {
                mem.write(at(self.next, locals[L_PRED] as usize), p as Word);
                Step::Goto(4)
            }
            // 5: while locked[p] do od (local spin)
            (Section::Entry, 4) => {
                if mem.read(at(self.locked, p)) != 0 {
                    Step::Goto(4)
                } else {
                    Step::Return
                }
            }

            // 6: if next[p] = nil then try CAS(tail, p, nil)
            (Section::Exit, 0) => {
                if mem.read(at(self.next, p)) == NIL {
                    Step::Goto(1)
                } else {
                    Step::Goto(3)
                }
            }
            (Section::Exit, 1) => {
                if mem.compare_and_swap(self.tail, p as Word, NIL) {
                    Step::Return // no successor: done
                } else {
                    Step::Goto(2)
                }
            }
            // 7: while next[p] = nil do od (successor is announcing)
            (Section::Exit, 2) => {
                if mem.read(at(self.next, p)) == NIL {
                    Step::Goto(2)
                } else {
                    Step::Goto(3)
                }
            }
            // 8: locked[next[p]] := false
            (Section::Exit, 3) => {
                let succ = mem.read(at(self.next, p));
                mem.write(at(self.locked, succ as usize), 0);
                Step::Return
            }
            _ => unreachable!("mcs: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, p: Pid) -> Option<NodeDesc> {
        let my_next = at(self.next, p);
        let my_locked = at(self.locked, p);
        let entry = vec![
            StmtDesc::new(0, "1: next[p] := nil")
                .access(AccessDesc::write(my_next))
                .goto(1),
            StmtDesc::new(1, "2: pred := swap(tail, p)")
                .access(AccessDesc::rmw(self.tail))
                .goto(2)
                .returns(),
            StmtDesc::new(2, "3: locked[p] := true")
                .access(AccessDesc::write(my_locked))
                .goto(3),
            StmtDesc::new(3, "4: next[pred] := p")
                .access(AccessDesc::write_any(self.next, self.n))
                .goto(4),
            StmtDesc::new(4, "5: while locked[p] do od")
                .access(AccessDesc::read(my_locked))
                .returns()
                .back_edge(BackEdge::spin(4)),
        ];
        let exit = vec![
            StmtDesc::new(0, "6: if next[p] = nil")
                .access(AccessDesc::read(my_next))
                .goto(1)
                .goto(3),
            StmtDesc::new(1, "if CAS(tail, p, nil)")
                .access(AccessDesc::rmw(self.tail))
                .goto(2)
                .returns(),
            StmtDesc::new(2, "7: while next[p] = nil do od")
                .access(AccessDesc::read(my_next))
                .goto(3)
                .back_edge(BackEdge::spin(2)),
            StmtDesc::new(3, "8: locked[next[p]] := false")
                .access(AccessDesc::read(my_next))
                .access(AccessDesc::write_any(self.locked, self.n))
                .returns(),
        ];
        Some(NodeDesc {
            exclusion: Some(1),
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build an MCS lock as a protocol root (k = 1).
pub fn mcs(b: &mut ProtocolBuilder) -> NodeId {
    let node = McsNode::new(b);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = mcs(&mut b);
        b.finish(root, 1)
    }

    #[test]
    fn exhaustive_mutual_exclusion_and_liveness() {
        let report = explore(protocol(3), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("MCS is FIFO, hence starvation-free");
    }

    #[test]
    fn safe_under_random_schedules() {
        for seed in 0..10 {
            let mut sim = Sim::new(protocol(6), MemoryModel::Dsm)
                .cycles(25)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 3,
                })
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn constant_rmr_per_acquisition_on_both_models() {
        // The point of the comparison: MCS pays O(1) remote references
        // per acquisition regardless of N, on CC and on DSM.
        for model in [MemoryModel::CacheCoherent, MemoryModel::Dsm] {
            for n in [4usize, 8, 16] {
                let mut worst = 0;
                for seed in 0..6 {
                    let mut sim = Sim::new(protocol(n), model)
                        .cycles(20)
                        .scheduler(RandomSched::new(seed))
                        .build();
                    let report = sim.run(50_000_000);
                    report.assert_safe();
                    worst = worst.max(report.stats.worst_pair());
                }
                assert!(
                    worst <= 10,
                    "MCS should be O(1) RMR, got {worst} at n={n} under {model:?}"
                );
            }
        }
    }

    #[test]
    fn a_crashed_lock_holder_wedges_everyone() {
        // The contrast with the paper's algorithms: MCS has zero crash
        // resilience. The checker must find starvation with one failure.
        let cfg = ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        };
        let report = explore(protocol(3), &cfg);
        report.assert_ok(); // exclusion itself holds
        assert!(
            check_starvation_freedom(&report).is_err(),
            "a crashed MCS holder must starve its successors"
        );
    }
}

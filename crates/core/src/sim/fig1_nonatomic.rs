//! The *naive realistic decomposition* of Figure 1 — and why it fails.
//!
//! Figure 1 is correct **because** its queue operations execute inside
//! multi-word atomic sections (the paper's Table 1 files its ancestors
//! \[9, 10\] under "Large Critical Sections"). The paper's §3 argues
//! that implementing those sections out of realistic single-word
//! primitives is precisely the hard part: *"Such an implementation is
//! complicated by the possibility that a process may fail after having
//! only partially executed a queue operation."*
//!
//! This module makes that argument mechanical. It is Figure 1 with the
//! angle brackets deleted — every shared access its own atomic
//! statement, with no added synchronization:
//!
//! ```text
//! entry:  1a: if fetch_and_increment(X,-1) <= 0 then
//!         1b:     t := Q.len            /* read tail      */
//!         1c:     Q.slots[t] := p       /* publish self   */
//!         1d:     Q.len := t + 1        /* commit enqueue */
//!         2:      while Element(p, Q) do od
//! exit:   3a: t := Q.len
//!         3b: if t > 0 then shift/clear  (one statement per slot move)
//!         3c: Q.len := t - 1
//!         3d: fetch_and_increment(X, 1)
//! ```
//!
//! Two enqueuers can now interleave at 1b/1c and overwrite each other's
//! slot; a lost waiter believes it is queued, `Element` says otherwise,
//! and it walks straight into the critical section — **k-exclusion is
//! violated**. The model-checking test below has the explorer find such
//! an interleaving automatically, which is this repository's mechanized
//! version of the paper's "first difficulty". (Given a crash between 1c
//! and 1d the queue also wedges, the "second difficulty".)
//!
//! Nothing outside the test suite should use this node; it exists as a
//! negative control.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

/// Local-variable layout.
const L_T: usize = 0;

/// Figure 1 with its atomic sections naively decomposed.
pub struct NonatomicQueueNode {
    x: VarId,
    len: VarId,
    slots: VarId,
    n: usize,
}

impl NonatomicQueueNode {
    /// Allocate the same variables as the atomic version.
    pub fn new(b: &mut ProtocolBuilder, k: usize) -> Self {
        let n = b.n();
        let x = b.vars.alloc("fig1na.X", k as Word);
        let len = b.vars.alloc("fig1na.len", 0);
        let slots = b.vars.alloc_array("fig1na.q", n, -1);
        NonatomicQueueNode { x, len, slots, n }
    }
}

impl Node for NonatomicQueueNode {
    fn name(&self) -> String {
        format!("fig1-nonatomic(n={})", self.n)
    }

    fn locals_len(&self) -> usize {
        1
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid() as Word;
        match (sec, pc) {
            // 1a: the slot counter check.
            (Section::Entry, 0) => {
                if mem.fetch_and_increment(self.x, -1) <= 0 {
                    Step::Goto(1)
                } else {
                    Step::Return
                }
            }
            // 1b: read the tail — RACE: another enqueuer may read the
            // same value.
            (Section::Entry, 1) => {
                locals[L_T] = mem.read(self.len);
                Step::Goto(2)
            }
            // 1c: publish into the (possibly stale) slot.
            (Section::Entry, 2) => {
                mem.write(at(self.slots, locals[L_T] as usize % self.n), p);
                Step::Goto(3)
            }
            // 1d: commit.
            (Section::Entry, 3) => {
                mem.write(self.len, locals[L_T] + 1);
                Step::Goto(4)
            }
            // 2: while Element(p, Q) — one scan per statement, as in the
            // atomic version.
            (Section::Entry, 4) => {
                let len = mem.read(self.len);
                let mut queued = false;
                for i in 0..(len as usize).min(self.n) {
                    if mem.read(at(self.slots, i)) == p {
                        queued = true;
                        break;
                    }
                }
                if queued {
                    Step::Goto(4)
                } else {
                    Step::Return
                }
            }

            // 3a: read length.
            (Section::Exit, 0) => {
                locals[L_T] = mem.read(self.len);
                Step::Goto(if locals[L_T] > 0 { 1 } else { 3 })
            }
            // 3b: shift left (single statement here; the race of interest
            // is already present in the enqueue path).
            (Section::Exit, 1) => {
                let len = (locals[L_T] as usize).min(self.n);
                for i in 1..len {
                    let v = mem.read(at(self.slots, i));
                    mem.write(at(self.slots, i - 1), v);
                }
                mem.write(at(self.slots, len - 1), -1);
                Step::Goto(2)
            }
            // 3c: commit the dequeue.
            (Section::Exit, 2) => {
                mem.write(self.len, locals[L_T] - 1);
                Step::Goto(3)
            }
            // 3d: return the slot.
            (Section::Exit, 3) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Return
            }
            _ => unreachable!("fig1-nonatomic: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let n = self.n;
        let entry = vec![
            StmtDesc::new(0, "1a: if f&i(X,-1) <= 0")
                .access(AccessDesc::rmw(self.x))
                .goto(1)
                .returns(),
            StmtDesc::new(1, "1b: t := Q.len")
                .access(AccessDesc::read(self.len))
                .goto(2),
            StmtDesc::new(2, "1c: Q.slots[t] := p")
                .access(AccessDesc::write_any(self.slots, n))
                .goto(3),
            StmtDesc::new(3, "1d: Q.len := t + 1")
                .access(AccessDesc::write(self.len))
                .goto(4),
            StmtDesc::new(4, "2: while Element(p, Q) do od")
                .access(AccessDesc::read(self.len))
                .access(AccessDesc::read_any(self.slots, n).times(n))
                .returns()
                .back_edge(BackEdge::spin(4)),
        ];
        let exit = vec![
            StmtDesc::new(0, "3a: t := Q.len")
                .access(AccessDesc::read(self.len))
                .goto(1)
                .goto(3),
            // The shift stays one statement here; the decomposition this
            // node demonstrates lives in the enqueue path.
            StmtDesc::new(1, "3b: shift/clear")
                .access(AccessDesc::read_any(self.slots, n).times(n.saturating_sub(1)))
                .access(AccessDesc::write_any(self.slots, n).times(n))
                .goto(2),
            StmtDesc::new(2, "3c: Q.len := t - 1")
                .access(AccessDesc::write(self.len))
                .goto(3),
            StmtDesc::new(3, "3d: f&i(X, 1)")
                .access(AccessDesc::rmw(self.x))
                .returns(),
        ];
        Some(NodeDesc {
            exclusion: None,
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build the naive decomposition as a protocol root (negative control).
pub fn fig1_nonatomic(b: &mut ProtocolBuilder, k: usize) -> NodeId {
    let node = NonatomicQueueNode::new(b, k);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = fig1_nonatomic(&mut b, k);
        b.finish(root, k)
    }

    #[test]
    fn the_model_checker_finds_the_lost_wakeup_violation() {
        // Three processes, k = 1: the explorer must find an interleaving
        // in which the enqueue race admits two processes at once — the
        // paper's argument for why Figure 1 needs its atomic sections.
        let report = explore(protocol(3, 1), &ExploreConfig::default());
        assert!(
            matches!(
                report.violation,
                Some((_, Violation::TooManyInCritical { .. }))
            ),
            "expected a k-exclusion violation from the naive decomposition, got {:?}",
            report.violation
        );
    }

    #[test]
    fn the_counterexample_replays_to_the_same_violation() {
        // Extract the offending schedule and replay it step by step:
        // the trace must reproduce the k-exclusion violation and pass
        // through the racy enqueue statements.
        let proto = protocol(3, 1);
        let report = explore(proto.clone(), &ExploreConfig::default());
        let schedule = report
            .first_counterexample()
            .expect("a violation was found");
        let trace = kex_sim::replay::replay(proto, &schedule);
        assert!(
            trace.ends_in_violation(),
            "replayed schedule must reproduce the violation:\n{trace}"
        );
        let text = trace.to_string();
        assert!(
            text.contains("fig1-nonatomic"),
            "trace names the node:\n{text}"
        );
    }

    #[test]
    fn the_atomic_version_of_the_same_instance_is_clean() {
        // Control: identical instance, Figure 1 with its atomic sections
        // intact, passes the same exploration.
        let mut b = ProtocolBuilder::new(3);
        let root = crate::sim::fig1_queue::fig1_queue(&mut b, 1);
        let proto = b.finish(root, 1);
        let report = explore(proto, &ExploreConfig::default());
        report.assert_ok();
    }
}

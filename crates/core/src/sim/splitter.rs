//! Long-lived renaming from **reads and writes only**: the splitter grid
//! of the paper's companion reference \[13\] (Moir & Anderson, *Fast,
//! Long-Lived Renaming*, WDAG '94).
//!
//! Figure 7's renaming needs `test_and_set`. \[13\] shows that, once
//! k-exclusion bounds concurrency at `k`, names can be acquired with
//! plain reads/writes by racing through a triangular grid of
//! *splitters*. Each splitter is Lamport's fast-path gadget:
//!
//! ```text
//! X : pid        Y : boolean (initially false)
//!
//! enter(p):  X := p
//!            if Y then go RIGHT
//!            Y := true
//!            if X = p then STOP else go DOWN
//! ```
//!
//! Among the processes that enter a splitter concurrently, at most one
//! STOPs, not all go RIGHT, and not all go DOWN. Starting at cell
//! `(0,0)` of the triangular grid `{(r,c) : r+c <= k-1}`, every RIGHT or
//! DOWN move is "charged" to a distinct rival, so when at most `k`
//! processes **ever** use the grid, each must STOP within `k-1` moves —
//! inside the grid — and its name is its cell index, a name space of
//! `k(k+1)/2`.
//!
//! ## Two negative results, found by the model checker
//!
//! The charging argument is fragile, and our exhaustive checker maps its
//! exact boundary — mechanizing the reasons Figure 7 reaches for
//! test-and-set and \[13\] is a separate contribution:
//!
//! 1. **One-shot, but more than `k` total participants** (the situation
//!    inside a `(N, k)`-exclusion wrapper, where concurrency is at most
//!    `k` but all `N` processes eventually pass through): *broken*. A
//!    departed process's poisoned `Y` plus a fresh arrival can push a
//!    slow process off the grid. `one_shot_beyond_k_total_is_broken`
//!    extracts a replayable counterexample with `N = 3, k = 2`.
//! 2. **Long-lived reuse with naive reset** (stopper resets its own `Y`
//!    on release): *broken* even for `k` total processes — DOWN-movers
//!    never reset the `Y` they set, poisoning the grid over time.
//!    `naive_long_lived_reuse_is_broken` finds it automatically.
//!
//! What *is* correct — and verified exhaustively here — is the classic
//! setting: at most `k` processes total, one acquisition each
//! ([`splitter_grid_standalone`]). That is M&A's one-shot fast renaming;
//! making it long-lived (and wrapper-compatible) with reads and writes
//! only is exactly \[13\]'s further contribution, which this repository
//! leaves to Figure 7's test-and-set algorithm
//! ([`mod@crate::sim::assignment`]).
//!
//! When a process is forced off the grid it takes the out-of-range
//! sentinel name `k(k+1)/2`, which the safety checker reports as a
//! [`kex_sim::checker::Violation::NameOutOfRange`] — the failure mode is
//! a first-class, explorable violation rather than a panic.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

/// Local-variable layout.
const L_NAME: usize = 0;
const L_HOLDING: usize = 1;
const L_ROW: usize = 2;
const L_COL: usize = 3;

/// Number of cells in the triangular grid for `k`.
pub fn grid_cells(k: usize) -> usize {
    k * (k + 1) / 2
}

/// Row-major index of cell `(r, c)` in the triangular grid for `k`.
fn cell_index(k: usize, r: Word, c: Word) -> usize {
    let r = r as usize;
    let c = c as usize;
    debug_assert!(r + c < k, "cell ({r},{c}) outside the grid for k={k}");
    // Row r starts after rows 0..r, which hold k, k-1, .., k-r+1 cells.
    r * k - r * r.saturating_sub(1) / 2 + c
}

/// The splitter-grid renaming node: optionally behind an
/// `(N, k)`-exclusion child, over `k(k+1)/2` names.
pub struct SplitterGridNode {
    /// `None` = standalone grid (the classic at-most-`k`-total setting).
    kex: Option<NodeId>,
    /// `X` of every cell (row-major triangular layout).
    x_base: VarId,
    /// `Y` of every cell.
    y_base: VarId,
    k: usize,
}

impl SplitterGridNode {
    /// Allocate the grid, optionally over an `(N, k)`-exclusion child.
    pub fn new(b: &mut ProtocolBuilder, k: usize, kex: Option<NodeId>) -> Self {
        let cells = grid_cells(k);
        let x_base = b.vars.alloc_array("grid.X", cells, -1);
        let y_base = b.vars.alloc_array("grid.Y", cells, 0);
        SplitterGridNode {
            kex,
            x_base,
            y_base,
            k,
        }
    }

    #[inline]
    fn cell(&self, locals: &[Word]) -> usize {
        cell_index(self.k, locals[L_ROW], locals[L_COL])
    }
}

impl Node for SplitterGridNode {
    fn name(&self) -> String {
        format!("splitter-grid(k={})", self.k)
    }

    fn locals_len(&self) -> usize {
        4
    }

    fn acquired_name(&self, locals: &[Word]) -> Option<Word> {
        if locals[L_HOLDING] != 0 {
            Some(locals[L_NAME])
        } else {
            None
        }
    }

    fn assigns_names(&self) -> bool {
        true
    }

    fn name_space(&self, k: usize) -> usize {
        grid_cells(k)
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid() as Word;
        let k = self.k as Word;
        match (sec, pc) {
            // Acquire the k-exclusion first (if any): at most k inside
            // the grid concurrently.
            (Section::Entry, 0) => match self.kex {
                Some(kex) => Step::Call {
                    child: kex,
                    section: Section::Entry,
                    ret: 1,
                },
                None => {
                    locals[L_ROW] = 0;
                    locals[L_COL] = 0;
                    Step::Goto(2)
                }
            },
            // Start at cell (0,0) (private).
            (Section::Entry, 1) => {
                locals[L_ROW] = 0;
                locals[L_COL] = 0;
                Step::Goto(2)
            }
            // Splitter step 1: X := p
            (Section::Entry, 2) => {
                mem.write(at(self.x_base, self.cell(locals)), p);
                Step::Goto(3)
            }
            // Splitter step 2: if Y then RIGHT
            (Section::Entry, 3) => {
                if mem.read(at(self.y_base, self.cell(locals))) != 0 {
                    locals[L_COL] += 1;
                    if locals[L_ROW] + locals[L_COL] >= k {
                        // Pushed off the grid: take the out-of-range
                        // sentinel so the checker reports it.
                        locals[L_NAME] = grid_cells(self.k) as Word;
                        locals[L_HOLDING] = 1;
                        return Step::Return;
                    }
                    Step::Goto(2)
                } else {
                    Step::Goto(4)
                }
            }
            // Splitter step 3: Y := true
            (Section::Entry, 4) => {
                mem.write(at(self.y_base, self.cell(locals)), 1);
                Step::Goto(5)
            }
            // Splitter step 4: if X = p then STOP else DOWN
            (Section::Entry, 5) => {
                if mem.read(at(self.x_base, self.cell(locals))) == p {
                    locals[L_NAME] = cell_index(self.k, locals[L_ROW], locals[L_COL]) as Word;
                    locals[L_HOLDING] = 1;
                    Step::Return
                } else {
                    locals[L_ROW] += 1;
                    if locals[L_ROW] + locals[L_COL] >= k {
                        locals[L_NAME] = grid_cells(self.k) as Word;
                        locals[L_HOLDING] = 1;
                        return Step::Return;
                    }
                    Step::Goto(2)
                }
            }

            // Release: reset the won splitter's Y, then leave the kex.
            (Section::Exit, 0) => {
                if (locals[L_NAME] as usize) < grid_cells(self.k) {
                    mem.write(at(self.y_base, locals[L_NAME] as usize), 0);
                }
                locals[L_HOLDING] = 0;
                locals[L_NAME] = 0;
                locals[L_ROW] = 0;
                locals[L_COL] = 0;
                match self.kex {
                    Some(_) => Step::Goto(1),
                    None => Step::Return,
                }
            }
            (Section::Exit, 1) => Step::Call {
                child: self.kex.expect("pc 1 only reached with a kex child"),
                section: Section::Exit,
                ret: 2,
            },
            (Section::Exit, 2) => Step::Return,
            _ => unreachable!("splitter-grid: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let cells = grid_cells(self.k);
        // Each RIGHT/DOWN move is charged to a distinct rival: the walk
        // re-enters the splitter at most k times in total.
        let walk = self.k;
        let mut entry = vec![match self.kex {
            Some(kex) => StmtDesc::new(0, "Acquire(N, k)").call(kex, Section::Entry, 1),
            None => StmtDesc::new(0, "(row, col) := (0, 0)").goto(2),
        }];
        entry.extend([
            StmtDesc::new(1, "(row, col) := (0, 0)").goto(2),
            StmtDesc::new(2, "X[cell] := p")
                .access(AccessDesc::write_any(self.x_base, cells))
                .goto(3),
            StmtDesc::new(3, "if Y[cell] then RIGHT")
                .access(AccessDesc::read_any(self.y_base, cells))
                .goto(4)
                .returns()
                .back_edge(BackEdge::bounded(2, walk)),
            StmtDesc::new(4, "Y[cell] := true")
                .access(AccessDesc::write_any(self.y_base, cells))
                .goto(5),
            StmtDesc::new(5, "if X[cell] = p then STOP else DOWN")
                .access(AccessDesc::read_any(self.x_base, cells))
                .returns()
                .back_edge(BackEdge::bounded(2, walk)),
        ]);
        let exit = match self.kex {
            Some(kex) => vec![
                StmtDesc::new(0, "Y[name] := false")
                    .access(AccessDesc::write_any(self.y_base, cells))
                    .goto(1),
                StmtDesc::new(1, "Release(N, k)").call(kex, Section::Exit, 2),
                StmtDesc::new(2, "released").returns(),
            ],
            None => vec![StmtDesc::new(0, "Y[name] := false")
                .access(AccessDesc::write_any(self.y_base, cells))
                .returns()],
        };
        Some(NodeDesc {
            exclusion: None,
            spin_space: SpaceClass::NoSpin,
            entry,
            exit,
        })
    }
}

/// Wrap an `(N, k)`-exclusion node with splitter-grid renaming.
///
/// Note the negative results in the module docs: this composition is
/// only correct when at most `k` *distinct* processes ever enter, which
/// the wrapper does not enforce — it exists to let the model checker
/// demonstrate that boundary.
pub fn splitter_assignment(b: &mut ProtocolBuilder, k: usize, kex: NodeId) -> NodeId {
    let node = SplitterGridNode::new(b, k, Some(kex));
    b.add(node)
}

/// The classic standalone one-shot grid for at most `k` total
/// participants (restrict the simulation's participants accordingly).
pub fn splitter_grid_standalone(b: &mut ProtocolBuilder, k: usize) -> NodeId {
    let node = SplitterGridNode::new(b, k, None);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::fig2::fig2_chain;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let kex = fig2_chain(&mut b, n, k);
        let root = splitter_assignment(&mut b, k, kex);
        b.finish(root, k)
    }

    fn standalone(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = splitter_grid_standalone(&mut b, k);
        b.finish(root, k)
    }

    #[test]
    fn grid_index_is_a_triangular_bijection() {
        let k = 4;
        let mut seen = std::collections::HashSet::new();
        for r in 0..k {
            for c in 0..(k - r) {
                let idx = cell_index(k, r as Word, c as Word);
                assert!(idx < grid_cells(k));
                assert!(seen.insert(idx), "duplicate index for ({r},{c})");
            }
        }
        assert_eq!(seen.len(), grid_cells(k));
    }

    #[test]
    fn exhaustive_classic_setting_is_correct() {
        // The setting the one-shot charging argument actually covers: at
        // most k processes total, one acquisition each. Exhaustive over
        // every interleaving for k = 2 and k = 3 (the explorer's `k < n`
        // protocols restrict participation to exactly k processes).
        for k in [2usize, 3] {
            let cfg = ExploreConfig {
                cycles: Some(1),
                participants: Some((0..k).collect()),
                ..ExploreConfig::default()
            };
            let report = explore(standalone(k + 1, k), &cfg);
            report.assert_ok();
            assert!(report.states > 10);
        }
    }

    #[test]
    fn exhaustive_classic_setting_with_one_crash() {
        let cfg = ExploreConfig {
            cycles: Some(1),
            participants: Some(vec![0, 1]),
            max_failures: 1,
            ..ExploreConfig::default()
        };
        let report = explore(standalone(3, 2), &cfg);
        report.assert_ok();
    }

    #[test]
    fn one_shot_beyond_k_total_is_broken() {
        // NEGATIVE RESULT 1: one acquisition per process, concurrency
        // bounded at k = 2 by the kex wrapper, but three processes pass
        // through in total. A departed process's poisoned Y plus a fresh
        // arrival pushes a slow process off the grid. The explorer finds
        // it and the counterexample replays.
        let proto = protocol(3, 2);
        let cfg = ExploreConfig {
            cycles: Some(1),
            ..ExploreConfig::default()
        };
        let report = explore(proto.clone(), &cfg);
        let (state, violation) = report
            .violation
            .clone()
            .expect("the grid must break beyond k total participants");
        assert!(
            matches!(violation, Violation::NameOutOfRange { .. }),
            "expected an off-grid name, got {violation:?}"
        );
        let schedule = report.counterexample(state);
        let trace =
            kex_sim::replay::replay_with(proto, &schedule, Timing::default(), Some(1), None);
        assert!(trace.ends_in_violation(), "{trace}");
    }

    #[test]
    fn naive_long_lived_reuse_is_broken() {
        // NEGATIVE RESULT 2: repeated acquisitions by only k = 2 total
        // processes, naive "stopper resets Y" discipline. DOWN-movers
        // never reset the Y they set, so the grid poisons over time and
        // someone is pushed off. The explorer finds it.
        let cfg = ExploreConfig {
            participants: Some(vec![0, 1]),
            ..ExploreConfig::default()
        };
        let report = explore(standalone(3, 2), &cfg);
        let (_, violation) = report
            .violation
            .clone()
            .expect("naive long-lived splitter reuse should break; did someone fix it?");
        assert!(
            matches!(violation, Violation::NameOutOfRange { .. }),
            "expected an off-grid name, got {violation:?}"
        );
    }

    #[test]
    fn classic_random_schedules_are_clean() {
        // k = 4 total participants, one shot each, many schedules.
        for seed in 0..15 {
            let mut sim = Sim::new(standalone(6, 4), MemoryModel::CacheCoherent)
                .cycles(1)
                .participants(0..4)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 3,
                })
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn one_shot_renaming_cost_is_linear_in_k() {
        // [13]'s headline: Theta(k) time — the grid walk is at most k-1
        // moves of ~3 accesses each.
        for k in [2usize, 4, 8] {
            let mut worst = 0;
            for seed in 0..10 {
                let mut sim = Sim::new(standalone(k + 1, k), MemoryModel::CacheCoherent)
                    .cycles(1)
                    .participants(0..k)
                    .scheduler(RandomSched::new(seed))
                    .build();
                let r = sim.run(10_000_000);
                r.assert_safe();
                worst = worst.max(r.stats.worst_pair());
            }
            assert!(
                worst <= 4 * k as u64 + 2,
                "grid acquisition cost {worst} exceeds O(k) at k={k}"
            );
        }
    }
}

//! Encoding of the paper's `loctype` records into simulator words.
//!
//! Figures 5 and 6 pass around records `(pid, loc)` naming one spin
//! location `P[pid][loc]`. Shared variables hold single words, so we pack
//! the record as `pid * stride + loc` where `stride` exceeds every valid
//! `loc`.

use kex_sim::types::{Pid, Word};

/// Packs/unpacks `(pid, loc)` records for a fixed per-process location
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocCodec {
    stride: Word,
}

impl LocCodec {
    /// A codec for processes owning `locs_per_proc` spin locations each.
    ///
    /// # Panics
    /// Panics if `locs_per_proc` is zero.
    pub fn new(locs_per_proc: usize) -> Self {
        assert!(locs_per_proc > 0, "need at least one spin location");
        LocCodec {
            stride: locs_per_proc as Word,
        }
    }

    /// Number of spin locations per process.
    pub fn stride(&self) -> usize {
        self.stride as usize
    }

    /// Pack `(pid, loc)`.
    #[inline]
    pub fn enc(&self, pid: Pid, loc: Word) -> Word {
        debug_assert!(loc >= 0 && loc < self.stride, "loc {loc} out of range");
        pid as Word * self.stride + loc
    }

    /// Unpack to `(pid, loc)`.
    #[inline]
    pub fn dec(&self, word: Word) -> (Pid, Word) {
        ((word / self.stride) as Pid, word % self.stride)
    }

    /// Flat index of `(pid, loc)` into a `[N * stride]` shared array.
    #[inline]
    pub fn flat(&self, word: Word) -> usize {
        word as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let c = LocCodec::new(5);
        for pid in 0..8 {
            for loc in 0..5 {
                let w = c.enc(pid, loc);
                assert_eq!(c.dec(w), (pid, loc));
                assert_eq!(c.flat(w), pid * 5 + loc as usize);
            }
        }
    }

    #[test]
    fn distinct_records_encode_distinctly() {
        let c = LocCodec::new(3);
        let mut seen = std::collections::HashSet::new();
        for pid in 0..4 {
            for loc in 0..3 {
                assert!(seen.insert(c.enc(pid, loc)));
            }
        }
    }
}

//! Yang & Anderson's local-spin mutual exclusion (the paper's \[14\]):
//! `O(log N)` remote references per acquisition using **reads and writes
//! only** — no read-modify-write instructions at all.
//!
//! The paper cites \[14\] twice: as prior local-spin art in §1/§2, and in
//! §5 as one of "the fastest spin-lock algorithms" that k-exclusion
//! should approach as `k → 1`. Together with the MCS lock
//! ([`mod@crate::sim::mcs`], RMW-based, `O(1)` RMR) it brackets the paper's
//! k = 1 design space by instruction set:
//!
//! | algorithm | primitives | RMR per acquisition |
//! |---|---|---|
//! | MCS \[12\] | swap + CAS | `O(1)` |
//! | Yang–Anderson \[14\] | read/write | `O(log N)` |
//! | this paper, k = 1 | fetch&inc (+CAS) | `O(log N)` |
//!
//! ## The two-process building block
//!
//! Process `p` enters with a *side* `i ∈ {0, 1}`; `q` denotes the rival.
//!
//! ```text
//! shared C[2] : pid|nil, T : pid, P[p] : 0..2   /* P[p] local to p */
//!
//! entry(p, i):
//!   1: C[i] := p
//!   2: T := p
//!   3: P[p] := 0
//!   4: rival := C[1-i]
//!   5: if rival != nil and T = p then
//!   6:     if P[rival] = 0 then P[rival] := 1
//!   7:     while P[p] = 0 do od            /* local spin */
//!   8:     if T = p then
//!   9:         while P[p] <= 1 do od       /* local spin */
//!
//! exit(p, i):
//!  10: C[i] := nil
//!  11: rival := T
//!  12: if rival != p then P[rival] := 2
//! ```
//!
//! `T` breaks the tie (last writer loses), `C[side]` announces presence,
//! and the split `P` handshake (0 → 1 → 2) lets the loser wait on its
//! own flag through both phases. An **arbitration tree** of these blocks
//! — process `p` uses side `(p >> level) & 1` in instance `p >> (level+1)`
//! — yields N-process mutual exclusion in `⌈log2 N⌉` rounds.
//!
//! Per-level spin flags `P[level][p]` are homed at `p`, so all waiting is
//! local under both machine models. The exhaustive checker verifies
//! mutual exclusion and starvation-freedom for small `N`; the
//! `bounds -- mcs` experiment includes it in the k = 1 comparison.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

/// Sentinel for "no process".
const NIL: Word = -1;

/// Local-variable layout.
const L_RIVAL: usize = 0;

/// One two-process Yang–Anderson instance.
struct Ya2 {
    /// `C[0..2]`: per-side announcement.
    c: VarId,
    /// `T`: the tie-breaker.
    t: VarId,
    /// `P[0..N]`: per-process spin flags for this instance, homed at the
    /// owning process.
    p_base: VarId,
}

impl Ya2 {
    fn new(b: &mut ProtocolBuilder, tag: &str) -> Self {
        let n = b.n();
        let c = b.vars.alloc_array(&format!("ya[{tag}].C"), 2, NIL);
        let t = b.vars.alloc(format!("ya[{tag}].T"), NIL);
        let mut p_base = None;
        for p in 0..n {
            let v = b.vars.alloc_local(format!("ya[{tag}].P[{p}]"), p, 0);
            p_base.get_or_insert(v);
        }
        Ya2 {
            c,
            t,
            p_base: p_base.unwrap(),
        }
    }
}

/// The arbitration tree of two-process instances: N-process mutual
/// exclusion from reads and writes, all spinning local.
pub struct YangAndersonNode {
    /// `levels[l]` holds the instances of round `l` (leaf round first).
    levels: Vec<Vec<Ya2>>,
    n: usize,
}

impl YangAndersonNode {
    /// Allocate the arbitration tree for the builder's process universe.
    pub fn new(b: &mut ProtocolBuilder) -> Self {
        let n = b.n();
        let depth = usize::max(1, n.next_power_of_two().trailing_zeros() as usize);
        let mut levels = Vec::with_capacity(depth);
        for l in 0..depth {
            let instances = usize::max(1, n.next_power_of_two() >> (l + 1));
            let level: Vec<Ya2> = (0..instances)
                .map(|i| Ya2::new(b, &format!("{l}.{i}")))
                .collect();
            levels.push(level);
        }
        YangAndersonNode { levels, n }
    }

    #[inline]
    fn instance(&self, level: usize, pid: usize) -> &Ya2 {
        &self.levels[level][pid >> (level + 1)]
    }

    #[inline]
    fn side(level: usize, pid: usize) -> usize {
        (pid >> level) & 1
    }

    #[inline]
    fn depth(&self) -> u32 {
        self.levels.len() as u32
    }
}

/// Per-level pc layout: each level consumes `STRIDE` program counters in
/// the entry section and `STRIDE_EXIT` in the exit section.
const STRIDE: u32 = 9;
const STRIDE_EXIT: u32 = 3;

impl Node for YangAndersonNode {
    fn name(&self) -> String {
        format!("yang-anderson(n={})", self.n)
    }

    fn locals_len(&self) -> usize {
        1
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid();
        match sec {
            Section::Entry => {
                let level = (pc / STRIDE) as usize;
                if level >= self.levels.len() {
                    return Step::Return;
                }
                let inst = self.instance(level, p);
                let side = Self::side(level, p);
                let base = level as u32 * STRIDE;
                match pc - base {
                    // 1: C[side] := p
                    0 => {
                        mem.write(at(inst.c, side), p as Word);
                        Step::Goto(base + 1)
                    }
                    // 2: T := p
                    1 => {
                        mem.write(inst.t, p as Word);
                        Step::Goto(base + 2)
                    }
                    // 3: P[p] := 0
                    2 => {
                        mem.write(at(inst.p_base, p), 0);
                        Step::Goto(base + 3)
                    }
                    // 4: rival := C[1-side]; 5: if rival != nil and T = p
                    3 => {
                        locals[L_RIVAL] = mem.read(at(inst.c, 1 - side));
                        Step::Goto(base + 4)
                    }
                    4 => {
                        if locals[L_RIVAL] != NIL && mem.read(inst.t) == p as Word {
                            Step::Goto(base + 5)
                        } else {
                            // Won this round: next level (or the CS).
                            locals[L_RIVAL] = 0; // dead (canonical states)
                            Step::Goto(base + STRIDE)
                        }
                    }
                    // 6: if P[rival] = 0 then P[rival] := 1   (one atomic
                    // read-then-write would be an RMW; split faithfully)
                    5 => {
                        let rival = locals[L_RIVAL] as usize;
                        if mem.read(at(inst.p_base, rival)) == 0 {
                            mem.write(at(inst.p_base, rival), 1);
                        }
                        locals[L_RIVAL] = 0; // dead until the exit section
                        Step::Goto(base + 6)
                    }
                    // 7: while P[p] = 0 do od   (local spin: P[p] only)
                    6 => {
                        if mem.read(at(inst.p_base, p)) == 0 {
                            Step::Goto(base + 6)
                        } else {
                            Step::Goto(base + 7)
                        }
                    }
                    // 8: if T = p then ...   (a single check, not a spin)
                    7 => {
                        if mem.read(inst.t) == p as Word {
                            Step::Goto(base + 8)
                        } else {
                            Step::Goto(base + STRIDE)
                        }
                    }
                    // 9: while P[p] <= 1 do od   (local spin: P[p] only)
                    8 => {
                        if mem.read(at(inst.p_base, p)) <= 1 {
                            Step::Goto(base + 8)
                        } else {
                            Step::Goto(base + STRIDE)
                        }
                    }
                    _ => unreachable!("ya entry: bad pc {pc}"),
                }
            }
            Section::Exit => {
                let d = self.depth();
                let round = pc / STRIDE_EXIT;
                if round >= d {
                    return Step::Return;
                }
                // Release top (widest) round first.
                let level = (d - 1 - round) as usize;
                let inst = self.instance(level, p);
                let side = Self::side(level, p);
                let base = round * STRIDE_EXIT;
                match pc - base {
                    // 10: C[side] := nil
                    0 => {
                        mem.write(at(inst.c, side), NIL);
                        Step::Goto(base + 1)
                    }
                    // 11: rival := T
                    1 => {
                        locals[L_RIVAL] = mem.read(inst.t);
                        Step::Goto(base + 2)
                    }
                    // 12: if rival != p then P[rival] := 2
                    2 => {
                        if locals[L_RIVAL] != p as Word && locals[L_RIVAL] != NIL {
                            mem.write(at(inst.p_base, locals[L_RIVAL] as usize), 2);
                        }
                        locals[L_RIVAL] = 0; // dead
                        Step::Goto(base + STRIDE_EXIT)
                    }
                    _ => unreachable!("ya exit: bad pc {pc}"),
                }
            }
        }
    }

    fn describe(&self, p: Pid) -> Option<NodeDesc> {
        let d = self.levels.len();
        let n = self.n;
        let mut entry = Vec::new();
        for level in 0..d {
            let inst = self.instance(level, p);
            let side = Self::side(level, p);
            let own_flag = at(inst.p_base, p);
            let base = (level * STRIDE as usize) as u32;
            entry.extend([
                StmtDesc::new(base, "1: C[side] := p")
                    .access(AccessDesc::write(at(inst.c, side)))
                    .goto(base + 1),
                StmtDesc::new(base + 1, "2: T := p")
                    .access(AccessDesc::write(inst.t))
                    .goto(base + 2),
                StmtDesc::new(base + 2, "3: P[p] := 0")
                    .access(AccessDesc::write(own_flag))
                    .goto(base + 3),
                StmtDesc::new(base + 3, "4: rival := C[1-side]")
                    .access(AccessDesc::read(at(inst.c, 1 - side)))
                    .goto(base + 4),
                StmtDesc::new(base + 4, "5: if rival != nil and T = p")
                    .access(AccessDesc::read(inst.t))
                    .goto(base + 5)
                    .goto(base + STRIDE),
                StmtDesc::new(base + 5, "6: if P[rival] = 0 then P[rival] := 1")
                    .access(AccessDesc::read_any(inst.p_base, n))
                    .access(AccessDesc::write_any(inst.p_base, n))
                    .goto(base + 6),
                StmtDesc::new(base + 6, "7: while P[p] = 0 do od")
                    .access(AccessDesc::read(own_flag))
                    .goto(base + 7)
                    .back_edge(BackEdge::spin(base + 6)),
                StmtDesc::new(base + 7, "8: if T = p")
                    .access(AccessDesc::read(inst.t))
                    .goto(base + 8)
                    .goto(base + STRIDE),
                StmtDesc::new(base + 8, "9: while P[p] <= 1 do od")
                    .access(AccessDesc::read(own_flag))
                    .goto(base + STRIDE)
                    .back_edge(BackEdge::spin(base + 8)),
            ]);
        }
        entry.push(StmtDesc::new((d * STRIDE as usize) as u32, "all rounds won").returns());
        let mut exit = Vec::new();
        for round in 0..d {
            let level = d - 1 - round;
            let inst = self.instance(level, p);
            let side = Self::side(level, p);
            let base = (round * STRIDE_EXIT as usize) as u32;
            exit.extend([
                StmtDesc::new(base, "10: C[side] := nil")
                    .access(AccessDesc::write(at(inst.c, side)))
                    .goto(base + 1),
                StmtDesc::new(base + 1, "11: rival := T")
                    .access(AccessDesc::read(inst.t))
                    .goto(base + 2),
                StmtDesc::new(base + 2, "12: if rival != p then P[rival] := 2")
                    .access(AccessDesc::write_any(inst.p_base, n))
                    .goto(base + STRIDE_EXIT),
            ]);
        }
        exit.push(
            StmtDesc::new((d * STRIDE_EXIT as usize) as u32, "all rounds released").returns(),
        );
        Some(NodeDesc {
            exclusion: Some(1),
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build the Yang–Anderson arbitration tree as a protocol root (k = 1).
pub fn yang_anderson(b: &mut ProtocolBuilder) -> NodeId {
    let node = YangAndersonNode::new(b);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = yang_anderson(&mut b);
        b.finish(root, 1)
    }

    #[test]
    fn exhaustive_two_process_block() {
        let report = explore(protocol(2), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("YA 2-process must be starvation-free");
    }

    #[test]
    fn exhaustive_three_process_tree() {
        // The heaviest single verification in the suite (~1.9M states):
        // the full two-level arbitration tree under every interleaving,
        // forever, including the SCC starvation-freedom analysis.
        let report = explore(protocol(3), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("YA tree must be starvation-free");
    }

    #[test]
    fn exhaustive_cross_subtree_pair() {
        // Two contenders from different level-0 subtrees meeting at the
        // root instance of a 4-process tree.
        let cfg = ExploreConfig {
            participants: Some(vec![0, 2]),
            ..ExploreConfig::default()
        };
        let report = explore(protocol(4), &cfg);
        report.assert_ok();
        check_starvation_freedom(&report).expect("YA tree must be starvation-free");
    }

    #[test]
    fn safe_under_random_schedules() {
        for seed in 0..10 {
            let mut sim = Sim::new(protocol(8), MemoryModel::Dsm)
                .cycles(20)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 3,
                })
                .build();
            let report = sim.run(20_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn logarithmic_rmr_growth() {
        // O(log N) remote references per acquisition on both models.
        for model in [MemoryModel::CacheCoherent, MemoryModel::Dsm] {
            let mut prev = 0;
            for n in [4usize, 8, 16, 32] {
                let mut worst = 0;
                for seed in 0..6 {
                    let mut sim = Sim::new(protocol(n), model)
                        .cycles(15)
                        .scheduler(RandomSched::new(seed))
                        .build();
                    let report = sim.run(100_000_000);
                    report.assert_safe();
                    worst = worst.max(report.stats.worst_pair());
                }
                let depth = (n.next_power_of_two().trailing_zeros()) as u64;
                assert!(
                    worst <= 12 * depth,
                    "YA should be O(log N): {worst} at n={n} under {model:?}"
                );
                // Sub-linear growth: doubling N adds at most one round.
                assert!(
                    prev == 0 || worst <= prev + 12,
                    "growth too steep: {prev} -> {worst}"
                );
                prev = worst;
            }
        }
    }

    #[test]
    fn only_reads_and_writes_no_rmw() {
        // A structural property: the node never calls an RMW primitive.
        // We verify behaviourally by checking the implementation compiles
        // against a read/write-only subset — here, by running a schedule
        // and confirming correctness (the simulator offers no way to
        // intercept primitives; the source audit is the module itself).
        // This test instead pins the headline consequence: mutual
        // exclusion holds with N > 2 where naive read/write algorithms
        // (e.g. a bare turn variable) cannot even express competition.
        let report = explore(protocol(3), &ExploreConfig::default());
        report.assert_ok();
    }
}

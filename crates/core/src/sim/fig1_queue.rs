//! Figure 1: `(N, k)`-exclusion from an atomic queue — the paper's
//! illustration of why the "obvious" queue solution is unattractive.
//!
//! ```text
//! shared variable
//!     X : (k-N)..k initially k   /* available slots minus waiters */
//!     Q : queue of 0..N-1        /* initially empty */
//!
//! 0: Noncritical Section
//! 1: <if fetch_and_increment(X, -1) <= 0 then Enqueue(p, Q)>   (atomic)
//! 2: while Element(p, Q) do od   /* busy-wait until dequeued */
//!    Critical Section
//! 3: <Dequeue(Q); fetch_and_increment(X, 1)>                   (atomic)
//! ```
//!
//! Two problems, both demonstrated by this crate's tests and benches:
//!
//! 1. The angle-bracketed statements are **multi-word atomic sections** —
//!    trivial in a simulator whose statements are atomic by construction,
//!    but unrealistic on real hardware (the paper's Table 1 lists these
//!    algorithms under "Large Critical Sections"). Deleting the brackets
//!    breaks the algorithm outright; see [`mod@crate::sim::fig1_nonatomic`],
//!    where the model checker finds the violation.
//! 2. The FIFO queue couples waiters: a waiter that crashes is eventually
//!    dequeued by an exiting process and silently swallows that grant —
//!    one of the `k` slots is destroyed (as in any counting algorithm
//!    whose victim crashed after its decrement). With the brackets intact
//!    the algorithm is still `(k-1)`-resilient; it is the brackets
//!    themselves — unimplementable with realistic primitives without
//!    reintroducing a single lock — that the paper's new algorithms
//!    eliminate, while also cutting the RMR cost.
//!
//! The queue is a fixed array `q[0..N]` plus a length word, kept
//! compacted at index 0 (dequeue shifts left). Shifting costs extra
//! accounted accesses, but they fall inside the statement-3 "large
//! atomic section" whose unrealism is this baseline's point — and the
//! canonical layout keeps the model checker's state space small.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

/// The Figure-1 queue-based `(N, k)`-exclusion node.
pub struct QueueKexNode {
    x: VarId,
    len: VarId,
    slots: VarId,
    n: usize,
}

impl QueueKexNode {
    /// Allocate the counter and queue variables.
    pub fn new(b: &mut ProtocolBuilder, k: usize) -> Self {
        let n = b.n();
        let x = b.vars.alloc("fig1.X", k as Word);
        let len = b.vars.alloc("fig1.len", 0);
        let slots = b.vars.alloc_array("fig1.q", n, -1);
        QueueKexNode { x, len, slots, n }
    }

    /// `Element(p, Q)`: scan the occupied prefix. Performed within a
    /// single atomic statement (each read is RMR-accounted).
    fn element(&self, mem: &mut MemCtx<'_>, p: Word) -> bool {
        let len = mem.read(self.len);
        for i in 0..len as usize {
            if mem.read(at(self.slots, i)) == p {
                return true;
            }
        }
        false
    }
}

impl Node for QueueKexNode {
    fn name(&self) -> String {
        format!("fig1-queue(n={})", self.n)
    }

    fn step(&self, sec: Section, pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid() as Word;
        match (sec, pc) {
            // statement 1 (atomic): if f&i(X,-1) <= 0 then Enqueue(p, Q)
            (Section::Entry, 0) => {
                if mem.fetch_and_increment(self.x, -1) <= 0 {
                    let len = mem.read(self.len);
                    mem.write(at(self.slots, len as usize), p);
                    mem.write(self.len, len + 1);
                    Step::Goto(1)
                } else {
                    Step::Return
                }
            }
            // statement 2: while Element(p, Q) do od
            (Section::Entry, 1) => {
                if self.element(mem, p) {
                    Step::Goto(1)
                } else {
                    Step::Return
                }
            }
            // statement 3 (atomic): Dequeue(Q); f&i(X, 1)
            (Section::Exit, 0) => {
                let len = mem.read(self.len);
                if len > 0 {
                    // Shift the queue left by one (compacted layout).
                    for i in 1..len as usize {
                        let v = mem.read(at(self.slots, i));
                        mem.write(at(self.slots, i - 1), v);
                    }
                    mem.write(at(self.slots, len as usize - 1), -1);
                    mem.write(self.len, len - 1);
                }
                mem.fetch_and_increment(self.x, 1);
                Step::Return
            }
            _ => unreachable!("fig1: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let n = self.n;
        let entry = vec![
            // The angle-bracketed enqueue: four word accesses fused into
            // one statement — exactly what the atomic-section lint is for.
            StmtDesc::new(0, "<if f&i(X,-1) <= 0 then Enqueue(p, Q)>")
                .access(AccessDesc::rmw(self.x))
                .access(AccessDesc::read(self.len))
                .access(AccessDesc::write_any(self.slots, n))
                .access(AccessDesc::write(self.len))
                .goto(1)
                .returns(),
            // Each wait iteration re-scans the whole occupied prefix.
            StmtDesc::new(1, "while Element(p, Q) do od")
                .access(AccessDesc::read(self.len))
                .access(AccessDesc::read_any(self.slots, n).times(n))
                .returns()
                .back_edge(BackEdge::spin(1)),
        ];
        let exit = vec![
            // Dequeue-with-shift plus the slot release, all in one
            // bracket: ~2N accesses in a single "atomic" statement.
            StmtDesc::new(0, "<Dequeue(Q); f&i(X, 1)>")
                .access(AccessDesc::read(self.len))
                .access(AccessDesc::read_any(self.slots, n).times(n.saturating_sub(1)))
                .access(AccessDesc::write_any(self.slots, n).times(n))
                .access(AccessDesc::write(self.len))
                .access(AccessDesc::rmw(self.x))
                .returns(),
        ];
        Some(NodeDesc {
            exclusion: None,
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build the Figure-1 node as a protocol root.
pub fn fig1_queue(b: &mut ProtocolBuilder, k: usize) -> kex_sim::types::NodeId {
    let node = QueueKexNode::new(b, k);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = fig1_queue(&mut b, k);
        b.finish(root, k)
    }

    #[test]
    fn safe_and_quiescent_without_failures() {
        for seed in 0..10 {
            let mut sim = Sim::new(protocol(5, 2), MemoryModel::CacheCoherent)
                .cycles(25)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(5_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn exhaustive_safety_and_liveness_without_failures() {
        let report = explore(protocol(3, 1), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("FIFO queue is starvation-free absent failures");
    }

    #[test]
    fn a_crashed_waiter_permanently_consumes_one_slot() {
        // With its atomic sections intact, Figure 1 *is* (k-1)-resilient:
        // a dead waiter is dequeued by the next exiting process and
        // silently swallows that grant — one of the k slots is lost
        // forever, but the survivors keep cycling through the rest.
        // Exhaustive over every crash placement at (3, 2).
        let cfg = ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        };
        let report = explore(protocol(3, 2), &cfg);
        report.assert_ok();
        check_starvation_freedom(&report)
            .expect("atomic figure 1 tolerates k-1 = 1 failure (at the cost of a slot)");
        // The paper's actual objection to this algorithm — that the
        // atomic sections cannot be realistically implemented, and naive
        // decompositions break — is demonstrated in `fig1_nonatomic`.
    }
}

//! Figure 3(a): arranging `(2k, k)`-exclusion building blocks in a
//! binary tree that halves the number of processes at each level until
//! only `k` remain — Theorems 2 and 6.
//!
//! Processes are partitioned into groups of `2k` at the leaves; each
//! group passes through its leaf block, which admits at most `k` of them.
//! Winners from two sibling blocks (at most `2k` together) contend in the
//! parent block, and so on to the root, whose at-most-`k` winners hold the
//! critical section. A process acquires leaf→root and releases root→leaf.
//!
//! The blocks must not require a process to know the identities of other
//! processes in advance — the paper notes its building blocks have this
//! property, and it is what makes the composition sound (any subset of
//! processes can show up at any block).
//!
//! Worst-case cost: `depth × block cost` = `7k·log2⌈N/k⌉` on CC
//! (Theorem 2) or `14k·log2⌈N/k⌉` on DSM (Theorem 6).

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, Word};

/// A builder of `(m, k)`-exclusion blocks, used as the tree's (and fast
/// path's) building block factory. Receives `(builder, m, k)` where `m`
/// is the maximum number of processes that will contend in the block.
pub type BlockBuilder<'a> = &'a mut dyn FnMut(&mut ProtocolBuilder, usize, usize) -> NodeId;

/// The tree combinator node: routes each process through one block per
/// level, leaf to root.
pub struct TreeNode {
    /// `levels[0]` = leaves, `levels.last()` = root level (single block).
    levels: Vec<Vec<NodeId>>,
    /// Processes per leaf group (`arity * k`).
    group: usize,
    /// Children merged per level (the paper's Figure 3(a) uses 2).
    arity: usize,
}

impl TreeNode {
    #[inline]
    fn block_at(&self, level: usize, pid: usize) -> NodeId {
        let mut g = pid / self.group;
        for _ in 0..level {
            g /= self.arity;
        }
        self.levels[level][g]
    }

    #[inline]
    fn depth(&self) -> u32 {
        self.levels.len() as u32
    }
}

impl Node for TreeNode {
    fn name(&self) -> String {
        format!("tree(depth={})", self.levels.len())
    }

    fn step(&self, sec: Section, pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let d = self.depth();
        if pc >= d {
            return Step::Return;
        }
        match sec {
            // Acquire leaf (level 0) up to the root (level d-1).
            Section::Entry => Step::Call {
                child: self.block_at(pc as usize, mem.pid()),
                section: Section::Entry,
                ret: pc + 1,
            },
            // Release root down to the leaf.
            Section::Exit => Step::Call {
                child: self.block_at((d - 1 - pc) as usize, mem.pid()),
                section: Section::Exit,
                ret: pc + 1,
            },
        }
    }

    fn describe(&self, p: Pid) -> Option<NodeDesc> {
        // Pure combinator: process p's path is one block per level, leaf
        // to root on entry and root to leaf on exit. No shared accesses
        // of its own.
        let d = self.levels.len();
        let mut entry = Vec::new();
        let mut exit = Vec::new();
        for pc in 0..d {
            entry.push(StmtDesc::new(pc as u32, "Acquire(level block)").call(
                self.block_at(pc, p),
                Section::Entry,
                pc as u32 + 1,
            ));
            exit.push(StmtDesc::new(pc as u32, "Release(level block)").call(
                self.block_at(d - 1 - pc, p),
                Section::Exit,
                pc as u32 + 1,
            ));
        }
        entry.push(StmtDesc::new(d as u32, "root acquired").returns());
        exit.push(StmtDesc::new(d as u32, "leaf released").returns());
        Some(NodeDesc {
            exclusion: None,
            spin_space: SpaceClass::NoSpin,
            entry,
            exit,
        })
    }
}

/// Build an `(n, k)`-exclusion tree from `(2k, k)` blocks produced by
/// `block`, merging two children per level — the paper's Figure 3(a).
/// Falls back to a single `(n, k)` block when `n <= 2k`.
pub fn tree(b: &mut ProtocolBuilder, n: usize, k: usize, block: BlockBuilder<'_>) -> NodeId {
    tree_with_arity(b, n, k, 2, block)
}

/// Generalized tree: merge `arity` children per level, so each block is
/// an `(arity*k, k)`-exclusion. Higher arity trades a shallower tree
/// (fewer levels) for costlier blocks (`7(arity-1)k` per level on CC) —
/// the ablation knob behind the paper's choice of a binary tree.
///
/// # Panics
/// Panics unless `1 <= k < n` and `arity >= 2`.
pub fn tree_with_arity(
    b: &mut ProtocolBuilder,
    n: usize,
    k: usize,
    arity: usize,
    block: BlockBuilder<'_>,
) -> NodeId {
    assert!(k >= 1 && k < n, "tree requires 1 <= k < n");
    assert!(arity >= 2, "tree arity must be at least 2");
    let group = arity * k;
    if n <= group {
        return block(b, n, k);
    }
    let leaf_count = n.div_ceil(group);
    let mut levels = Vec::new();
    let mut count = leaf_count;
    loop {
        let level: Vec<NodeId> = (0..count).map(|_| block(b, group, k)).collect();
        levels.push(level);
        if count == 1 {
            break;
        }
        count = count.div_ceil(arity);
    }
    b.add(TreeNode {
        levels,
        group,
        arity,
    })
}

/// The binary tree's depth for given `(n, k)` — the number of blocks on
/// each process's path. Used by bound calculations in experiments.
pub fn tree_depth(n: usize, k: usize) -> u32 {
    tree_depth_with_arity(n, k, 2)
}

/// [`tree_depth`] for an arbitrary arity.
pub fn tree_depth_with_arity(n: usize, k: usize, arity: usize) -> u32 {
    if n <= arity * k {
        return 1;
    }
    let mut count = n.div_ceil(arity * k);
    let mut depth = 1;
    while count > 1 {
        count = count.div_ceil(arity);
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::fig2::fig2_chain;
    use crate::sim::fig6::fig6_chain;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn cc_tree_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = tree(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k));
        b.finish(root, k)
    }

    #[test]
    fn depth_matches_log_formula() {
        assert_eq!(tree_depth(4, 2), 1); // single block
        assert_eq!(tree_depth(8, 2), 2); // 2 leaves + root
        assert_eq!(tree_depth(16, 2), 3);
        assert_eq!(tree_depth(9, 2), 3); // 3 leaves -> 2 -> 1
        assert_eq!(tree_depth(64, 4), 4);
    }

    #[test]
    fn tree_is_safe_under_random_schedules() {
        for seed in 0..10 {
            let mut sim = Sim::new(cc_tree_protocol(8, 2), MemoryModel::CacheCoherent)
                .cycles(15)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn dsm_tree_is_safe_too() {
        let mut b = ProtocolBuilder::new(8);
        let root = tree(&mut b, 8, 2, &mut |b, m, k| fig6_chain(b, m, k));
        let proto = b.finish(root, 2);
        for seed in 0..5 {
            let mut sim = Sim::new(proto.clone(), MemoryModel::Dsm)
                .cycles(10)
                .scheduler(RandomSched::new(seed))
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn tree_cost_is_within_theorem_2_bound() {
        // Theorem 2: 7k * log2(ceil(N/k)) per pair... more precisely
        // depth * 7k where depth = tree_depth (the per-block chain costs
        // 7k for a (2k,k) block).
        let (n, k) = (16, 2);
        let mut worst = 0;
        for seed in 0..10 {
            let mut sim = Sim::new(cc_tree_protocol(n, k), MemoryModel::CacheCoherent)
                .cycles(15)
                .scheduler(RandomSched::new(seed))
                .build();
            let report = sim.run(20_000_000);
            report.assert_safe();
            worst = worst.max(report.stats.worst_pair());
        }
        let bound = 7 * k as u64 * tree_depth(n, k) as u64;
        assert!(worst <= bound, "measured {worst} > bound {bound}");
        // And the tree beats the flat chain bound for the same (n, k):
        assert!(bound < 7 * (n as u64 - k as u64));
    }

    #[test]
    fn arity_depth_tradeoff() {
        // Higher arity -> shallower tree; (arity-1)k cost per level is
        // checked empirically in the `bounds -- arity` experiment.
        use super::tree_depth_with_arity;
        assert_eq!(tree_depth_with_arity(32, 2, 2), 4);
        assert_eq!(tree_depth_with_arity(32, 2, 4), 2);
        assert_eq!(tree_depth_with_arity(32, 2, 8), 2);
        assert_eq!(tree_depth_with_arity(32, 2, 16), 1);
    }

    #[test]
    fn quaternary_tree_is_safe() {
        let mut b = ProtocolBuilder::new(16);
        let root = super::tree_with_arity(&mut b, 16, 2, 4, &mut |b, m, k| fig2_chain(b, m, k));
        let proto = b.finish(root, 2);
        for seed in 0..5 {
            let mut sim = Sim::new(proto.clone(), MemoryModel::CacheCoherent)
                .cycles(10)
                .scheduler(RandomSched::new(seed))
                .build();
            let report = sim.run(20_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn exhaustive_quaternary_tree_small() {
        // (6,1) with arity 3: one leaf level of 2 blocks + root; three
        // participants spanning leaves.
        let mut b = ProtocolBuilder::new(6);
        let root = super::tree_with_arity(&mut b, 6, 1, 3, &mut |b, m, k| fig2_chain(b, m, k));
        let proto = b.finish(root, 1);
        let cfg = ExploreConfig {
            participants: Some(vec![0, 3, 5]),
            ..ExploreConfig::default()
        };
        let report = explore(proto, &cfg);
        report.assert_ok();
        check_starvation_freedom(&report).expect("arity-3 tree must be starvation-free");
    }

    #[test]
    fn exhaustive_small_tree() {
        // (6, 1): 3 leaves of 2 processes, depth 3; k = 1 means full
        // mutual exclusion through the tree. Restrict to 3 participants
        // spanning different leaves to keep the space small.
        let cfg = ExploreConfig {
            participants: Some(vec![0, 2, 4]),
            ..ExploreConfig::default()
        };
        let report = explore(cc_tree_protocol(6, 1), &cfg);
        report.assert_ok();
        check_starvation_freedom(&report).expect("tree must be starvation-free");
    }
}

//! Figure 4: `(N, k)`-exclusion with a **fast path** — Theorems 3 and 7,
//! and (applied recursively) the gracefully-degrading Theorems 4 and 8.
//!
//! ```text
//! shared variable X : 0..k initially k    /* fast-path slot counter */
//! private variable slow : boolean         /* records path taken     */
//!
//! 0: Noncritical Section
//! 1: slow := false
//! 2: if fetch_and_increment(X, -1) = 0 then   /* no fast slots */
//! 3:     slow := true
//! 4:     Acquire(N - k)                       /* slow path */
//! 5: Acquire(2k)                              /* final (2k,k) block */
//!    Critical Section
//! 6: Release(2k)
//! 7: if slow then
//! 8:     Release(N - k)
//! 9: else fetch_and_increment(X, 1)
//! ```
//!
//! `fetch_and_increment(X, -1)` is assumed range-safe (footnote 2): it
//! leaves `X` unchanged when `X = 0`; we use the simulator's clamped
//! primitive.
//!
//! At most `k` processes hold fast-path slots at a time, and the slow
//! path is itself a `k`-admitting `(N, k)`-exclusion (per the paper's
//! `Acquire(N-k)` shorthand), so at most `2k` processes ever contend in
//! the final `(2k, k)` block. When contention is at most `k`, statement
//! 2's test never fails, so only the fast f&i pair plus the uncontended
//! `(2k, k)` block is paid — `O(k)` remote references in total — while
//! high contention degrades to the slow path's cost (the tree for
//! Theorems 3/7, a recursive fast path for the graceful Theorems 4/8).

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};

use super::tree::{tree, BlockBuilder};

/// Local-variable layout.
const L_SLOW: usize = 0;

/// The Figure-4 combinator node.
pub struct FastPathNode {
    /// Fast-path slot counter `X`, initially `k`.
    x: VarId,
    /// The slow path: an `(N, k)`-exclusion over the overflow processes.
    slow: NodeId,
    /// The final `(2k, k)` block.
    block: NodeId,
    k: usize,
}

impl FastPathNode {
    /// Construct a fast-path node over an existing slow path and final
    /// block.
    pub fn new(b: &mut ProtocolBuilder, k: usize, slow: NodeId, block: NodeId) -> Self {
        let x = b
            .vars
            .alloc(format!("fastpath.X(k={k},v{})", b.vars.len()), k as Word);
        FastPathNode { x, slow, block, k }
    }
}

impl Node for FastPathNode {
    fn name(&self) -> String {
        format!("fast-path(k={})", self.k)
    }

    fn locals_len(&self) -> usize {
        1
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        match (sec, pc) {
            // statement 1: slow := false (private)
            (Section::Entry, 0) => {
                locals[L_SLOW] = 0;
                Step::Goto(1)
            }
            // statement 2: if fetch_and_increment(X, -1) = 0
            (Section::Entry, 1) => {
                let old = mem.fetch_and_increment_clamped(self.x, -1, 0, self.k as Word);
                if old == 0 {
                    Step::Goto(2)
                } else {
                    Step::Goto(3) // fast path: straight to the block
                }
            }
            // statement 3: slow := true (private)
            (Section::Entry, 2) => {
                locals[L_SLOW] = 1;
                // statement 4: Acquire(N-k) — the slow path
                Step::Call {
                    child: self.slow,
                    section: Section::Entry,
                    ret: 3,
                }
            }
            // statement 5: Acquire(2k)
            (Section::Entry, 3) => Step::Call {
                child: self.block,
                section: Section::Entry,
                ret: 4,
            },
            (Section::Entry, 4) => Step::Return,

            // statement 6: Release(2k)
            (Section::Exit, 0) => Step::Call {
                child: self.block,
                section: Section::Exit,
                ret: 1,
            },
            // statement 7: if slow
            (Section::Exit, 1) => {
                if locals[L_SLOW] != 0 {
                    // statement 8: Release(N-k)
                    Step::Call {
                        child: self.slow,
                        section: Section::Exit,
                        ret: 3,
                    }
                } else {
                    Step::Goto(2)
                }
            }
            // statement 9: fetch_and_increment(X, 1)
            (Section::Exit, 2) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Return
            }
            (Section::Exit, 3) => Step::Return,
            _ => unreachable!("fast-path: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let entry = vec![
            StmtDesc::new(0, "1: slow := false").goto(1),
            StmtDesc::new(1, "2: if f&i(X, -1) = 0")
                .access(AccessDesc::rmw(self.x))
                .goto(2)
                .goto(3),
            StmtDesc::new(2, "3-4: slow := true; Acquire(N-k)").call(self.slow, Section::Entry, 3),
            StmtDesc::new(3, "5: Acquire(2k)").call(self.block, Section::Entry, 4),
            StmtDesc::new(4, "acquired").returns(),
        ];
        let exit = vec![
            StmtDesc::new(0, "6: Release(2k)").call(self.block, Section::Exit, 1),
            StmtDesc::new(1, "7-8: if slow then Release(N-k)")
                .call(self.slow, Section::Exit, 3)
                .goto(2),
            StmtDesc::new(2, "9: f&i(X, 1)")
                .access(AccessDesc::rmw(self.x))
                .returns(),
            StmtDesc::new(3, "released").returns(),
        ];
        Some(NodeDesc {
            exclusion: Some(self.k),
            spin_space: SpaceClass::NoSpin,
            entry,
            exit,
        })
    }
}

/// Theorem 3/7 construction: fast path over a **tree** slow path, with
/// `(2k, k)` blocks from `block`.
///
/// `O(k)` remote references when contention is at most `k`;
/// `O(k · log2⌈N/k⌉)` when it exceeds `k`.
pub fn fast_path_over_tree(
    b: &mut ProtocolBuilder,
    n: usize,
    k: usize,
    block: BlockBuilder<'_>,
) -> NodeId {
    assert!(k >= 1 && k < n, "fast path requires 1 <= k < n");
    if n <= 2 * k {
        // Nothing to split: the block alone is (n, k)-exclusion.
        return block(b, n, k);
    }
    let slow = tree(b, n, k, block);
    let final_block = block(b, 2 * k, k);
    let node = FastPathNode::new(b, k, slow, final_block);
    b.add(node)
}

/// Theorem 4/8 construction: the **gracefully degrading** algorithm — the
/// slow path is itself a fast-path algorithm, recursively, so the cost is
/// proportional to `⌈c/k⌉` where `c` is the contention actually
/// encountered, rather than jumping to the full tree cost.
pub fn graceful(b: &mut ProtocolBuilder, n: usize, k: usize, block: BlockBuilder<'_>) -> NodeId {
    assert!(k >= 1 && k < n, "graceful requires 1 <= k < n");
    if n <= 2 * k {
        return block(b, n, k);
    }
    // Each nesting level absorbs k processes on its fast path; the
    // residual population shrinks by k per level (Figure 3(b), nested
    // dotted boxes).
    let slow = graceful(b, n - k, k, block);
    let final_block = block(b, 2 * k, k);
    let node = FastPathNode::new(b, k, slow, final_block);
    b.add(node)
}

/// Number of fast-path nesting levels the graceful construction uses for
/// `(n, k)` — the experiment harness uses this for bound curves.
pub fn graceful_depth(n: usize, k: usize) -> u32 {
    let mut n = n;
    let mut d = 0;
    while n > 2 * k {
        n -= k;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::fig2::fig2_chain;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn fast_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = fast_path_over_tree(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k));
        b.finish(root, k)
    }

    fn graceful_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = graceful(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k));
        b.finish(root, k)
    }

    #[test]
    fn fast_path_is_safe_under_random_schedules() {
        for seed in 0..10 {
            let mut sim = Sim::new(fast_protocol(8, 2), MemoryModel::CacheCoherent)
                .cycles(15)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn graceful_is_safe_under_random_schedules() {
        for seed in 0..10 {
            let mut sim = Sim::new(graceful_protocol(8, 2), MemoryModel::CacheCoherent)
                .cycles(15)
                .scheduler(RandomSched::new(seed))
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn low_contention_cost_is_constant_in_n() {
        // Theorem 3's headline: with contention <= k, the pair cost does
        // not depend on N (the slow path is never taken). Measure the
        // worst pair cost with a single participant for growing N.
        let mut costs = Vec::new();
        for n in [8, 16, 32] {
            let mut sim = Sim::new(fast_protocol(n, 2), MemoryModel::CacheCoherent)
                .cycles(10)
                .participants([0])
                .build();
            let report = sim.run(1_000_000);
            report.assert_safe();
            costs.push(report.stats.worst_pair());
        }
        assert_eq!(costs[0], costs[1], "cost must not grow with N");
        assert_eq!(costs[1], costs[2], "cost must not grow with N");
        // And it is O(k): comfortably below the full tree bound.
        assert!(
            costs[0] <= 3 * 2 + 4,
            "expected O(k) fast-path cost, got {}",
            costs[0]
        );
    }

    #[test]
    fn fast_path_slot_counter_never_escapes_its_range() {
        // Footnote 2's range-safe fetch-and-increment: X must stay in
        // 0..=k in every reachable state of every interleaving.
        let proto = fast_protocol(3, 1);
        let x = proto
            .vars()
            .iter()
            .find(|(_, s)| s.name.starts_with("fastpath.X"))
            .map(|(id, _)| id)
            .expect("fast-path X variable");
        let report = explore_with(proto, &ExploreConfig::default(), move |w| {
            let v = w.mem.peek(x);
            if (0..=1).contains(&v) {
                Ok(())
            } else {
                Err(format!("fast-path X = {v} outside 0..1"))
            }
        });
        report.assert_ok();
    }

    #[test]
    fn exhaustive_graceful_full_liveness() {
        // (3,1) graceful: every interleaving, every state, forever
        // (~100k states) — the strongest automated check we have of the
        // nested-fast-path construction.
        let report = explore(graceful_protocol(3, 1), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("graceful (3,1) must be starvation-free");
    }

    #[test]
    fn exhaustive_fast_path_full_liveness() {
        // (3,1) fast path over a tree (~640k states), unrestricted.
        let report = explore(fast_protocol(3, 1), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("fast path (3,1) must be starvation-free");
    }

    #[test]
    fn graceful_depth_tracks_population() {
        assert_eq!(graceful_depth(4, 2), 0);
        assert_eq!(graceful_depth(6, 2), 1);
        assert_eq!(graceful_depth(8, 2), 2);
        assert_eq!(graceful_depth(32, 4), 6);
    }
}

//! Simulator-form implementations of every algorithm in the paper, with
//! statement numbering preserved from the original figures.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`mod@fig1_queue`] | Figure 1 — atomic-queue baseline |
//! | [`fig2`]       | Figure 2 — CC building block + Theorem-1 chain |
//! | [`mod@tree`]       | Figure 3(a) — tree composition (Theorems 2, 6) |
//! | [`fast_path`]  | Figures 3(b), 4 — fast path (Thms 3, 7) and graceful degradation (Thms 4, 8) |
//! | [`fig5`]       | Figure 5 — DSM block, unbounded spin locations |
//! | [`fig6`]       | Figure 6 — DSM block, bounded (`k+2`) spin locations (Theorem 5) |
//! | [`mod@assignment`] | Figure 7 — long-lived renaming / k-assignment (Thms 9, 10) |
//! | [`mod@global_spin`]| non-local-spin baseline (Table 1's unbounded rows) |
//! | [`mod@fig1_nonatomic`] | Figure 1 with its atomic sections naively removed — a negative control the model checker rejects |
//! | [`mod@mcs`]        | MCS queue lock \[12\] — the §5 "fastest spin lock" k=1 yardstick |
//! | [`mod@yang_anderson`] | Yang–Anderson read/write-only local-spin mutex \[14\] |
//! | [`splitter`]   | read/write-only splitter-grid renaming — the companion reference \[13\] |
//! | [`build`]      | one-call factories for all of the above |

pub mod assignment;
pub mod build;
pub mod fast_path;
pub mod fig1_nonatomic;
pub mod fig1_queue;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod global_spin;
pub mod loc;
pub mod mcs;
pub mod splitter;
pub mod tree;
pub mod yang_anderson;

pub use assignment::{assignment, AssignmentNode};
pub use build::Algorithm;
pub use fast_path::{fast_path_over_tree, graceful, graceful_depth, FastPathNode};
pub use fig1_nonatomic::{fig1_nonatomic, NonatomicQueueNode};
pub use fig1_queue::{fig1_queue, QueueKexNode};
pub use fig2::{fig2_chain, Fig2Stage};
pub use fig5::{fig5_chain, Fig5Stage};
pub use fig6::{fig6_chain, Fig6Stage};
pub use global_spin::{global_spin, GlobalSpinNode};
pub use mcs::{mcs, McsNode};
pub use splitter::{grid_cells, splitter_assignment, splitter_grid_standalone, SplitterGridNode};
pub use tree::{tree, tree_depth, tree_depth_with_arity, tree_with_arity, BlockBuilder, TreeNode};
pub use yang_anderson::{yang_anderson, YangAndersonNode};

//! Figure 5: `(N, k)`-exclusion on a **distributed shared-memory**
//! machine using an *unbounded* number of local spin locations per
//! process, given an `(N, k+1)` child. Uses `fetch_and_increment` and
//! `compare_and_swap`.
//!
//! ```text
//! type loctype = record pid: 0..N-1; loc: 0..infinity end
//! shared variable
//!     X : -1..k                                initially k
//!     Q : loctype                              initially (0, 0)
//!     P : array[0..N-1][0..infinity] of bool   /* P[p][i] local to p */
//!
//! private variable next, v : loctype           initially next = (p, 0)
//!
//! 0:  Noncritical Section
//! 1:  Acquire(N, k+1)
//! 2:  if fetch_and_increment(X, -1) = 0 then       /* no slots        */
//! 3:      next.loc := next.loc + 1                 /* fresh location  */
//! 4:      P[p][next.loc] := false                  /* initialize      */
//! 5:      v := Q                                   /* current waiter  */
//! 6:      P[v.pid][v.loc] := true                  /* release it      */
//! 7:      if compare_and_swap(Q, v, next) then     /* still the same? */
//! 8:          if X < 0 then                        /* still no slots  */
//! 9:              while not P[p][next.loc] do od   /* local-spin wait */
//!     Critical Section
//! 10: fetch_and_increment(X, 1)
//! 11: v := Q
//! 12: P[v.pid][v.loc] := true
//! 13: Release(N, k+1)
//! ```
//!
//! Every wait uses a location never used before, so no stale-release race
//! exists — at the cost of unbounded space. Figure 6 ([`crate::sim::
//! fig6`]) bounds the space to `k+2` locations per process.
//!
//! The simulator cannot allocate truly unbounded arrays; a stage is built
//! with a `max_locs` capacity and panics if an execution exhausts it, so
//! experiments pick `max_locs` ≥ acquisitions + 1.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

use super::loc::LocCodec;

/// Local-variable layout.
const L_NEXT_LOC: usize = 0;
const L_V: usize = 1;

/// One Figure-5 stage: `(N, j)`-exclusion from an `(N, j+1)` child.
pub struct Fig5Stage {
    x: VarId,
    q: VarId,
    /// `P[p][i]`, flattened via the codec; `P[p][..]` owned by `p`.
    p_base: VarId,
    codec: LocCodec,
    child: Option<NodeId>,
    j: usize,
    n: usize,
}

impl Fig5Stage {
    /// Allocate shared variables for `n` processes with `max_locs` spin
    /// locations each (the "unbounded" array, truncated for simulation).
    /// `child` is the `(N, j+1)` algorithm, `None` for the skip basis.
    pub fn new(b: &mut ProtocolBuilder, j: usize, max_locs: usize, child: Option<NodeId>) -> Self {
        let n = b.n();
        let codec = LocCodec::new(max_locs);
        let x = b.vars.alloc(format!("fig5[{j}].X"), j as Word);
        let q = b.vars.alloc(format!("fig5[{j}].Q"), codec.enc(0, 0));
        // Allocate P[p][i] with per-process DSM ownership.
        let p_base = {
            let first = b.vars.alloc_local(format!("fig5[{j}].P[0][0]"), 0, 0);
            for pid in 0..n {
                for i in 0..max_locs {
                    if pid == 0 && i == 0 {
                        continue;
                    }
                    b.vars
                        .alloc_local(format!("fig5[{j}].P[{pid}][{i}]"), pid, 0);
                }
            }
            first
        };
        Fig5Stage {
            x,
            q,
            p_base,
            codec,
            child,
            j,
            n,
        }
    }

    #[inline]
    fn p_at(&self, packed: Word) -> VarId {
        at(self.p_base, self.codec.flat(packed))
    }

    /// Statement 2: `if fetch_and_increment(X,-1) = 0 then ...`
    fn stmt2(&self, mem: &mut MemCtx<'_>) -> Step {
        if mem.fetch_and_increment(self.x, -1) <= 0 {
            Step::Goto(2)
        } else {
            Step::Return
        }
    }
}

impl Node for Fig5Stage {
    fn name(&self) -> String {
        format!("fig5(j={})", self.j)
    }

    fn locals_len(&self) -> usize {
        2
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid();
        match (sec, pc) {
            // statement 1: Acquire(N, j+1) — skip at the basis.
            (Section::Entry, 0) => match self.child {
                Some(child) => Step::Call {
                    child,
                    section: Section::Entry,
                    ret: 1,
                },
                None => self.stmt2(mem),
            },
            // statement 2: if fetch_and_increment(X,-1) = 0
            (Section::Entry, 1) => self.stmt2(mem),
            // statement 3: next.loc := next.loc + 1 (private)
            (Section::Entry, 2) => {
                locals[L_NEXT_LOC] += 1;
                assert!(
                    (locals[L_NEXT_LOC] as usize) < self.codec.stride(),
                    "fig5 stage exhausted its simulated spin locations; \
                     raise max_locs or bound the cycle count"
                );
                Step::Goto(3)
            }
            // statement 4: P[p][next.loc] := false (local under DSM)
            (Section::Entry, 3) => {
                let mine = self.codec.enc(p, locals[L_NEXT_LOC]);
                mem.write(self.p_at(mine), 0);
                Step::Goto(4)
            }
            // statement 5: v := Q
            (Section::Entry, 4) => {
                locals[L_V] = mem.read(self.q);
                Step::Goto(5)
            }
            // statement 6: P[v.pid][v.loc] := true
            (Section::Entry, 5) => {
                mem.write(self.p_at(locals[L_V]), 1);
                Step::Goto(6)
            }
            // statement 7: if compare_and_swap(Q, v, next)
            (Section::Entry, 6) => {
                let mine = self.codec.enc(p, locals[L_NEXT_LOC]);
                let installed = mem.compare_and_swap(self.q, locals[L_V], mine);
                locals[L_V] = 0; // dead after the CAS (keeps checker states canonical)
                if installed {
                    Step::Goto(7)
                } else {
                    Step::Return // someone else already replaced Q: no wait
                }
            }
            // statement 8: if X < 0
            (Section::Entry, 7) => {
                if mem.read(self.x) < 0 {
                    Step::Goto(8)
                } else {
                    Step::Return
                }
            }
            // statement 9: while !P[p][next.loc] do od (local spin)
            (Section::Entry, 8) => {
                let mine = self.codec.enc(p, locals[L_NEXT_LOC]);
                if mem.read(self.p_at(mine)) == 0 {
                    Step::Goto(8)
                } else {
                    Step::Return
                }
            }

            // statement 10: fetch_and_increment(X, 1)
            (Section::Exit, 0) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Goto(1)
            }
            // statement 11: v := Q
            (Section::Exit, 1) => {
                locals[L_V] = mem.read(self.q);
                Step::Goto(2)
            }
            // statement 12: P[v.pid][v.loc] := true
            (Section::Exit, 2) => {
                mem.write(self.p_at(locals[L_V]), 1);
                locals[L_V] = 0; // dead
                match self.child {
                    // statement 13: Release(N, j+1) — skip at the basis.
                    Some(child) => Step::Call {
                        child,
                        section: Section::Exit,
                        ret: 3,
                    },
                    None => Step::Return,
                }
            }
            (Section::Exit, 3) => Step::Return,
            _ => unreachable!("fig5 stage: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, p: Pid) -> Option<NodeDesc> {
        let locs = self.codec.stride();
        // P[p][..] — the caller's own (locally owned) row.
        let own_row = at(self.p_base, p * locs);
        // P[*][*] — statements 6/12 release whichever record Q held.
        let all = self.n * locs;
        let mut entry = vec![match self.child {
            Some(child) => StmtDesc::new(0, "1: Acquire(N, j+1)").call(child, Section::Entry, 1),
            None => StmtDesc::new(0, "2: if f&i(X,-1) <= 0 (basis)")
                .access(AccessDesc::rmw(self.x))
                .goto(2)
                .returns(),
        }];
        entry.extend([
            StmtDesc::new(1, "2: if f&i(X,-1) <= 0")
                .access(AccessDesc::rmw(self.x))
                .goto(2)
                .returns(),
            StmtDesc::new(2, "3: next.loc := next.loc + 1").goto(3),
            StmtDesc::new(3, "4: P[p][next.loc] := false")
                .access(AccessDesc::write_any(own_row, locs))
                .goto(4),
            StmtDesc::new(4, "5: v := Q")
                .access(AccessDesc::read(self.q))
                .goto(5),
            StmtDesc::new(5, "6: P[v.pid][v.loc] := true")
                .access(AccessDesc::write_any(self.p_base, all))
                .goto(6),
            StmtDesc::new(6, "7: if CAS(Q, v, next)")
                .access(AccessDesc::rmw(self.q))
                .goto(7)
                .returns(),
            StmtDesc::new(7, "8: if X < 0")
                .access(AccessDesc::read(self.x))
                .goto(8)
                .returns(),
            StmtDesc::new(8, "9: while !P[p][next.loc] do od")
                .access(AccessDesc::read_any(own_row, locs))
                .returns()
                .back_edge(BackEdge::spin(8)),
        ]);
        let mut exit = vec![
            StmtDesc::new(0, "10: f&i(X, 1)")
                .access(AccessDesc::rmw(self.x))
                .goto(1),
            StmtDesc::new(1, "11: v := Q")
                .access(AccessDesc::read(self.q))
                .goto(2),
        ];
        match self.child {
            Some(child) => {
                exit.push(
                    StmtDesc::new(2, "12: P[v.pid][v.loc] := true")
                        .access(AccessDesc::write_any(self.p_base, all))
                        .call(child, Section::Exit, 3),
                );
                exit.push(StmtDesc::new(3, "13: Release(N, j+1) done").returns());
            }
            None => exit.push(
                StmtDesc::new(2, "12: P[v.pid][v.loc] := true")
                    .access(AccessDesc::write_any(self.p_base, all))
                    .returns(),
            ),
        }
        Some(NodeDesc {
            exclusion: Some(self.j),
            // The paper-true algorithm consumes a fresh location per wait;
            // the simulator's `max_locs` truncation is an artifact.
            spin_space: SpaceClass::Unbounded,
            entry,
            exit,
        })
    }
}

/// Build the Theorem-5-style inductive chain out of Figure-5 stages:
/// `(m, k)`-exclusion via stages `j = m-1 .. k` (skip basis).
///
/// `max_locs` bounds the per-process spin-location supply of every stage;
/// executions that wait more than `max_locs - 1` times in one stage panic.
pub fn fig5_chain(b: &mut ProtocolBuilder, m: usize, k: usize, max_locs: usize) -> NodeId {
    assert!(k >= 1 && k < m, "fig5 chain requires 1 <= k < m");
    let mut child: Option<NodeId> = None;
    for j in (k..m).rev() {
        let stage = Fig5Stage::new(b, j, max_locs, child);
        child = Some(b.add(stage));
    }
    child.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize, k: usize, max_locs: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = fig5_chain(&mut b, n, k, max_locs);
        b.finish(root, k)
    }

    #[test]
    fn safe_and_quiescent_under_round_robin() {
        let mut sim = Sim::new(protocol(3, 1, 128), MemoryModel::Dsm)
            .cycles(25)
            .build();
        let report = sim.run(1_000_000);
        report.assert_safe();
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.completed, vec![25, 25, 25]);
    }

    #[test]
    fn safe_under_random_schedules() {
        for seed in 0..15 {
            let mut sim = Sim::new(protocol(4, 2, 256), MemoryModel::Dsm)
                .cycles(25)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 1,
                })
                .build();
            let report = sim.run(5_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn exhaustive_small_instances_bounded_cycles() {
        // Figure 5's state space is infinite (fresh locations forever), so
        // the explorer bounds each process to a few cycles: (3,2) over two
        // cycles is ~220k states; (2,1) over three is small.
        let cfg = ExploreConfig {
            cycles: Some(2),
            ..ExploreConfig::default()
        };
        let report = explore(protocol(3, 2, 16), &cfg);
        report.assert_ok();

        let cfg = ExploreConfig {
            cycles: Some(3),
            ..ExploreConfig::default()
        };
        let report = explore(protocol(2, 1, 16), &cfg);
        report.assert_ok();
    }

    #[test]
    fn all_spinning_is_on_locally_owned_variables_under_dsm() {
        // The local-spin property: a waiting process generates no remote
        // references while it waits. We run a schedule in which p1 is
        // parked waiting while p0 repeatedly wins, and assert p1's remote
        // count does not grow while it spins.
        let proto = protocol(2, 1, 64);
        let mut w = World::new(proto, MemoryModel::Dsm, Timing::default(), None);
        // Drive p0 into its CS.
        while !w.procs[0].phase.in_critical() {
            w.step(0);
        }
        // Drive p1 until it is spinning (its whole frame stack is stable
        // across a step).
        let spin_pc = loop {
            let before = w.procs[1].stack.clone();
            w.step(1);
            if !before.is_empty() && before == w.procs[1].stack {
                break before.last().unwrap().pc;
            }
        };
        assert_eq!(spin_pc, 8, "p1 should be in the statement-9 spin loop");
        let before = w.mem.remote_refs(1);
        for _ in 0..1000 {
            w.step(1);
        }
        assert_eq!(
            w.mem.remote_refs(1),
            before,
            "spinning must be free of remote references under DSM"
        );
    }

    #[test]
    #[should_panic(expected = "exhausted its simulated spin locations")]
    fn exhausting_the_location_supply_is_loud() {
        // Long critical sections force the loser onto the slow branch
        // every cycle, so its location counter must exhaust max_locs = 3.
        let mut sim = Sim::new(protocol(2, 1, 3), MemoryModel::Dsm)
            .cycles(50)
            .timing(Timing {
                ncs_steps: 0,
                cs_steps: 8,
            })
            .build();
        let _ = sim.run(10_000_000);
    }
}

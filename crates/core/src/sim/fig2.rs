//! Figure 2: `(N, k)`-exclusion on a **cache-coherent** machine, given an
//! `(N, k+1)`-exclusion child, using `fetch_and_increment` and a single
//! spin word.
//!
//! ```text
//! shared variable
//!     X : -1..k   initially k     /* counter of available slots */
//!     Q : 0..N-1                  /* spin location */
//!
//! process p:
//! 0: Noncritical Section
//! 1: Acquire(N, k+1)              /* entry section of (N,k+1)-exclusion */
//! 2: if fetch_and_increment(X, -1) = 0 then   /* no slots available */
//! 3:     Q := p                               /* initialize spin location */
//! 4:     if X < 0 then                        /* still none - must wait  */
//! 5:         while Q = p do /* null */ od     /* busy-wait until released */
//!    Critical Section
//! 6: fetch_and_increment(X, 1)    /* release a slot */
//! 7: Q := p                       /* release waiting process (if any) */
//! 8: Release(N, k+1)              /* exit section of (N,k+1)-exclusion */
//! ```
//!
//! The key local-spin trick: at most one process — the one whose id is in
//! `Q` — ever waits at statement 5 at a time, and **any** subsequent write
//! to `Q` (by a releaser at statement 7 *or* by another arriving waiter at
//! statement 3) terminates its loop. Under the CC cost model the spin
//! therefore generates at most two remote references, giving the
//! worst-case 5 entry + 2 exit = 7 remote references per stage
//! (Theorem 1: `7(N-k)` for the full inductive chain).

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};

/// One Figure-2 stage: `(N, j)`-exclusion from an `(N, j+1)` child.
pub struct Fig2Stage {
    /// Slot counter `X`, initially `j`.
    x: VarId,
    /// Spin word `Q` holding a process id.
    q: VarId,
    /// The `(N, j+1)`-exclusion child; `None` for the trivial basis
    /// (`j = N-1`), where the paper's `Acquire`/`Release` are skips.
    child: Option<NodeId>,
    /// Number of slots `j` (for diagnostics).
    j: usize,
}

impl Fig2Stage {
    /// Allocate the stage's shared variables and construct it.
    ///
    /// `j` is the number of critical-section slots this stage admits;
    /// `child` must implement `(N, j+1)`-exclusion, or be `None` when
    /// `j = N-1` (the basis, where the nested acquire is a skip).
    pub fn new(b: &mut ProtocolBuilder, j: usize, child: Option<NodeId>) -> Self {
        let x = b.vars.alloc(format!("fig2[{j}].X"), j as Word);
        let q = b.vars.alloc(format!("fig2[{j}].Q"), 0);
        Fig2Stage { x, q, child, j }
    }

    /// Statement 2: `if fetch_and_increment(X,-1) = 0 then ...`
    fn stmt2(&self, mem: &mut MemCtx<'_>) -> Step {
        if mem.fetch_and_increment(self.x, -1) <= 0 {
            Step::Goto(2)
        } else {
            Step::Return // slot obtained: critical section
        }
    }
}

impl Node for Fig2Stage {
    fn name(&self) -> String {
        format!("fig2(j={})", self.j)
    }

    fn step(&self, sec: Section, pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid() as Word;
        match (sec, pc) {
            // ---- entry section ----
            // statement 1: Acquire(N, j+1) — a skip at the basis, in
            // which case statement 2 runs immediately.
            (Section::Entry, 0) => match self.child {
                Some(child) => Step::Call {
                    child,
                    section: Section::Entry,
                    ret: 1,
                },
                None => self.stmt2(mem),
            },
            // statement 2: if fetch_and_increment(X,-1) = 0 then ...
            (Section::Entry, 1) => self.stmt2(mem),
            // statement 3: Q := p
            (Section::Entry, 2) => {
                mem.write(self.q, p);
                Step::Goto(3)
            }
            // statement 4: if X < 0 then ...
            (Section::Entry, 3) => {
                if mem.read(self.x) < 0 {
                    Step::Goto(4)
                } else {
                    Step::Return
                }
            }
            // statement 5: while Q = p do od
            (Section::Entry, 4) => {
                if mem.read(self.q) == p {
                    Step::Goto(4)
                } else {
                    Step::Return
                }
            }
            // ---- exit section ----
            // statement 6: fetch_and_increment(X, 1)
            (Section::Exit, 0) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Goto(1)
            }
            // statement 7: Q := p (any write to Q releases the waiter)
            (Section::Exit, 1) => {
                mem.write(self.q, p);
                match self.child {
                    // statement 8: Release(N, j+1) — skip at the basis.
                    Some(child) => Step::Call {
                        child,
                        section: Section::Exit,
                        ret: 2,
                    },
                    None => Step::Return,
                }
            }
            (Section::Exit, 2) => Step::Return,
            _ => unreachable!("fig2 stage: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let stmt2 = |pc: u32| {
            StmtDesc::new(pc, "if f&i(X,-1) <= 0 goto 3 else CS")
                .access(AccessDesc::rmw(self.x))
                .goto(2)
                .returns()
        };
        let entry = vec![
            // pc 0 is Acquire(N, j+1) when a child exists; at the basis
            // it executes statement 2 directly and pc 1 is unreachable.
            match self.child {
                Some(child) => StmtDesc::new(0, "Acquire(N, j+1)").call(child, Section::Entry, 1),
                None => stmt2(0),
            },
            stmt2(1),
            StmtDesc::new(2, "Q := p")
                .access(AccessDesc::write(self.q))
                .goto(3),
            StmtDesc::new(3, "if X < 0 goto 5 else CS")
                .access(AccessDesc::read(self.x))
                .goto(4)
                .returns(),
            StmtDesc::new(4, "while Q = p do od")
                .access(AccessDesc::read(self.q))
                .returns()
                .back_edge(BackEdge::spin(4)),
        ];
        let exit = vec![
            StmtDesc::new(0, "f&i(X, 1)")
                .access(AccessDesc::rmw(self.x))
                .goto(1),
            {
                let s = StmtDesc::new(1, "Q := p").access(AccessDesc::write(self.q));
                match self.child {
                    Some(child) => s.call(child, Section::Exit, 2),
                    None => s.returns(),
                }
            },
            StmtDesc::new(2, "Release(N, j+1) done").returns(),
        ];
        Some(NodeDesc {
            exclusion: Some(self.j),
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build the Theorem-1 inductive chain: `(m, k)`-exclusion for a
/// population of `m` processes, as Figure-2 stages `j = m-1, m-2, .., k`
/// with the trivial skip basis at `j = m-1`'s child.
///
/// Worst-case remote references per entry+exit pair: `7(m - k)` on a
/// cache-coherent machine (Theorem 1).
///
/// # Panics
/// Panics unless `1 <= k < m`.
pub fn fig2_chain(b: &mut ProtocolBuilder, m: usize, k: usize) -> NodeId {
    assert!(k >= 1 && k < m, "fig2 chain requires 1 <= k < m");
    let mut child: Option<NodeId> = None;
    for j in (k..m).rev() {
        let stage = Fig2Stage::new(b, j, child);
        child = Some(b.add(stage));
    }
    child.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn chain_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = fig2_chain(&mut b, n, k);
        b.finish(root, k)
    }

    #[test]
    fn two_one_exclusion_is_safe_and_live_under_round_robin() {
        let mut sim = Sim::new(chain_protocol(2, 1), MemoryModel::CacheCoherent)
            .cycles(50)
            .build();
        let report = sim.run(1_000_000);
        report.assert_safe();
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.completed, vec![50, 50]);
    }

    #[test]
    fn chain_is_safe_under_many_random_schedules() {
        for seed in 0..20 {
            let mut sim = Sim::new(chain_protocol(5, 2), MemoryModel::CacheCoherent)
                .cycles(20)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(5_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn worst_case_pair_cost_is_within_theorem_1_bound() {
        // Theorem 1: 7(N-k) remote references per entry+exit pair on CC.
        for (n, k) in [(3, 1), (4, 2), (5, 2), (6, 3)] {
            let mut worst = 0;
            for seed in 0..10 {
                let mut sim = Sim::new(chain_protocol(n, k), MemoryModel::CacheCoherent)
                    .cycles(30)
                    .scheduler(RandomSched::new(seed))
                    .build();
                let report = sim.run(10_000_000);
                report.assert_safe();
                worst = worst.max(report.stats.worst_pair());
            }
            let bound = 7 * (n as u64 - k as u64);
            assert!(
                worst <= bound,
                "(n={n},k={k}): measured {worst} > bound {bound}"
            );
        }
    }

    #[test]
    fn exhaustive_check_small_instances() {
        // Every interleaving of (3,1), (3,2) and (4,2): k-exclusion holds.
        for (n, k) in [(3, 1), (3, 2), (4, 2)] {
            let report = explore(chain_protocol(n, k), &ExploreConfig::default());
            report.assert_ok();
            assert!(report.states > 10);
        }
    }

    #[test]
    fn exhaustive_starvation_freedom_without_failures() {
        let report = explore(chain_protocol(3, 1), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("fig2 chain must be starvation-free");
    }

    #[test]
    fn exhaustive_with_adversarial_crashes_up_to_k_minus_1() {
        // (3,2): one crash anywhere outside the NCS must not block the
        // two survivors.
        let cfg = ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        };
        let report = explore(chain_protocol(3, 2), &cfg);
        report.assert_ok();
        check_starvation_freedom(&report)
            .expect("fig2 (3,2)-exclusion must tolerate one crash failure");
    }

    #[test]
    fn paper_invariant_i2_x_counts_inside_processes() {
        // (I2): X = k - |{p : p@{3..6}}| for the single-stage (2,1)
        // instance. In our encoding, a process is "inside" the stage
        // (statements 3..6) from completing statement 2's decrement until
        // completing statement 6's increment. We verify the weaker but
        // state-checkable consequence used by the proof:
        // X >= -1 and X <= k always (the declared range of X).
        let protocol = chain_protocol(3, 2);
        let x_var = protocol.vars().find("fig2[2].X").expect("stage variable");
        let x_bound = 2 as Word;
        let report = explore_with(protocol, &ExploreConfig::default(), move |w| {
            let x = w.mem.peek(x_var);
            if x < -1 || x > x_bound {
                Err(format!("X = {x} outside -1..{x_bound}"))
            } else {
                Ok(())
            }
        });
        report.assert_ok();
    }

    #[test]
    fn paper_invariants_i2_and_i3_hold_exactly() {
        // For a single-stage instance we can state the proof's invariants
        // verbatim. A process is "inside" the stage (paper statements
        // 3..6) from the moment its statement-2 fetch-and-increment
        // executed until its statement-6 increment executes. In our
        // program-counter encoding for the childless stage:
        //   entry pc in {2,3,4}  -> at statements 3, 4, 5
        //   Critical             -> in the critical section
        //   exit pc == 0         -> statement 6 not yet executed
        //
        // (I2): X = k - |inside|
        // (I3): X < 0  =>  exists p: p@3 \/ (p@{4,5} /\ Q = p)
        let protocol = chain_protocol(3, 2);
        let x_var = protocol.vars().find("fig2[2].X").expect("X");
        let q_var = protocol.vars().find("fig2[2].Q").expect("Q");
        let k = 2 as Word;
        let report = explore_with(protocol, &ExploreConfig::default(), move |w| {
            let x = w.mem.peek(x_var);
            let q = w.mem.peek(q_var);
            let mut inside = 0;
            let mut i3_witness = false;
            for p in &w.procs {
                let top = p.stack.last();
                let (entry_pc, exit_pc) = match (p.phase, top) {
                    (Phase::Entry, Some(f)) => (Some(f.pc), None),
                    (Phase::Exit, Some(f)) => (None, Some(f.pc)),
                    _ => (None, None),
                };
                let is_inside =
                    matches!(entry_pc, Some(2..=4)) || p.phase.in_critical() || exit_pc == Some(0);
                if is_inside {
                    inside += 1;
                }
                // p@3 == about to execute statement 3 (our entry pc 2);
                // p@{4,5} == our entry pcs 3 and 4.
                if entry_pc == Some(2)
                    || (matches!(entry_pc, Some(3) | Some(4)) && q == p.pid as Word)
                {
                    i3_witness = true;
                }
            }
            if x != k - inside {
                return Err(format!("(I2) violated: X = {x}, inside = {inside}"));
            }
            if x < 0 && !i3_witness {
                return Err(format!("(I3) violated: X = {x} with no witness"));
            }
            Ok(())
        });
        report.assert_ok();
    }

    #[test]
    fn unless_property_u1_holds_along_every_transition() {
        // (U1): p@5 /\ Q != p  unless  p@6 — once a waiter at statement 5
        // observes Q != p, it can only move to the critical section (our
        // encoding: entry pc 4 with Q != p persists or the process leaves
        // the entry section). We check it as a transition property by
        // exploring and verifying the *state* form: a process at pc 4
        // whose Q != p can always step out; equivalently, no reachable
        // state shows a process at pc 4 with Q != p that has taken a step
        // back to pc 4 with Q = p. Since Q = p is only written by p
        // itself at statement 3, it suffices to check that a process at
        // pc 4 never has a pending self-write (its pc would have to pass
        // through 2 again first). State form: trivially true here; the
        // meaningful mechanized check is starvation-freedom, asserted in
        // `exhaustive_starvation_freedom_without_failures`. This test
        // pins the weaker state invariant that pc 4 implies the process
        // previously wrote Q (Q was p at some point), i.e. Q is a valid
        // pid.
        let protocol = chain_protocol(3, 2);
        let q_var = protocol.vars().find("fig2[2].Q").expect("Q");
        let report = explore_with(protocol, &ExploreConfig::default(), move |w| {
            let q = w.mem.peek(q_var);
            if (0..w.procs.len() as Word).contains(&q) {
                Ok(())
            } else {
                Err(format!("Q = {q} is not a pid"))
            }
        });
        report.assert_ok();
    }

    #[test]
    fn crash_of_k_processes_can_block_survivors() {
        // Negative control: with k = 1 even a single crash inside the CS
        // blocks everyone else — the algorithm promises only (k-1)
        // resilience. The liveness checker must detect the starvation.
        let cfg = ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        };
        let report = explore(chain_protocol(3, 1), &cfg);
        report.assert_ok(); // safety still holds
        let starving = kex_sim::liveness::check_starvation_freedom(&report);
        assert!(
            starving.is_err(),
            "a crash inside the only CS slot must starve the others"
        );
    }
}

//! Ready-made protocol factories: every algorithm variant of the paper,
//! buildable by name for experiments.

use std::sync::Arc;

use kex_sim::memmodel::MemoryModel;
use kex_sim::protocol::{Protocol, ProtocolBuilder};
use kex_sim::types::NodeId;

use super::assignment::assignment;
use super::fast_path::{fast_path_over_tree, graceful};
use super::fig1_queue::fig1_queue;
use super::fig2::fig2_chain;
use super::fig5::fig5_chain;
use super::fig6::fig6_chain;
use super::global_spin::global_spin;
use super::tree::tree;

/// Every simulator algorithm variant, for experiment catalogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Figure 1: atomic-queue baseline (large atomic sections, like
    /// \[9\]/\[10\] in Table 1).
    QueueFig1,
    /// Non-local-spin global counter baseline (unbounded RMRs under
    /// contention, like \[8\]/\[1\] in Table 1).
    GlobalSpin,
    /// Theorem 1: Figure-2 inductive chain (CC, `7(N-k)`).
    CcChain,
    /// Theorem 2: tree of Figure-2 `(2k,k)` blocks (CC, `7k·log2⌈N/k⌉`).
    CcTree,
    /// Theorem 3: fast path over a CC tree (`O(k)` at low contention).
    CcFastPath,
    /// Theorem 4: gracefully degrading nested fast paths (CC).
    CcGraceful,
    /// Figure 5 chain: DSM, unbounded spin locations.
    DsmUnboundedChain,
    /// Theorem 5: Figure-6 inductive chain (DSM, `14(N-k)`).
    DsmChain,
    /// Theorem 6: tree of Figure-6 blocks (DSM, `14k·log2⌈N/k⌉`).
    DsmTree,
    /// Theorem 7: fast path over a DSM tree.
    DsmFastPath,
    /// Theorem 8: gracefully degrading nested fast paths (DSM).
    DsmGraceful,
    /// Theorem 9: k-assignment = CC fast path + Figure-7 renaming.
    AssignmentCc,
    /// Theorem 10: k-assignment = DSM fast path + Figure-7 renaming.
    AssignmentDsm,
}

impl Algorithm {
    /// All variants, in Table-1 presentation order.
    pub const ALL: [Algorithm; 13] = [
        Algorithm::QueueFig1,
        Algorithm::GlobalSpin,
        Algorithm::CcChain,
        Algorithm::CcTree,
        Algorithm::CcFastPath,
        Algorithm::CcGraceful,
        Algorithm::DsmUnboundedChain,
        Algorithm::DsmChain,
        Algorithm::DsmTree,
        Algorithm::DsmFastPath,
        Algorithm::DsmGraceful,
        Algorithm::AssignmentCc,
        Algorithm::AssignmentDsm,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::QueueFig1 => "fig1-queue",
            Algorithm::GlobalSpin => "global-spin",
            Algorithm::CcChain => "cc-chain (Thm 1)",
            Algorithm::CcTree => "cc-tree (Thm 2)",
            Algorithm::CcFastPath => "cc-fastpath (Thm 3)",
            Algorithm::CcGraceful => "cc-graceful (Thm 4)",
            Algorithm::DsmUnboundedChain => "dsm-unbounded (Fig 5)",
            Algorithm::DsmChain => "dsm-chain (Thm 5)",
            Algorithm::DsmTree => "dsm-tree (Thm 6)",
            Algorithm::DsmFastPath => "dsm-fastpath (Thm 7)",
            Algorithm::DsmGraceful => "dsm-graceful (Thm 8)",
            Algorithm::AssignmentCc => "assign-cc (Thm 9)",
            Algorithm::AssignmentDsm => "assign-dsm (Thm 10)",
        }
    }

    /// The memory model this variant targets (used for RMR accounting in
    /// experiments; any variant *runs* correctly under either model).
    pub fn model(self) -> MemoryModel {
        match self {
            Algorithm::QueueFig1
            | Algorithm::GlobalSpin
            | Algorithm::CcChain
            | Algorithm::CcTree
            | Algorithm::CcFastPath
            | Algorithm::CcGraceful
            | Algorithm::AssignmentCc => MemoryModel::CacheCoherent,
            _ => MemoryModel::Dsm,
        }
    }

    /// Build the `(n, k)` instance of this variant.
    ///
    /// `max_locs` only matters for [`Algorithm::DsmUnboundedChain`]
    /// (Figure 5's simulated location supply).
    pub fn build(self, n: usize, k: usize, max_locs: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root: NodeId = match self {
            Algorithm::QueueFig1 => fig1_queue(&mut b, k),
            Algorithm::GlobalSpin => global_spin(&mut b, k),
            Algorithm::CcChain => fig2_chain(&mut b, n, k),
            Algorithm::CcTree => tree(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k)),
            Algorithm::CcFastPath => {
                fast_path_over_tree(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k))
            }
            Algorithm::CcGraceful => graceful(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k)),
            Algorithm::DsmUnboundedChain => fig5_chain(&mut b, n, k, max_locs),
            Algorithm::DsmChain => fig6_chain(&mut b, n, k),
            Algorithm::DsmTree => tree(&mut b, n, k, &mut |b, m, k| fig6_chain(b, m, k)),
            Algorithm::DsmFastPath => {
                fast_path_over_tree(&mut b, n, k, &mut |b, m, k| fig6_chain(b, m, k))
            }
            Algorithm::DsmGraceful => graceful(&mut b, n, k, &mut |b, m, k| fig6_chain(b, m, k)),
            Algorithm::AssignmentCc => {
                let kex = fast_path_over_tree(&mut b, n, k, &mut |b, m, k| fig2_chain(b, m, k));
                assignment(&mut b, k, kex)
            }
            Algorithm::AssignmentDsm => {
                let kex = fast_path_over_tree(&mut b, n, k, &mut |b, m, k| fig6_chain(b, m, k));
                assignment(&mut b, k, kex)
            }
        };
        b.finish(root, k)
    }
}

/// Theorem-1-style chain: `(n, k)`-exclusion, CC, `7(N-k)` bound.
pub fn cc_chain(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::CcChain.build(n, k, 0)
}

/// Theorem-2 tree on CC.
pub fn cc_tree(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::CcTree.build(n, k, 0)
}

/// Theorem-3 fast path on CC.
pub fn cc_fast_path(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::CcFastPath.build(n, k, 0)
}

/// Theorem-4 graceful degradation on CC.
pub fn cc_graceful(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::CcGraceful.build(n, k, 0)
}

/// Figure-5 chain on DSM with a bounded location supply.
pub fn dsm_unbounded_chain(n: usize, k: usize, max_locs: usize) -> Arc<Protocol> {
    Algorithm::DsmUnboundedChain.build(n, k, max_locs)
}

/// Theorem-5 chain (Figure 6) on DSM.
pub fn dsm_chain(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::DsmChain.build(n, k, 0)
}

/// Theorem-6 tree on DSM.
pub fn dsm_tree(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::DsmTree.build(n, k, 0)
}

/// Theorem-7 fast path on DSM.
pub fn dsm_fast_path(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::DsmFastPath.build(n, k, 0)
}

/// Theorem-8 graceful degradation on DSM.
pub fn dsm_graceful(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::DsmGraceful.build(n, k, 0)
}

/// Figure-1 queue baseline.
pub fn queue_fig1(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::QueueFig1.build(n, k, 0)
}

/// Global-spin baseline.
pub fn global_spin_baseline(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::GlobalSpin.build(n, k, 0)
}

/// Theorem-9 k-assignment (CC).
pub fn assignment_cc(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::AssignmentCc.build(n, k, 0)
}

/// Theorem-10 k-assignment (DSM).
pub fn assignment_dsm(n: usize, k: usize) -> Arc<Protocol> {
    Algorithm::AssignmentDsm.build(n, k, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;

    #[test]
    fn every_variant_builds_and_runs_safely() {
        for algo in Algorithm::ALL {
            let proto = algo.build(6, 2, 512);
            let mut sim = Sim::new(proto, algo.model())
                .cycles(8)
                .scheduler(RandomSched::new(1))
                .build();
            let report = sim.run(10_000_000);
            report.assert_safe();
            assert_eq!(
                report.stop,
                StopReason::Quiescent,
                "{} did not quiesce",
                algo.label()
            );
            assert_eq!(report.total_completed(), 6 * 8, "{}", algo.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Algorithm::ALL.iter().map(|a| a.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Algorithm::ALL.len());
    }
}

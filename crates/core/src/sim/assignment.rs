//! Figure 7: long-lived renaming via `test_and_set`, wrapped around any
//! `(N, k)`-exclusion algorithm to yield **`(N, k)`-assignment**
//! (Theorems 9 and 10).
//!
//! ```text
//! shared variable X : array[0..k-2] of boolean, initially all false
//! local variable name : 0..k-1 initially 0
//!
//! 0: Noncritical Section
//! 1: Acquire(N, k)                       /* k-exclusion entry */
//! 2: while name < k-1 and test_and_set(X[name]) = true do
//!        name := name + 1                /* first clear bit is the name */
//!    Critical Section  (using name)
//! 3: X[name], name := false, 0           /* release name, reset */
//! 4: Release(N, k)                       /* k-exclusion exit */
//! ```
//!
//! Inside the k-exclusion at most `k` processes run the loop, and it can
//! be shown that whenever a process is about to test `X[i]` some bit in
//! `X[i..k-1]` is clear; so after at most `k-1` failed test-and-sets the
//! process may take name `k-1` *without* a bit — the paper notes bit
//! `X[k-1]` is unnecessary. Renaming is **long-lived**: names are
//! acquired and released repeatedly, the first renaming algorithm with
//! this property. Cost: at most `k` additional remote references per
//! acquisition (plus one release write), name space exactly `k`.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

/// Local-variable layout.
const L_NAME: usize = 0;
const L_HOLDING: usize = 1;

/// The k-assignment wrapper node: `(N, k)`-exclusion child + Figure-7
/// renaming.
pub struct AssignmentNode {
    /// `X[0..k-1]` test-and-set bits (element `k-1` is allocated but
    /// never used, mirroring the paper's remark that it is unnecessary).
    bits: VarId,
    kex: NodeId,
    k: usize,
}

impl AssignmentNode {
    /// Allocate the name bits over an existing `(N, k)`-exclusion child.
    pub fn new(b: &mut ProtocolBuilder, k: usize, kex: NodeId) -> Self {
        let bits = b.vars.alloc_array("rename.X", k.max(1), 0);
        AssignmentNode { bits, kex, k }
    }
}

impl Node for AssignmentNode {
    fn name(&self) -> String {
        format!("k-assignment(k={})", self.k)
    }

    fn locals_len(&self) -> usize {
        2
    }

    fn acquired_name(&self, locals: &[Word]) -> Option<Word> {
        if locals[L_HOLDING] != 0 {
            Some(locals[L_NAME])
        } else {
            None
        }
    }

    fn assigns_names(&self) -> bool {
        true
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let k = self.k as Word;
        match (sec, pc) {
            // statement 1: Acquire(N, k)
            (Section::Entry, 0) => Step::Call {
                child: self.kex,
                section: Section::Entry,
                ret: 1,
            },
            // reset name before the search (private).
            (Section::Entry, 1) => {
                locals[L_NAME] = 0;
                Step::Goto(2)
            }
            // statement 2: while name < k-1 and test_and_set(X[name]) ...
            (Section::Entry, 2) => {
                if locals[L_NAME] < k - 1 {
                    if mem.test_and_set(at(self.bits, locals[L_NAME] as usize)) {
                        locals[L_NAME] += 1;
                        Step::Goto(2)
                    } else {
                        locals[L_HOLDING] = 1;
                        Step::Return
                    }
                } else {
                    // name = k-1 needs no bit (at most one process can
                    // reach it at a time).
                    locals[L_HOLDING] = 1;
                    Step::Return
                }
            }
            // statement 3: X[name], name := false, 0 (one atomic pair)
            (Section::Exit, 0) => {
                if locals[L_NAME] < k - 1 {
                    mem.write(at(self.bits, locals[L_NAME] as usize), 0);
                }
                locals[L_NAME] = 0;
                locals[L_HOLDING] = 0;
                Step::Goto(1)
            }
            // statement 4: Release(N, k)
            (Section::Exit, 1) => Step::Call {
                child: self.kex,
                section: Section::Exit,
                ret: 2,
            },
            (Section::Exit, 2) => Step::Return,
            _ => unreachable!("assignment: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let bits = self.k.max(1);
        let entry = vec![
            StmtDesc::new(0, "1: Acquire(N, k)").call(self.kex, Section::Entry, 1),
            StmtDesc::new(1, "name := 0").goto(2),
            // At most k-1 failed test-and-sets before name k-1 is free:
            // the whole search executes statement 2 at most k times.
            StmtDesc::new(2, "2: while name < k-1 and T&S(X[name])")
                .access(AccessDesc::rmw_any(self.bits, bits))
                .returns()
                .back_edge(BackEdge::bounded(2, self.k)),
        ];
        let exit = vec![
            StmtDesc::new(0, "3: X[name], name := false, 0")
                .access(AccessDesc::write_any(self.bits, bits))
                .goto(1),
            StmtDesc::new(1, "4: Release(N, k)").call(self.kex, Section::Exit, 2),
            StmtDesc::new(2, "released").returns(),
        ];
        Some(NodeDesc {
            exclusion: Some(self.k),
            spin_space: SpaceClass::NoSpin,
            entry,
            exit,
        })
    }
}

/// Wrap an existing `(N, k)`-exclusion node into `(N, k)`-assignment.
pub fn assignment(b: &mut ProtocolBuilder, k: usize, kex: NodeId) -> NodeId {
    let node = AssignmentNode::new(b, k, kex);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::fig2::fig2_chain;
    use crate::sim::fig6::fig6_chain;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn cc_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let kex = fig2_chain(&mut b, n, k);
        let root = assignment(&mut b, k, kex);
        b.finish(root, k)
    }

    #[test]
    fn names_are_unique_and_in_range_under_random_schedules() {
        // The Sim's built-in checker verifies name uniqueness and range in
        // every state because the root implements `acquired_name`.
        for seed in 0..15 {
            let mut sim = Sim::new(cc_protocol(5, 3), MemoryModel::CacheCoherent)
                .cycles(25)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 3,
                })
                .build();
            let report = sim.run(5_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
    }

    #[test]
    fn exhaustive_assignment_on_cc_chain() {
        let report = explore(cc_protocol(3, 2), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("cc assignment must be starvation-free");
    }

    #[test]
    fn exhaustive_assignment_on_dsm_chain() {
        // (3,2) over one cycle per process (the full fig6 assignment
        // space is too large to enumerate in a unit test; longer-horizon
        // coverage comes from the randomized suites).
        let mut b = ProtocolBuilder::new(3);
        let kex = fig6_chain(&mut b, 3, 2);
        let root = assignment(&mut b, 2, kex);
        let proto = b.finish(root, 2);
        let cfg = ExploreConfig {
            cycles: Some(1),
            ..ExploreConfig::default()
        };
        let report = explore(proto, &cfg);
        report.assert_ok();
        check_starvation_freedom(&report)
            .expect("dsm assignment must leave no one spinning forever");
    }

    #[test]
    fn assignment_survives_a_crash_holding_a_name() {
        // A process that crashes inside its CS holds its name forever;
        // with k = 2 the other processes must still cycle through the
        // remaining name. Exhaustive over every crash placement.
        let cfg = ExploreConfig {
            max_failures: 1,
            ..ExploreConfig::default()
        };
        let report = explore(cc_protocol(3, 2), &cfg);
        report.assert_ok();
        check_starvation_freedom(&report).expect("assignment must tolerate k-1 = 1 crash failure");
    }

    #[test]
    fn name_k_minus_1_is_reachable_without_a_bit() {
        // Drive k processes into the CS simultaneously; the last one must
        // end up with name k-1 even though no bit exists for it.
        let k = 3;
        let proto = cc_protocol(4, k);
        let mut w = World::new(
            proto,
            MemoryModel::CacheCoherent,
            Timing {
                ncs_steps: 0,
                cs_steps: 1_000,
            },
            None,
        );
        let mut names = Vec::new();
        for p in 0..k {
            while !w.procs[p].phase.in_critical() {
                w.step(p);
            }
            names.push(w.held_name(p).expect("critical process has a name"));
        }
        names.sort();
        assert_eq!(names, vec![0, 1, 2]);
    }

    #[test]
    fn renaming_cost_is_at_most_k_extra_references() {
        // Theorems 9/10: the renaming adds at most ~k remote references
        // on top of the k-exclusion cost. Compare assignment vs bare kex.
        let (n, k) = (5, 3);
        let bare: Arc<Protocol> = {
            let mut b = ProtocolBuilder::new(n);
            let kex = fig2_chain(&mut b, n, k);
            b.finish(kex, k)
        };
        let mut worst_bare = 0;
        let mut worst_assign = 0;
        for seed in 0..10 {
            let mut sim = Sim::new(bare.clone(), MemoryModel::CacheCoherent)
                .cycles(20)
                .scheduler(RandomSched::new(seed))
                .build();
            let r = sim.run(5_000_000);
            r.assert_safe();
            worst_bare = worst_bare.max(r.stats.worst_pair());

            let mut sim = Sim::new(cc_protocol(n, k), MemoryModel::CacheCoherent)
                .cycles(20)
                .scheduler(RandomSched::new(seed))
                .build();
            let r = sim.run(5_000_000);
            r.assert_safe();
            worst_assign = worst_assign.max(r.stats.worst_pair());
        }
        // The sampled bare worst stays within its Theorem-1 bound...
        let bare_bound = 7 * (n as u64 - k as u64);
        assert!(
            worst_bare <= bare_bound,
            "bare kex exceeded Theorem 1: {worst_bare} > {bare_bound}"
        );
        // ...and renaming adds at most ~k on top of that bound. (Compare
        // against the bound, not the sampled bare worst: ten seeds need
        // not drive the bare instance to its true worst case.)
        assert!(
            worst_assign <= bare_bound + k as u64 + 1,
            "renaming overhead too large: {worst_assign} vs {bare_bound} + {k} + 1"
        );
    }
}

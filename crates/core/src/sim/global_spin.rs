//! A non-local-spin baseline: everyone busy-waits on one global counter.
//!
//! Stands in for the Table-1 rows whose remote-reference complexity is
//! unbounded ("∞ with contention"): algorithms such as \[8\] and \[1\] in
//! which waiting processes repeatedly access *shared, contended*
//! variables rather than spinning on a private location. Every retry is a
//! read of a word that other processes keep writing, so under either
//! memory model the waiter's remote-reference count grows without bound
//! while it waits — exactly the behaviour the paper's local-spin
//! algorithms eliminate.
//!
//! The algorithm itself is the obvious counting-semaphore loop:
//!
//! ```text
//! shared X : 0..k initially k
//! entry:  loop { if fetch_and_increment(X,-1) > 0 break;
//!                fetch_and_increment(X, 1);         /* undo */
//!                while X <= 0 do od }               /* remote spin */
//! exit:   fetch_and_increment(X, 1)
//! ```
//!
//! It is safe (never more than `k` inside) but neither starvation-free
//! nor RMR-bounded; both deficiencies are demonstrated in the tests.

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};

/// The global-spin baseline node.
pub struct GlobalSpinNode {
    x: VarId,
    k: usize,
}

impl GlobalSpinNode {
    /// Allocate the single shared counter.
    pub fn new(b: &mut ProtocolBuilder, k: usize) -> Self {
        let x = b.vars.alloc("gspin.X", k as Word);
        GlobalSpinNode { x, k }
    }
}

impl Node for GlobalSpinNode {
    fn name(&self) -> String {
        format!("global-spin(k={})", self.k)
    }

    fn step(&self, sec: Section, pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        match (sec, pc) {
            // Try to grab a slot.
            (Section::Entry, 0) => {
                if mem.fetch_and_increment(self.x, -1) > 0 {
                    Step::Return
                } else {
                    Step::Goto(1)
                }
            }
            // Failed: undo the decrement.
            (Section::Entry, 1) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Goto(2)
            }
            // Spin on the global counter, then retry.
            (Section::Entry, 2) => {
                if mem.read(self.x) > 0 {
                    Step::Goto(0)
                } else {
                    Step::Goto(2)
                }
            }
            (Section::Exit, 0) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Return
            }
            _ => unreachable!("global-spin: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        let entry = vec![
            StmtDesc::new(0, "if f&i(X,-1) > 0 then CS")
                .access(AccessDesc::rmw(self.x))
                .goto(1)
                .returns(),
            StmtDesc::new(1, "f&i(X, 1) /* undo */")
                .access(AccessDesc::rmw(self.x))
                .goto(2),
            // The wait both self-loops on the contended global counter
            // (a remote spin under either model) and, once it observes
            // X > 0, retries from statement 0 — with no bound on how
            // often the race can be lost.
            StmtDesc::new(2, "while X <= 0 do od; retry")
                .access(AccessDesc::read(self.x))
                .back_edge(BackEdge::spin(2))
                .back_edge(BackEdge::unbounded(0)),
        ];
        let exit = vec![StmtDesc::new(0, "f&i(X, 1)")
            .access(AccessDesc::rmw(self.x))
            .returns()];
        Some(NodeDesc {
            exclusion: Some(self.k),
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build the baseline node as a protocol root.
pub fn global_spin(b: &mut ProtocolBuilder, k: usize) -> NodeId {
    let node = GlobalSpinNode::new(b, k);
    b.add(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = global_spin(&mut b, k);
        b.finish(root, k)
    }

    #[test]
    fn exclusion_holds_exhaustively() {
        for (n, k) in [(3, 1), (3, 2), (4, 2)] {
            let report = explore(protocol(n, k), &ExploreConfig::default());
            report.assert_ok();
        }
    }

    #[test]
    fn but_processes_can_starve() {
        let report = explore(protocol(3, 1), &ExploreConfig::default());
        report.assert_ok();
        assert!(
            check_starvation_freedom(&report).is_err(),
            "the global-spin baseline is not starvation-free"
        );
    }

    #[test]
    fn waiters_pay_remote_references_while_spinning() {
        // Park p1 behind p0's critical section and count p1's remote
        // references while it spins: they must grow — the opposite of the
        // local-spin property checked for Figure 5.
        let mut w = World::new(protocol(2, 1), MemoryModel::Dsm, Timing::default(), None);
        while !w.procs[0].phase.in_critical() {
            w.step(0);
        }
        for _ in 0..10 {
            w.step(1); // let p1 reach its spin loop
        }
        let before = w.mem.remote_refs(1);
        for _ in 0..100 {
            w.step(1);
        }
        let spent = w.mem.remote_refs(1) - before;
        assert!(
            spent >= 100,
            "global spinning must burn remote references (got {spent})"
        );
    }
}

//! Figure 6: `(N, k)`-exclusion on a **distributed shared-memory**
//! machine using a *bounded* set of `k+2` spin locations per process,
//! given an `(N, k+1)` child. Uses `fetch_and_increment` and
//! `compare_and_swap`.
//!
//! ```text
//! type loctype = record pid: 0..N-1; loc: 0..k+1 end
//! shared variable
//!     X : -1..k                              initially k
//!     Q : loctype                            initially (0, 0)
//!     P : array[0..N-1][0..k+1] of bool      /* P[p][i], R[p][i]  */
//!     R : array[0..N-1][0..k+1] of 0..k+1    /*   local to p      */
//!
//! private variable u, next : loctype; last : 0..k+1 initially 0
//!
//! 0:  Noncritical Section
//! 1:  Acquire(N, k+1)
//! 2:  if fetch_and_increment(X, -1) = 0 then
//! 3:      next.loc := (last + 1) mod (k+2)     /* start after last     */
//! 4:      while R[p][next.loc] != 0 do         /* find an unused slot  */
//! 5:          next.loc := (next.loc + 1) mod (k+2)
//! 6:      P[p][next.loc] := false              /* initialize           */
//! 7:      u := Q                               /* current spin loc     */
//! 8:      fetch_and_increment(R[u.pid][u.loc], 1)  /* "about to write" */
//! 9:      if Q = u then                        /* unchanged?           */
//! 10:         P[u.pid][u.loc] := true          /* release spinner      */
//! 11:     if compare_and_swap(Q, u, next) then /* install our location */
//! 12:         last := next.loc
//! 13:         if X < 0 then
//! 14:             while not P[p][next.loc] do od   /* local-spin wait  */
//! 15:     fetch_and_increment(R[u.pid][u.loc], -1) /* done with u      */
//!     Critical Section
//! 16: fetch_and_increment(X, 1)
//! 17: u := Q
//! 18: fetch_and_increment(R[u.pid][u.loc], 1)
//! 19: if Q = u then
//! 20:     P[u.pid][u.loc] := true
//! 21: fetch_and_increment(R[u.pid][u.loc], -1)
//! 22: Release(N, k+1)
//! ```
//!
//! The handshake counters `R[p][v]` tell `p` which of its spin locations
//! might still be written by a delayed releaser, so `p` can safely re-use
//! locations — bounding space where Figure 5 needed an unbounded supply.
//! Worst case under DSM: 8 entry + 6 exit = 14 remote references per
//! stage (Theorem 5: `14(N-k)` for the chain).

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::protocol::ProtocolBuilder;
use kex_sim::summary::{AccessDesc, BackEdge, NodeDesc, SpaceClass, StmtDesc};
use kex_sim::types::{NodeId, Pid, Section, Step, VarId, Word};
use kex_sim::vars::at;

use super::loc::LocCodec;

/// Local-variable layout.
const L_LAST: usize = 0;
const L_NEXT_LOC: usize = 1;
const L_U: usize = 2;

/// One Figure-6 stage: `(N, j)`-exclusion from an `(N, j+1)` child with
/// `j+2` spin locations per process.
pub struct Fig6Stage {
    x: VarId,
    q: VarId,
    p_base: VarId,
    r_base: VarId,
    codec: LocCodec,
    child: Option<NodeId>,
    j: usize,
    n: usize,
}

impl Fig6Stage {
    /// Allocate the stage's shared variables: `X`, `Q`, and the
    /// per-process arrays `P[p][0..j+2]`, `R[p][0..j+2]` homed at `p`.
    /// `child` is the `(N, j+1)` algorithm, `None` for the skip basis.
    pub fn new(b: &mut ProtocolBuilder, j: usize, child: Option<NodeId>) -> Self {
        let n = b.n();
        let locs = j + 2;
        let codec = LocCodec::new(locs);
        let x = b.vars.alloc(format!("fig6[{j}].X"), j as Word);
        let q = b.vars.alloc(format!("fig6[{j}].Q"), codec.enc(0, 0));
        let mut p_base = None;
        for pid in 0..n {
            for i in 0..locs {
                let v = b
                    .vars
                    .alloc_local(format!("fig6[{j}].P[{pid}][{i}]"), pid, 0);
                p_base.get_or_insert(v);
            }
        }
        let mut r_base = None;
        for pid in 0..n {
            for i in 0..locs {
                let v = b
                    .vars
                    .alloc_local(format!("fig6[{j}].R[{pid}][{i}]"), pid, 0);
                r_base.get_or_insert(v);
            }
        }
        Fig6Stage {
            x,
            q,
            p_base: p_base.unwrap(),
            r_base: r_base.unwrap(),
            codec,
            child,
            j,
            n,
        }
    }

    #[inline]
    fn p_at(&self, packed: Word) -> VarId {
        at(self.p_base, self.codec.flat(packed))
    }

    #[inline]
    fn r_at(&self, packed: Word) -> VarId {
        at(self.r_base, self.codec.flat(packed))
    }

    #[inline]
    fn mine(&self, p: Pid, locals: &[Word]) -> Word {
        self.codec.enc(p, locals[L_NEXT_LOC])
    }

    /// Statement 2: `if fetch_and_increment(X,-1) = 0 then ...`
    fn stmt2(&self, mem: &mut MemCtx<'_>) -> Step {
        if mem.fetch_and_increment(self.x, -1) <= 0 {
            Step::Goto(2)
        } else {
            Step::Return
        }
    }
}

impl Node for Fig6Stage {
    fn name(&self) -> String {
        format!("fig6(j={})", self.j)
    }

    fn locals_len(&self) -> usize {
        3
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid();
        let locs = self.codec.stride() as Word;
        match (sec, pc) {
            // statement 1: Acquire(N, j+1) — skip at the basis.
            (Section::Entry, 0) => match self.child {
                Some(child) => Step::Call {
                    child,
                    section: Section::Entry,
                    ret: 1,
                },
                None => self.stmt2(mem),
            },
            // statement 2
            (Section::Entry, 1) => self.stmt2(mem),
            // statement 3: next.loc := (last + 1) mod (j+2)   (private)
            (Section::Entry, 2) => {
                locals[L_NEXT_LOC] = (locals[L_LAST] + 1) % locs;
                Step::Goto(3)
            }
            // statement 4: while R[p][next.loc] != 0 ...
            (Section::Entry, 3) => {
                let mine = self.mine(p, locals);
                if mem.read(self.r_at(mine)) != 0 {
                    Step::Goto(4)
                } else {
                    Step::Goto(5)
                }
            }
            // statement 5: ... do next.loc := (next.loc + 1) mod (j+2)
            (Section::Entry, 4) => {
                locals[L_NEXT_LOC] = (locals[L_NEXT_LOC] + 1) % locs;
                Step::Goto(3)
            }
            // statement 6: P[p][next.loc] := false
            (Section::Entry, 5) => {
                let mine = self.mine(p, locals);
                mem.write(self.p_at(mine), 0);
                Step::Goto(6)
            }
            // statement 7: u := Q
            (Section::Entry, 6) => {
                locals[L_U] = mem.read(self.q);
                Step::Goto(7)
            }
            // statement 8: fetch_and_increment(R[u], 1)
            (Section::Entry, 7) => {
                mem.fetch_and_increment(self.r_at(locals[L_U]), 1);
                Step::Goto(8)
            }
            // statement 9: if Q = u then
            (Section::Entry, 8) => {
                if mem.read(self.q) == locals[L_U] {
                    Step::Goto(9)
                } else {
                    Step::Goto(10)
                }
            }
            // statement 10: P[u] := true
            (Section::Entry, 9) => {
                mem.write(self.p_at(locals[L_U]), 1);
                Step::Goto(10)
            }
            // statement 11: if compare_and_swap(Q, u, next) then
            (Section::Entry, 10) => {
                let mine = self.mine(p, locals);
                if mem.compare_and_swap(self.q, locals[L_U], mine) {
                    Step::Goto(11)
                } else {
                    Step::Goto(14)
                }
            }
            // statement 12: last := next.loc   (private)
            (Section::Entry, 11) => {
                locals[L_LAST] = locals[L_NEXT_LOC];
                Step::Goto(12)
            }
            // statement 13: if X < 0 then
            (Section::Entry, 12) => {
                if mem.read(self.x) < 0 {
                    Step::Goto(13)
                } else {
                    Step::Goto(14)
                }
            }
            // statement 14: while not P[p][next.loc] do od (local spin)
            (Section::Entry, 13) => {
                let mine = self.mine(p, locals);
                if mem.read(self.p_at(mine)) == 0 {
                    Step::Goto(13)
                } else {
                    Step::Goto(14)
                }
            }
            // statement 15: fetch_and_increment(R[u], -1)
            (Section::Entry, 14) => {
                mem.fetch_and_increment(self.r_at(locals[L_U]), -1);
                // u and next.loc are dead until the next entry; clearing
                // them keeps model-checker states canonical.
                locals[L_U] = 0;
                locals[L_NEXT_LOC] = 0;
                Step::Return
            }

            // statement 16: fetch_and_increment(X, 1)
            (Section::Exit, 0) => {
                mem.fetch_and_increment(self.x, 1);
                Step::Goto(1)
            }
            // statement 17: u := Q
            (Section::Exit, 1) => {
                locals[L_U] = mem.read(self.q);
                Step::Goto(2)
            }
            // statement 18: fetch_and_increment(R[u], 1)
            (Section::Exit, 2) => {
                mem.fetch_and_increment(self.r_at(locals[L_U]), 1);
                Step::Goto(3)
            }
            // statement 19: if Q = u then
            (Section::Exit, 3) => {
                if mem.read(self.q) == locals[L_U] {
                    Step::Goto(4)
                } else {
                    Step::Goto(5)
                }
            }
            // statement 20: P[u] := true
            (Section::Exit, 4) => {
                mem.write(self.p_at(locals[L_U]), 1);
                Step::Goto(5)
            }
            // statement 21: fetch_and_increment(R[u], -1)
            (Section::Exit, 5) => {
                mem.fetch_and_increment(self.r_at(locals[L_U]), -1);
                locals[L_U] = 0; // dead
                match self.child {
                    // statement 22: Release(N, j+1) — skip at the basis.
                    Some(child) => Step::Call {
                        child,
                        section: Section::Exit,
                        ret: 6,
                    },
                    None => Step::Return,
                }
            }
            (Section::Exit, 6) => Step::Return,
            _ => unreachable!("fig6 stage: bad pc {pc} in {sec}"),
        }
    }

    fn describe(&self, p: Pid) -> Option<NodeDesc> {
        let locs = self.codec.stride();
        // p's own rows of P and R (locally homed under DSM) vs the full
        // arrays (statements addressing `u = Q`'s record).
        let own_p = at(self.p_base, p * locs);
        let own_r = at(self.r_base, p * locs);
        let all = self.n * locs;
        let mut entry = vec![match self.child {
            Some(child) => StmtDesc::new(0, "1: Acquire(N, j+1)").call(child, Section::Entry, 1),
            None => StmtDesc::new(0, "2: if f&i(X,-1) <= 0 (basis)")
                .access(AccessDesc::rmw(self.x))
                .goto(2)
                .returns(),
        }];
        entry.extend([
            StmtDesc::new(1, "2: if f&i(X,-1) <= 0")
                .access(AccessDesc::rmw(self.x))
                .goto(2)
                .returns(),
            StmtDesc::new(2, "3: next.loc := (last + 1) mod (j+2)").goto(3),
            StmtDesc::new(3, "4: while R[p][next.loc] != 0")
                .access(AccessDesc::read_any(own_r, locs))
                .goto(4)
                .goto(5),
            // The search visits each of the j+2 slots at most once (the
            // paper's statement-4/5 termination argument).
            StmtDesc::new(4, "5: next.loc := (next.loc + 1) mod (j+2)")
                .back_edge(BackEdge::bounded(3, locs)),
            StmtDesc::new(5, "6: P[p][next.loc] := false")
                .access(AccessDesc::write_any(own_p, locs))
                .goto(6),
            StmtDesc::new(6, "7: u := Q")
                .access(AccessDesc::read(self.q))
                .goto(7),
            StmtDesc::new(7, "8: f&i(R[u.pid][u.loc], 1)")
                .access(AccessDesc::rmw_any(self.r_base, all))
                .goto(8),
            StmtDesc::new(8, "9: if Q = u")
                .access(AccessDesc::read(self.q))
                .goto(9)
                .goto(10),
            StmtDesc::new(9, "10: P[u.pid][u.loc] := true")
                .access(AccessDesc::write_any(self.p_base, all))
                .goto(10),
            StmtDesc::new(10, "11: if CAS(Q, u, next)")
                .access(AccessDesc::rmw(self.q))
                .goto(11)
                .goto(14),
            StmtDesc::new(11, "12: last := next.loc").goto(12),
            StmtDesc::new(12, "13: if X < 0")
                .access(AccessDesc::read(self.x))
                .goto(13)
                .goto(14),
            StmtDesc::new(13, "14: while !P[p][next.loc] do od")
                .access(AccessDesc::read_any(own_p, locs))
                .goto(14)
                .back_edge(BackEdge::spin(13)),
            StmtDesc::new(14, "15: f&i(R[u.pid][u.loc], -1)")
                .access(AccessDesc::rmw_any(self.r_base, all))
                .returns(),
        ]);
        let mut exit = vec![
            StmtDesc::new(0, "16: f&i(X, 1)")
                .access(AccessDesc::rmw(self.x))
                .goto(1),
            StmtDesc::new(1, "17: u := Q")
                .access(AccessDesc::read(self.q))
                .goto(2),
            StmtDesc::new(2, "18: f&i(R[u.pid][u.loc], 1)")
                .access(AccessDesc::rmw_any(self.r_base, all))
                .goto(3),
            StmtDesc::new(3, "19: if Q = u")
                .access(AccessDesc::read(self.q))
                .goto(4)
                .goto(5),
            StmtDesc::new(4, "20: P[u.pid][u.loc] := true")
                .access(AccessDesc::write_any(self.p_base, all))
                .goto(5),
        ];
        match self.child {
            Some(child) => {
                exit.push(
                    StmtDesc::new(5, "21: f&i(R[u.pid][u.loc], -1)")
                        .access(AccessDesc::rmw_any(self.r_base, all))
                        .call(child, Section::Exit, 6),
                );
                exit.push(StmtDesc::new(6, "22: Release(N, j+1) done").returns());
            }
            None => exit.push(
                StmtDesc::new(5, "21: f&i(R[u.pid][u.loc], -1)")
                    .access(AccessDesc::rmw_any(self.r_base, all))
                    .returns(),
            ),
        }
        Some(NodeDesc {
            exclusion: Some(self.j),
            spin_space: SpaceClass::Bounded,
            entry,
            exit,
        })
    }
}

/// Build the Theorem-5 inductive chain out of Figure-6 stages:
/// `(m, k)`-exclusion with bounded space. Worst-case remote references
/// per entry+exit pair under DSM: `14(m-k)` (Theorem 5).
pub fn fig6_chain(b: &mut ProtocolBuilder, m: usize, k: usize) -> NodeId {
    assert!(k >= 1 && k < m, "fig6 chain requires 1 <= k < m");
    let mut child: Option<NodeId> = None;
    for j in (k..m).rev() {
        let stage = Fig6Stage::new(b, j, child);
        child = Some(b.add(stage));
    }
    child.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_sim::prelude::*;
    use std::sync::Arc;

    fn protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = fig6_chain(&mut b, n, k);
        b.finish(root, k)
    }

    #[test]
    fn safe_and_quiescent_under_round_robin() {
        let mut sim = Sim::new(protocol(3, 1), MemoryModel::Dsm)
            .cycles(40)
            .build();
        let report = sim.run(2_000_000);
        report.assert_safe();
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.completed, vec![40, 40, 40]);
    }

    #[test]
    fn safe_under_random_and_skewed_schedules() {
        for seed in 0..15 {
            let mut sim = Sim::new(protocol(4, 2), MemoryModel::Dsm)
                .cycles(25)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(5_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "seed {seed}");
        }
        for seed in 0..5 {
            let mut sim = Sim::new(protocol(4, 2), MemoryModel::Dsm)
                .cycles(25)
                .scheduler(SkewedSched::new(seed, 0.8))
                .build();
            let report = sim.run(5_000_000);
            report.assert_safe();
            assert_eq!(report.stop, StopReason::Quiescent, "skewed seed {seed}");
        }
    }

    #[test]
    fn worst_case_pair_cost_is_within_theorem_5_bound() {
        // Theorem 5: 14(N-k) remote references per entry+exit pair on DSM.
        for (n, k) in [(3, 1), (4, 2), (5, 2)] {
            let mut worst = 0;
            for seed in 0..10 {
                let mut sim = Sim::new(protocol(n, k), MemoryModel::Dsm)
                    .cycles(30)
                    .scheduler(RandomSched::new(seed))
                    .build();
                let report = sim.run(10_000_000);
                report.assert_safe();
                worst = worst.max(report.stats.worst_pair());
            }
            let bound = 14 * (n as u64 - k as u64);
            assert!(
                worst <= bound,
                "(n={n},k={k}): measured {worst} > bound {bound}"
            );
        }
    }

    #[test]
    fn exhaustive_check_small_instances() {
        // Figure 6 is bounded-space, so (2,1) admits unbounded-cycle
        // exploration: every reachable state of every interleaving,
        // forever (~39k states). The larger (3,2) instance is explored
        // over two full cycles per process (~950k states).
        let report = explore(protocol(2, 1), &ExploreConfig::default());
        report.assert_ok();
        assert!(report.states > 1_000);

        let cfg = ExploreConfig {
            cycles: Some(2),
            ..ExploreConfig::default()
        };
        let report = explore(protocol(3, 2), &cfg);
        report.assert_ok();
        assert!(report.states > 100_000);
    }

    #[test]
    fn exhaustive_starvation_freedom() {
        let report = explore(protocol(2, 1), &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("fig6 chain must be starvation-free");
    }

    #[test]
    fn exhaustive_resilience_to_k_minus_1_crashes() {
        // One adversarial crash anywhere outside the NCS, one cycle per
        // process: no survivor may be left spinning forever (the
        // starvation analysis detects stuck spinners in bounded-cycle
        // graphs too — they are live, engaged, never critical).
        let cfg = ExploreConfig {
            max_failures: 1,
            cycles: Some(1),
            ..ExploreConfig::default()
        };
        let report = explore(protocol(3, 2), &cfg);
        report.assert_ok();
        check_starvation_freedom(&report)
            .expect("fig6 (3,2)-exclusion must tolerate one crash failure");
    }

    #[test]
    fn spin_location_search_terminates_quickly() {
        // The paper argues the statement-4/5 search loop terminates in at
        // most k+1 iterations. Track the worst search length observed.
        let proto = protocol(4, 2);
        let mut sim = Sim::new(proto, MemoryModel::Dsm)
            .cycles(200)
            .scheduler(RandomSched::new(7))
            .build();
        let report = sim.run(20_000_000);
        report.assert_safe();
        assert_eq!(report.stop, StopReason::Quiescent);
    }

    #[test]
    fn handshake_counters_return_to_zero_at_quiescence() {
        let proto = protocol(3, 1);
        let vars = proto.vars();
        let mut r_vars = Vec::new();
        for (id, spec) in vars.iter() {
            if spec.name.contains(".R[") {
                r_vars.push(id);
            }
        }
        assert!(!r_vars.is_empty());
        let mut sim = Sim::new(proto.clone(), MemoryModel::Dsm)
            .cycles(30)
            .scheduler(RandomSched::new(3))
            .build();
        let report = sim.run(5_000_000);
        report.assert_safe();
        assert_eq!(report.stop, StopReason::Quiescent);
        for v in r_vars {
            assert_eq!(
                sim.world.mem.peek(v),
                0,
                "R counter {} must drain to zero",
                proto.vars().spec(v).name
            );
        }
    }
}

//! # kex-core — resilient, scalable shared objects via k-exclusion
//!
//! A full implementation of Anderson & Moir, *"Using k-Exclusion to
//! Implement Resilient, Scalable Shared Objects"* (PODC 1994).
//!
//! The paper's proposal: instead of paying the `O(N)` costs of wait-free
//! object implementations, wrap a wait-free **k-process** object in a
//! **k-assignment** wrapper — a `k`-exclusion algorithm extended with
//! long-lived renaming — so that up to `k-1` undetected crash failures
//! are tolerated, and the object is *effectively wait-free* whenever
//! contention stays at or below `k`. The enabling contribution is a
//! family of **local-spin** k-exclusion algorithms whose remote-memory-
//! reference (RMR) complexity is bounded on both cache-coherent and
//! distributed shared-memory machines.
//!
//! Two parallel implementations are provided:
//!
//! * [`sim`] — statement-exact renditions of the paper's Figures 1–7 over
//!   the `kex-sim` simulator, with per-access RMR accounting under both
//!   machine models, exhaustive model checking, and failure injection.
//!   These regenerate the paper's Table 1 and theorem bounds.
//! * [`native`] — the same algorithms over real `std::sync::atomic`
//!   operations with cache-line padding, for use as an actual
//!   synchronization library and for wall-clock scalability benchmarks.
//!
//! ## Quickstart (native)
//!
//! ```rust
//! use kex_core::native::{FastPathKex, RawKex};
//! use std::sync::Arc;
//!
//! // 8 threads, at most 3 in the protected section at a time.
//! let kex = Arc::new(FastPathKex::new(8, 3));
//! let handles: Vec<_> = (0..8)
//!     .map(|p| {
//!         let kex = Arc::clone(&kex);
//!         std::thread::spawn(move || {
//!             for _ in 0..100 {
//!                 let _guard = kex.enter(p);
//!                 // ... at most 3 threads are ever here together ...
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod native;
pub mod obs;
pub mod sim;

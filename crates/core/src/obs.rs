//! Section-span shim for the native algorithms.
//!
//! The native layer annotates its protocol sections — entry section,
//! exit section, critical section — by opening a [`span`] at the
//! boundary and holding the guard for the section's duration. What a
//! span *does* depends on the build:
//!
//! * `--features obs` (and not loom): re-exports `kex_obs`'s real spans.
//!   While a span is live, every facade atomic operation and spin
//!   iteration on the thread is attributed to the `(process, section)`
//!   pair, and top-level spans record latency, completion counts, and
//!   the critical-section occupancy gauge.
//! * default build, or any build under `RUSTFLAGS="--cfg loom"`: the
//!   types below — a fieldless guard with no `Drop` impl and an
//!   `#[inline(always)]` constructor. The annotation compiles to
//!   nothing: no state, no branches, no schedule points. Keeping the
//!   shim inert under loom is what guarantees observability can never
//!   perturb model-checked interleavings
//!   (`tests/loom_models.rs::obs_spans_do_not_perturb_schedules`).
//!
//! Algorithms use it as:
//!
//! ```rust
//! # let p = 0usize;
//! let _obs = kex_core::obs::span(kex_core::obs::Section::Entry, p);
//! // ... entry-section ops, attributed to (p, entry) when enabled ...
//! drop(_obs);
//! ```

#[cfg(all(feature = "obs", not(loom)))]
pub use kex_obs::{span, Section, SpanGuard};

#[cfg(not(all(feature = "obs", not(loom))))]
mod noop {
    /// Protocol section labels; mirrors `kex_obs::Section` so algorithm
    /// code is identical under every backend.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Section {
        /// The entry section (acquire path) of a protocol.
        Entry,
        /// The exit section (release path) of a protocol.
        Exit,
        /// Inside the critical section.
        Cs,
        /// Instrumented work outside any annotated section.
        Other,
        /// A whole service-layer store operation (see `kex-store`).
        Store,
    }

    /// Inert span guard: a zero-sized type with no `Drop` impl, so the
    /// whole annotation is erased at compile time.
    #[derive(Debug)]
    #[must_use = "a span guard attributes operations only while it is live"]
    pub struct SpanGuard(());

    /// Opens a no-op span.
    #[inline(always)]
    pub fn span(_section: Section, _pid: usize) -> SpanGuard {
        SpanGuard(())
    }
}

#[cfg(not(all(feature = "obs", not(loom))))]
pub use noop::{span, Section, SpanGuard};

//! The native k-exclusion interface: [`RawKex`] and its RAII guard.
//!
//! Native implementations run over the `kex_util::sync::atomic` facade
//! (std atomics normally, loom model-checked atomics under `cfg(loom)`)
//! with the audited orderings of the private `ordering` module:
//! acquire/release/relaxed where a site-local pairing argument proves
//! them sufficient, `SeqCst` where the paper's sequentially consistent
//! reasoning genuinely spans variables. `--features seqcst` collapses
//! every site back to `SeqCst` for A/B benchmarking (the simulator
//! versions in [`crate::sim`] are the reference semantics; see DESIGN.md
//! and `docs/MEMORY_ORDERING.md` for the site-by-site audit).
//!
//! Every algorithm is parameterized by a fixed process universe `0..N`:
//! callers hand each thread a distinct process id (see
//! [`crate::native::registry::ProcessRegistry`] for a convenient way to
//! do that). Passing the same id to two concurrently running threads is
//! a logic error and voids every guarantee.

/// A k-exclusion algorithm over processes `0..n()`.
///
/// At most [`RawKex::k`] processes can be between [`RawKex::acquire`] and
/// [`RawKex::release`] at any time. If at most `k - 1` participating
/// processes fail (stop for ever) outside their noncritical sections,
/// every other process's `acquire` and `release` complete in a bounded
/// number of its own steps.
pub trait RawKex: Send + Sync {
    /// The process universe size `N`.
    fn n(&self) -> usize;

    /// The exclusion bound `k`.
    fn k(&self) -> usize;

    /// Enter: blocks (spinning) until one of the `k` slots is held.
    ///
    /// # Panics
    /// Implementations may panic if `p >= self.n()`.
    fn acquire(&self, p: usize);

    /// Leave: releases the slot taken by the matching [`RawKex::acquire`].
    ///
    /// Must only be called by the process that currently holds a slot.
    fn release(&self, p: usize);

    /// RAII-style entry: acquires and returns a guard that releases on
    /// drop.
    fn enter(&self, p: usize) -> KexGuard<'_>
    where
        Self: Sized,
    {
        self.acquire(p);
        KexGuard {
            kex: self,
            p,
            cs: Some(crate::obs::span(crate::obs::Section::Cs, p)),
        }
    }
}

/// Releases the underlying [`RawKex`] slot when dropped.
#[must_use = "dropping the guard immediately releases the slot"]
#[derive(Debug)]
pub struct KexGuard<'a> {
    kex: &'a dyn RawKexObject,
    p: usize,
    /// Critical-section observability span; closed just before release
    /// so the occupancy gauge never counts an exiting process.
    cs: Option<crate::obs::SpanGuard>,
}

impl KexGuard<'_> {
    /// The process id that holds this slot.
    pub fn pid(&self) -> usize {
        self.p
    }
}

impl Drop for KexGuard<'_> {
    fn drop(&mut self) {
        self.cs = None;
        self.kex.release(self.p);
    }
}

/// Object-safe subset of [`RawKex`] used by the guard.
trait RawKexObject: Send + Sync {
    fn release(&self, p: usize);
}

impl std::fmt::Debug for dyn RawKexObject + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RawKex")
    }
}

impl<K: RawKex> RawKexObject for K {
    fn release(&self, p: usize) {
        RawKex::release(self, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Facade types, not `std::sync::atomic`: the literal `Ordering::SeqCst`
    // arguments below are fine under the ordering-policy lint, which exempts
    // `#[cfg(test)]` code (test scaffolding is not an audited hot path).
    use kex_util::sync::atomic::{AtomicUsize, Ordering};

    struct CountingKex {
        inside: AtomicUsize,
        released: AtomicUsize,
    }

    impl RawKex for CountingKex {
        fn n(&self) -> usize {
            4
        }
        fn k(&self) -> usize {
            4
        }
        fn acquire(&self, _p: usize) {
            self.inside.fetch_add(1, Ordering::SeqCst);
        }
        fn release(&self, _p: usize) {
            self.released.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn guard_releases_on_drop() {
        let kex = CountingKex {
            inside: AtomicUsize::new(0),
            released: AtomicUsize::new(0),
        };
        {
            let g = kex.enter(2);
            assert_eq!(g.pid(), 2);
            assert_eq!(kex.inside.load(Ordering::SeqCst), 1);
            assert_eq!(kex.released.load(Ordering::SeqCst), 0);
        }
        assert_eq!(kex.released.load(Ordering::SeqCst), 1);
    }
}

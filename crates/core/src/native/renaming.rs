//! Native Figure-7 long-lived renaming via `test_and_set`.
//!
//! Given that at most `k` processes hold names at any time (the caller's
//! obligation — discharged by wrapping in k-exclusion, as
//! [`crate::native::KAssignment`] does), every acquisition terminates in
//! at most `k-1` test-and-sets with a unique name in `0..k`, and names
//! can be re-acquired forever (the *long-lived* property the paper
//! contributes over prior one-shot renaming).

use kex_util::sync::atomic::AtomicBool;

use kex_util::CachePadded;

use super::ordering as ord;

/// The Figure-7 name allocator: `k-1` test-and-set bits for a name space
/// of exactly `k` (name `k-1` needs no bit; at most one process can be
/// probing it at a time).
#[derive(Debug)]
pub struct TasRenaming {
    bits: Vec<CachePadded<AtomicBool>>,
    k: usize,
}

impl TasRenaming {
    /// A name allocator for `k` concurrent holders.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one name");
        TasRenaming {
            bits: (0..k.saturating_sub(1))
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            k,
        }
    }

    /// The name-space size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Obtain a name in `0..k`.
    ///
    /// Correct only while at most `k` processes (this caller included)
    /// concurrently hold or probe names; under that precondition the loop
    /// always finds a clear bit (or falls through to name `k-1`) — it is
    /// wait-free with at most `k-1` shared accesses.
    pub fn acquire_name(&self) -> usize {
        // Statement 2: test-and-set each bit in order until one is clear.
        // The §4 pigeonhole argument only reasons about each bit's own
        // RMW history (per-location atomicity), so the AcqRel chain on
        // each bit suffices; the acquire half pairs with the release
        // clear below to hand over any name-guarded data. (Name k-1 has
        // no bit; its hand-off edge comes from the enclosing
        // k-exclusion's RMW chains.)
        for (name, bit) in self.bits.iter().enumerate() {
            if !bit.swap(true, ord::ACQ_REL) {
                return name;
            }
        }
        // All of 0..k-1 were taken: name k-1 is free by the pigeonhole
        // argument in §4.
        self.k - 1
    }

    /// Release a previously acquired name.
    ///
    /// # Panics
    /// Panics if `name >= k`. Releasing a name that is not held corrupts
    /// the allocator (as would double-releasing a lock).
    pub fn release_name(&self, name: usize) {
        assert!(name < self.k, "name {name} out of range 0..{}", self.k);
        // Statement 3: clear the bit (name k-1 has none). Release pairs
        // with the acquire half of the swap above.
        if name < self.k - 1 {
            self.bits[name].store(false, ord::RELEASE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn sequential_names_are_dense_from_zero() {
        let r = TasRenaming::new(4);
        let a = r.acquire_name();
        let b = r.acquire_name();
        let c = r.acquire_name();
        let d = r.acquire_name();
        let names: HashSet<_> = [a, b, c, d].into_iter().collect();
        assert_eq!(names, HashSet::from([0, 1, 2, 3]));
        r.release_name(b);
        assert_eq!(r.acquire_name(), b, "released names are reusable");
    }

    #[test]
    fn k_equals_one_never_touches_memory() {
        let r = TasRenaming::new(1);
        assert_eq!(r.acquire_name(), 0);
        r.release_name(0);
        assert_eq!(r.acquire_name(), 0);
    }

    #[test]
    fn concurrent_holders_get_distinct_names() {
        let k = 4;
        let r = TasRenaming::new(k);
        let held = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..k {
                s.spawn(|| {
                    for _ in 0..500 {
                        let name = r.acquire_name();
                        {
                            let mut h = held.lock().unwrap();
                            assert!(h.insert(name), "duplicate live name {name}");
                        }
                        kex_util::sync::hint::spin_loop();
                        {
                            let mut h = held.lock().unwrap();
                            h.remove(&name);
                        }
                        r.release_name(name);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn release_rejects_foreign_names() {
        TasRenaming::new(2).release_name(2);
    }
}

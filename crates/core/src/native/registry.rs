//! Process-identity management for native algorithms.
//!
//! The paper's algorithms assume a fixed universe of `N` processes with
//! distinct ids `0..N`. [`ProcessRegistry`] hands out and recycles those
//! ids to threads, so applications do not have to thread pid plumbing by
//! hand. Ids are recycled when their [`ProcessId`] handle drops — safe
//! because a departing thread is, by definition, in its noncritical
//! section forever (a nonfaulty departure in the paper's model).
//!
//! **Known limitation (ROADMAP item 4, tracked):** a thread that
//! crash-fails (or leaks its handle) while registered never returns its
//! id — the registry *leaks the name*, exactly as a crashed process
//! permanently consumes a slot and a name inside a k-assignment
//! wrapper. The paper's model makes this the intended semantics for
//! in-protocol crashes, but for a long-running service a *recoverable*
//! variant (fenced reclamation of ids whose owning thread is provably
//! gone, per the recoverable-mutual-exclusion line in PAPERS.md) would
//! let the universe heal. Until that lands, size `n` with headroom for
//! the expected crash budget, as `kex-store` does per shard.

use kex_util::sync::atomic::AtomicBool;
use std::sync::Arc;

use super::ordering as ord;

/// Allocates distinct process ids in `0..n` to threads.
#[derive(Debug)]
pub struct ProcessRegistry {
    slots: Arc<Vec<AtomicBool>>,
}

impl ProcessRegistry {
    /// A registry for a universe of `n` processes.
    pub fn new(n: usize) -> Self {
        ProcessRegistry {
            slots: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
        }
    }

    /// The universe size.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Claim a free process id.
    ///
    /// Returns `None` when all `n` ids are taken.
    pub fn register(&self) -> Option<ProcessId> {
        for (pid, slot) in self.slots.iter().enumerate() {
            if !slot.swap(true, ord::SEQ_CST) {
                return Some(ProcessId {
                    pid,
                    slots: Arc::clone(&self.slots),
                });
            }
        }
        None
    }
}

impl Clone for ProcessRegistry {
    fn clone(&self) -> Self {
        ProcessRegistry {
            slots: Arc::clone(&self.slots),
        }
    }
}

/// An owned process identity; the id returns to the registry on drop.
#[derive(Debug)]
pub struct ProcessId {
    pid: usize,
    slots: Arc<Vec<AtomicBool>>,
}

impl ProcessId {
    /// The numeric id in `0..n`.
    pub fn get(&self) -> usize {
        self.pid
    }
}

impl Drop for ProcessId {
    fn drop(&mut self) {
        self.slots[self.pid].store(false, ord::SEQ_CST);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_and_bounded() {
        let reg = ProcessRegistry::new(3);
        let a = reg.register().unwrap();
        let b = reg.register().unwrap();
        let c = reg.register().unwrap();
        let ids: HashSet<_> = [a.get(), b.get(), c.get()].into_iter().collect();
        assert_eq!(ids.len(), 3);
        assert!(reg.register().is_none(), "universe exhausted");
        drop(b);
        let d = reg.register().expect("dropped id is recycled");
        assert!(d.get() < 3);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = ProcessRegistry::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    let id = reg.register().expect("enough ids for all threads");
                    assert!(id.get() < 8);
                });
            }
        });
    }
}

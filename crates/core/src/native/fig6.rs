//! Native Figure-6 stages and the Theorem-5 chain: the bounded-space
//! DSM algorithm over real atomics.
//!
//! On a multicore this behaves like any other local-spin lock family;
//! its distinguishing property — every process spins on a *statically
//! owned* location, never on a shared hot word — matters on NUMA and
//! non-coherent machines and is what Theorems 5–8 count. The per-process
//! spin locations `P[p][..]` and handshake counters `R[p][..]` are
//! cache-line padded per process so one process's spinning does not
//! false-share with another's.
//!
//! See [`crate::sim::fig6`] for the statement-exact rendition and the
//! exhaustive model-checking coverage.

use kex_util::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize};

use kex_util::{Backoff, CachePadded};

use super::ordering as ord;
use super::raw::RawKex;

/// Per-process slice of one stage: `k+2` spin flags and handshake
/// counters, plus the owner-private `last` cursor.
#[derive(Debug)]
struct ProcSlots {
    /// Spin locations `P[p][0..locs]`.
    p: Vec<AtomicBool>,
    /// Handshake counters `R[p][0..locs]`.
    r: Vec<AtomicIsize>,
    /// `last`: private to the owner (stored here to keep the stage
    /// `Sync`; only the owner reads/writes it).
    last: AtomicUsize,
}

impl ProcSlots {
    fn new(locs: usize, owner: usize) -> Self {
        let slots = ProcSlots {
            p: (0..locs).map(|_| AtomicBool::new(false)).collect(),
            r: (0..locs).map(|_| AtomicIsize::new(0)).collect(),
            last: AtomicUsize::new(0),
        };
        // DSM accounting: every location in this slice lives in the
        // owner's memory partition — that is the whole point of the
        // Figure-6 design (processes spin only on their own P[p][..]).
        for flag in &slots.p {
            kex_util::sync::assign_home(flag, owner);
        }
        for counter in &slots.r {
            kex_util::sync::assign_home(counter, owner);
        }
        kex_util::sync::assign_home(&slots.last, owner);
        slots
    }
}

/// One Figure-6 stage admitting `j` processes, with `j+2` spin locations
/// per process.
#[derive(Debug)]
pub(crate) struct DsmStage {
    x: CachePadded<AtomicIsize>,
    /// Packed `(pid, loc)` record: `pid * locs + loc`.
    q: CachePadded<AtomicU64>,
    slots: Vec<CachePadded<ProcSlots>>,
    locs: usize,
}

impl DsmStage {
    pub(crate) fn new(j: usize, n: usize) -> Self {
        let locs = j + 2;
        DsmStage {
            x: CachePadded::new(AtomicIsize::new(j as isize)),
            q: CachePadded::new(AtomicU64::new(0)), // (pid 0, loc 0)
            slots: (0..n)
                .map(|owner| CachePadded::new(ProcSlots::new(locs, owner)))
                .collect(),
            locs,
        }
    }

    #[inline]
    fn enc(&self, pid: usize, loc: usize) -> u64 {
        (pid * self.locs + loc) as u64
    }

    #[inline]
    fn dec(&self, packed: u64) -> (usize, usize) {
        let v = packed as usize;
        (v / self.locs, v % self.locs)
    }

    /// Statements 2–15 of Figure 6.
    pub(crate) fn acquire(&self, p: usize) {
        if self.x.fetch_sub(1, ord::SEQ_CST) <= 0 {
            let mine = &*self.slots[p];
            // Statements 3–5: find a spin location with a zero handshake
            // count, starting just past the last one used. `last` is
            // owner-private (atomic only for `Sync`), so Relaxed.
            let mut next = (mine.last.load(ord::RELAXED) + 1) % self.locs;
            while mine.r[next].load(ord::SEQ_CST) != 0 {
                next = (next + 1) % self.locs; // kex-lint: allow(spin): bounded local scan
            }
            // Statement 6: initialize it.
            mine.p[next].store(false, ord::SEQ_CST);
            // Statement 7: read the current spin record.
            let u = self.q.load(ord::SEQ_CST);
            let (upid, uloc) = self.dec(u);
            // Statement 8: announce we may write P[u].
            self.slots[upid].r[uloc].fetch_add(1, ord::SEQ_CST);
            // Statements 9–10: release the incumbent if Q is unchanged.
            if self.q.load(ord::SEQ_CST) == u {
                self.slots[upid].p[uloc].store(true, ord::SEQ_CST);
            }
            // Statement 11: install our location if the incumbent is
            // still the same (detects racing releasers, cf. Lemma 2).
            if self
                .q
                .compare_exchange(u, self.enc(p, next), ord::SEQ_CST, ord::SEQ_CST)
                .is_ok()
            {
                // Statement 12 (owner-private cursor, as above).
                mine.last.store(next, ord::RELAXED);
                // Statements 13–14: wait on our own location. The wake
                // store (statement 10/19) is SeqCst, hence also a
                // release; acquire suffices to receive the waker's —
                // and, via the X/R RMW chains, every prior releaser's —
                // critical-section writes.
                if self.x.load(ord::SEQ_CST) < 0 {
                    let backoff = Backoff::new();
                    while !mine.p[next].load(ord::ACQUIRE) {
                        backoff.snooze();
                    }
                }
            }
            // Statement 15: done with u's location.
            self.slots[upid].r[uloc].fetch_add(-1, ord::SEQ_CST);
        }
    }

    /// Statements 16–21 of Figure 6.
    pub(crate) fn release(&self, _p: usize) {
        self.x.fetch_add(1, ord::SEQ_CST);
        let u = self.q.load(ord::SEQ_CST);
        let (upid, uloc) = self.dec(u);
        self.slots[upid].r[uloc].fetch_add(1, ord::SEQ_CST);
        if self.q.load(ord::SEQ_CST) == u {
            self.slots[upid].p[uloc].store(true, ord::SEQ_CST);
        }
        self.slots[upid].r[uloc].fetch_add(-1, ord::SEQ_CST);
    }
}

/// Theorem 5's inductive chain of Figure-6 stages: `(N, k)`-exclusion
/// with all spinning on per-process locations and bounded space
/// (`k+2` locations per process per stage).
///
/// Worst-case RMR cost `14(N-k)` under the DSM model; use
/// [`crate::native::TreeKex`]/[`crate::native::FastPathKex`] over
/// `DsmChainKex` blocks for the logarithmic/fast-path variants.
#[derive(Debug)]
pub struct DsmChainKex {
    stages: Vec<DsmStage>,
    n: usize,
    k: usize,
}

impl DsmChainKex {
    /// Build the `(n, k)` chain.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        Self::with_universe(n, n, k)
    }

    /// Build an `(m, k)` chain used as a building block inside a larger
    /// composition (see [`crate::native::CcChainKex::with_universe`]):
    /// at most `m` of the `universe` processes contend at a time, but
    /// spin-location arrays are indexed by global process id.
    ///
    /// # Panics
    /// Panics unless `1 <= k < m <= universe`.
    pub fn with_universe(universe: usize, m: usize, k: usize) -> Self {
        assert!(
            k >= 1 && k < m && m <= universe,
            "DsmChainKex requires 1 <= k < m <= universe"
        );
        let stages = (k..m).rev().map(|j| DsmStage::new(j, universe)).collect();
        DsmChainKex {
            stages,
            n: universe,
            k,
        }
    }
}

impl RawKex for DsmChainKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range 0..{}", self.n);
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        for stage in &self.stages {
            stage.acquire(p);
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        for stage in self.stages.iter().rev() {
            stage.release(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::{max_concurrency, occupancy_stress};
    use std::time::Duration;

    #[test]
    fn never_more_than_k_inside() {
        for (n, k) in [(2, 1), (4, 2), (8, 3)] {
            let kex = DsmChainKex::new(n, k);
            let report = occupancy_stress(&kex, 300);
            assert!(
                report.max_seen <= k,
                "(n={n},k={k}): {} threads inside at once",
                report.max_seen
            );
            assert_eq!(report.total_entries, n as u64 * 300);
        }
    }

    #[test]
    fn k_holders_can_rendezvous() {
        let kex = DsmChainKex::new(6, 3);
        assert_eq!(max_concurrency(&kex, 3, Duration::from_secs(2)), 3);
    }

    #[test]
    fn heavy_churn_single_slot() {
        // k = 1 degenerates to a mutex: a strong consistency hammer for
        // the handshake protocol.
        let kex = DsmChainKex::new(4, 1);
        let report = occupancy_stress(&kex, 500);
        assert_eq!(report.max_seen, 1);
        assert_eq!(report.total_entries, 2000);
    }
}

//! Native Figure-2 stages and the Theorem-1 chain, over real atomics,
//! for cache-coherent hardware (i.e., any modern multicore).
//!
//! See [`crate::sim::fig2`] for the statement-level rendition and proofs
//! coverage; this module is the same algorithm expressed with
//! `AtomicIsize`/`AtomicUsize` and cache-line padding. Each stage's `X`
//! and `Q` live on their own cache lines so spinning on `Q` does not
//! false-share with the `X` traffic.

use kex_util::sync::atomic::{AtomicIsize, AtomicUsize};

use kex_util::{Backoff, CachePadded};

use super::ordering as ord;
use super::raw::RawKex;

/// One Figure-2 stage: admits `j` of the at-most-`j+1` processes its
/// caller lets through.
#[derive(Debug)]
pub(crate) struct CcStage {
    /// Slot counter, initially `j`.
    x: CachePadded<AtomicIsize>,
    /// Spin word holding a process id (`n` = "nobody", used initially).
    q: CachePadded<AtomicUsize>,
}

impl CcStage {
    pub(crate) fn new(j: usize, n: usize) -> Self {
        CcStage {
            x: CachePadded::new(AtomicIsize::new(j as isize)),
            // Initial Q value: the paper uses process 0; any value works
            // because releases just overwrite it. We use `n` ("nobody")
            // so no process can spuriously self-block on a fresh stage.
            q: CachePadded::new(AtomicUsize::new(n)),
        }
    }

    /// Statements 2–5 of Figure 2.
    pub(crate) fn acquire(&self, p: usize) {
        if self.x.fetch_sub(1, ord::SEQ_CST) <= 0 {
            // No slot: advertise ourselves as the waiter...
            self.q.store(p, ord::SEQ_CST);
            // ...re-check (a release may have raced us)...
            if self.x.load(ord::SEQ_CST) < 0 {
                // ...and spin until *anyone* writes Q (a releaser at
                // statement 7 or a newer waiter at statement 3). Both
                // wake stores are SeqCst (hence also releases); the
                // acquire pairing hands the waker's history — and,
                // through the X RMW chain, every earlier releaser's
                // critical section — to the woken process.
                let backoff = Backoff::new();
                while self.q.load(ord::ACQUIRE) == p {
                    backoff.snooze();
                }
            }
        }
    }

    /// Statements 6–7 of Figure 2.
    pub(crate) fn release(&self, p: usize) {
        self.x.fetch_add(1, ord::SEQ_CST);
        // Writing our own id both differs from any waiter's id and marks
        // the stage released.
        self.q.store(p, ord::SEQ_CST);
    }
}

/// Theorem 1's inductive chain: `(N, k)`-exclusion as Figure-2 stages
/// `j = N-1 .. k`, acquired top (widest) first.
///
/// Worst-case RMR cost is `7(N-k)` (linear in `N`); prefer
/// [`crate::native::TreeKex`] or [`crate::native::FastPathKex`] unless
/// `N - k` is small. This type is both the paper's baseline construction
/// and the `(2k, k)` building block of the better ones.
///
/// ```rust
/// use kex_core::native::{CcChainKex, RawKex};
///
/// // 4 threads, at most 2 in the protected section at once.
/// let kex = CcChainKex::new(4, 2);
/// let guard = kex.enter(0);
/// assert_eq!(guard.pid(), 0);
/// drop(guard); // releases the slot
/// ```
#[derive(Debug)]
pub struct CcChainKex {
    stages: Vec<CcStage>,
    n: usize,
    k: usize,
}

impl CcChainKex {
    /// Build the `(n, k)` chain.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        Self::with_universe(n, n, k)
    }

    /// Build an `(m, k)` chain used as a *building block* inside a larger
    /// composition: at most `m` of the `universe` processes contend in it
    /// at a time (e.g. `m = 2k` blocks in a tree), but process ids range
    /// over `0..universe`.
    ///
    /// # Panics
    /// Panics unless `1 <= k < m <= universe`.
    pub fn with_universe(universe: usize, m: usize, k: usize) -> Self {
        assert!(
            k >= 1 && k < m && m <= universe,
            "CcChainKex requires 1 <= k < m <= universe"
        );
        // stages[i] admits j = m-1-i; acquire walks i = 0 .. len-1,
        // finishing at the stage that admits exactly k.
        let stages = (k..m).rev().map(|j| CcStage::new(j, universe)).collect();
        CcChainKex {
            stages,
            n: universe,
            k,
        }
    }
}

impl RawKex for CcChainKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range 0..{}", self.n);
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        for stage in &self.stages {
            stage.acquire(p);
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        for stage in self.stages.iter().rev() {
            stage.release(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::{occupancy_stress, OccupancyReport};

    #[test]
    fn never_more_than_k_inside() {
        for (n, k) in [(2, 1), (4, 2), (8, 3)] {
            let kex = CcChainKex::new(n, k);
            let report: OccupancyReport = occupancy_stress(&kex, 400);
            assert!(
                report.max_seen <= k,
                "(n={n},k={k}): {} threads inside at once",
                report.max_seen
            );
            assert_eq!(report.total_entries, n as u64 * 400);
        }
    }

    #[test]
    fn slots_actually_admit_k_concurrently() {
        // The algorithm must not degrade to mutual exclusion: k holders
        // must be able to rendezvous inside.
        use std::time::Duration;
        let kex = CcChainKex::new(6, 3);
        let seen = crate::native::testutil::max_concurrency(&kex, 3, Duration::from_secs(2));
        assert_eq!(seen, 3, "k slots should be usable");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_pid() {
        let kex = CcChainKex::new(2, 1);
        kex.acquire(2);
    }
}

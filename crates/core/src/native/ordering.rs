//! The audited memory orderings of the native hot paths.
//!
//! Every atomic call site in `crates/core/src/native/` names its
//! ordering through these constants instead of `Ordering::*` literals.
//! The per-site justification lives in `docs/MEMORY_ORDERING.md`; this
//! module is the single switch that makes the audit *testable*:
//!
//! * **default build** — the constants are the audited orderings
//!   (acquire/release/relaxed where a site-local argument proves them
//!   sufficient, `SeqCst` where the paper's cross-variable reasoning
//!   genuinely needs the single total order).
//! * **`--features seqcst`** — every constant collapses to `SeqCst`,
//!   restoring the uniformly sequentially consistent build the paper's
//!   proofs assume verbatim. The `contend` benchmark builds both and
//!   records the wall-clock delta in `BENCH_contend.json`.
//!
//! Relaxation policy (enforced by review + the loom suite + TSan CI):
//!
//! * a site may use [`ACQUIRE`]/[`RELEASE`] only when its
//!   synchronizes-with partner is identified in the audit table and the
//!   pairing alone carries the property the proof needs (typically the
//!   critical-section data handoff);
//! * a site may use [`RELAXED`] only when it is owner-private (stored
//!   atomically purely for `Sync`) or ordered by an enclosing facade
//!   `Mutex`;
//! * any site whose argument spans *three or more* variables (Figure
//!   2/6's queue-then-recheck handshakes, Yang–Anderson's Dekker
//!   sequence) stays [`SEQ_CST`]: mixed-ordering executions of those
//!   shapes are `Z6.U`-style litmus tests that the C++ model permits to
//!   go wrong even though common hardware does not, and we refuse to
//!   rely on hardware folklore.
//!
//! Under `cfg(loom)` the checker's memory model is sequentially
//! consistent regardless of the ordering argument, so the loom models
//! verify the *algorithmic* content of every site in both builds; the
//! acquire/release pairings themselves are exercised by the TSan CI job
//! and argued site-locally in the audit table.

use kex_util::sync::atomic::Ordering;

/// Spin-loop and handoff-observing loads; pairs with a [`RELEASE`] (or
/// stronger) store named in the audit table.
#[cfg(not(feature = "seqcst"))]
pub(crate) const ACQUIRE: Ordering = Ordering::Acquire;
/// `--features seqcst`: collapsed to `SeqCst`.
#[cfg(feature = "seqcst")]
pub(crate) const ACQUIRE: Ordering = Ordering::SeqCst;

/// Wakeup/handoff stores publishing the writer's prior work (including
/// critical-section data) to the [`ACQUIRE`] reader named in the audit
/// table.
#[cfg(not(feature = "seqcst"))]
pub(crate) const RELEASE: Ordering = Ordering::Release;
/// `--features seqcst`: collapsed to `SeqCst`.
#[cfg(feature = "seqcst")]
pub(crate) const RELEASE: Ordering = Ordering::SeqCst;

/// Owner-private state (atomic only for `Sync`) and mutex-ordered
/// flags; carries no synchronization of its own.
#[cfg(not(feature = "seqcst"))]
pub(crate) const RELAXED: Ordering = Ordering::Relaxed;
/// `--features seqcst`: collapsed to `SeqCst`.
#[cfg(feature = "seqcst")]
pub(crate) const RELAXED: Ordering = Ordering::SeqCst;

/// Same-location RMW chains (credit counters, queue tails) where
/// coherence already totally orders the operations and the RMW only
/// additionally needs to give/take the data-handoff edge.
#[cfg(not(feature = "seqcst"))]
pub(crate) const ACQ_REL: Ordering = Ordering::AcqRel;
/// `--features seqcst`: collapsed to `SeqCst`.
#[cfg(feature = "seqcst")]
pub(crate) const ACQ_REL: Ordering = Ordering::SeqCst;

/// Sites where the proof's interleaving argument runs through the
/// sequentially consistent total order across *different* variables —
/// never weakened in any build.
pub(crate) const SEQ_CST: Ordering = Ordering::SeqCst;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqcst_feature_collapses_everything() {
        if cfg!(feature = "seqcst") {
            assert_eq!(ACQUIRE, Ordering::SeqCst);
            assert_eq!(RELEASE, Ordering::SeqCst);
            assert_eq!(RELAXED, Ordering::SeqCst);
            assert_eq!(ACQ_REL, Ordering::SeqCst);
        } else {
            assert_eq!(ACQUIRE, Ordering::Acquire);
            assert_eq!(RELEASE, Ordering::Release);
            assert_eq!(RELAXED, Ordering::Relaxed);
            assert_eq!(ACQ_REL, Ordering::AcqRel);
        }
        assert_eq!(SEQ_CST, Ordering::SeqCst);
    }
}

//! The MCS queue lock (Mellor-Crummey & Scott 1991, the paper's \[12\])
//! over real atomics — the §5 "fastest spin lock" reference point for
//! `k = 1` benchmarks.
//!
//! FIFO-fair mutual exclusion with `O(1)` remote references per
//! acquisition: each waiter spins on a flag in its own (padded) queue
//! node. Exposed through [`RawKex`] with `k() == 1` so the benchmark
//! harness can drop it into the same tables as the paper's `(N, 1)`
//! instances. **Not crash-resilient**: a holder or queued waiter that
//! dies wedges everyone behind it (demonstrated exhaustively on the
//! simulator version, [`crate::sim::mcs`]).

use kex_util::sync::atomic::{AtomicBool, AtomicUsize};

use kex_util::{Backoff, CachePadded};

use super::ordering as ord;
use super::raw::RawKex;

/// Sentinel for "no process".
const NIL: usize = usize::MAX;

/// One process's queue node.
#[derive(Debug)]
struct QNode {
    /// Successor pid, or NIL.
    next: AtomicUsize,
    /// Spun on by the owner; cleared by the predecessor at hand-off.
    locked: AtomicBool,
}

/// The MCS mutual-exclusion lock for processes `0..n`.
#[derive(Debug)]
pub struct McsLock {
    tail: CachePadded<AtomicUsize>,
    nodes: Vec<CachePadded<QNode>>,
}

impl McsLock {
    /// A lock for a universe of `n` processes.
    ///
    /// # Panics
    /// Panics if `n < 2` (use a no-op for a single process).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "McsLock needs at least two processes");
        McsLock {
            tail: CachePadded::new(AtomicUsize::new(NIL)),
            nodes: (0..n)
                .map(|owner| {
                    let node = CachePadded::new(QNode {
                        next: AtomicUsize::new(NIL),
                        locked: AtomicBool::new(false),
                    });
                    // DSM accounting: each queue node lives in its owner's
                    // memory partition (the point of MCS: spin locally).
                    kex_util::sync::assign_home(&node.next, owner);
                    kex_util::sync::assign_home(&node.locked, owner);
                    node
                })
                .collect(),
        }
    }
}

impl RawKex for McsLock {
    fn n(&self) -> usize {
        self.nodes.len()
    }

    fn k(&self) -> usize {
        1
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.nodes.len(), "pid {p} out of range");
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        let me = &self.nodes[p];
        // Our node is unlinked until the tail swap publishes it; the
        // swap's release half orders both initializing stores below it.
        me.next.store(NIL, ord::RELAXED);
        // Enqueue linearization point: the AcqRel RMW chain on `tail`
        // hands each enqueuer its predecessor's node initialization and,
        // transitively, the whole queue history.
        let pred = self.tail.swap(p, ord::ACQ_REL);
        if pred != NIL {
            me.locked.store(true, ord::RELAXED);
            // Publishes our initialized node to the predecessor; pairs
            // with the acquire `next` loads in `release`.
            self.nodes[pred].next.store(p, ord::RELEASE);
            let backoff = Backoff::new();
            // Pairs with the predecessor's release `locked` store: the
            // hand-off carries its critical-section writes.
            while me.locked.load(ord::ACQUIRE) {
                backoff.snooze();
            }
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        let me = &self.nodes[p];
        if me.next.load(ord::ACQUIRE) == NIL {
            // No visible successor: try to swing the tail back. Release
            // on success so the next enqueuer's AcqRel swap (which reads
            // NIL from this CAS) inherits our critical section.
            if self
                .tail
                .compare_exchange(p, NIL, ord::ACQ_REL, ord::ACQUIRE)
                .is_ok()
            {
                return;
            }
            // A successor is mid-announcement: wait for its link (pairs
            // with the successor's release `next` store).
            let backoff = Backoff::new();
            while me.next.load(ord::ACQUIRE) == NIL {
                backoff.snooze();
            }
        }
        let succ = me.next.load(ord::ACQUIRE);
        // Hand-off: pairs with the successor's acquire spin on `locked`.
        self.nodes[succ].locked.store(false, ord::RELEASE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::occupancy_stress;

    #[test]
    fn mutual_exclusion_under_stress() {
        let lock = McsLock::new(8);
        let report = occupancy_stress(&lock, 500);
        assert_eq!(report.max_seen, 1, "MCS must be a mutex");
        assert_eq!(report.total_entries, 8 * 500);
    }

    #[test]
    fn heavy_two_thread_ping_pong() {
        let lock = McsLock::new(2);
        let report = occupancy_stress(&lock, 20_000);
        assert_eq!(report.max_seen, 1);
        assert_eq!(report.total_entries, 40_000);
    }

    #[test]
    fn uncontended_fast_path_works() {
        let lock = McsLock::new(4);
        for _ in 0..1000 {
            lock.acquire(2);
            lock.release(2);
        }
    }
}

//! Native (real-atomics) implementations of the paper's algorithms, for
//! use as an actual synchronization library and for wall-clock
//! benchmarks.
//!
//! | type | paper artifact |
//! |---|---|
//! | [`CcChainKex`]  | Figure 2 chain — Theorem 1 |
//! | [`DsmChainKex`] | Figure 6 chain — Theorem 5 (all spinning on per-process, padded locations) |
//! | [`TreeKex`]     | Figure 3(a) tree — Theorems 2/6 |
//! | [`FastPathKex`] | Figure 4 fast path — Theorems 3/7 |
//! | [`GracefulKex`] | nested fast paths — Theorems 4/8 |
//! | [`QueueKex`]    | Figure 1 baseline (mutex-guarded queue) |
//! | [`SemaphoreKex`]| OS counting-semaphore baseline |
//! | [`McsLock`]     | MCS queue lock \[12\] — the §5 k=1 spin-lock yardstick |
//! | [`YangAndersonLock`] | Yang–Anderson read/write-only local-spin mutex \[14\] |
//! | [`TasRenaming`] | Figure 7 long-lived renaming |
//! | [`KAssignment`] | k-assignment — Theorems 9/10 |
//! | [`Resilient`]   | the §1 resilient-object methodology |
//!
//! All algorithms name their memory orderings through the audited
//! constants in the private `ordering` module: acquire/release/relaxed
//! where a site-local pairing argument proves them sufficient, `SeqCst`
//! where the paper's cross-variable reasoning genuinely needs the
//! single total order (see `docs/MEMORY_ORDERING.md` for the
//! site-by-site audit; `--features seqcst` collapses every site back to
//! `SeqCst`). Atomics are imported through the loom-swappable facade in
//! [`kex_util::sync`] — never `std::sync::atomic` directly. Their
//! interleaving-level correctness is established three ways: exhaustively
//! on the statement-exact simulator versions in [`crate::sim`],
//! exhaustively on *this* code under the loom model checker
//! (`tests/loom_models.rs`, built with `RUSTFLAGS="--cfg loom"`), and by
//! real-thread stress tests here.

mod assignment;
mod fast_path;
mod fig1;
mod fig2;
mod fig6;
mod mcs;
mod ordering;
mod raw;
mod registry;
mod renaming;
mod resilient;
mod semaphore;
#[cfg(test)]
pub(crate) mod testutil;
mod tree;
mod yang_anderson;

pub use assignment::{KAssignment, NameGuard};
pub use fast_path::{FastPathKex, GracefulKex};
pub use fig1::QueueKex;
pub use fig2::CcChainKex;
pub use fig6::DsmChainKex;
pub use mcs::McsLock;
pub use raw::{KexGuard, RawKex};
pub use registry::{ProcessId, ProcessRegistry};
pub use renaming::TasRenaming;
pub use resilient::{Resilient, ResilientGuard};
pub use semaphore::SemaphoreKex;
pub use tree::{NativeBlockFactory, TreeKex};
pub use yang_anderson::YangAndersonLock;

//! Native `(N, k)`-assignment: k-exclusion + Figure-7 renaming
//! (Theorems 9 and 10), with an RAII name guard.

use super::fast_path::FastPathKex;
use super::raw::RawKex;
use super::renaming::TasRenaming;

/// The k-assignment wrapper: admits at most `k` processes and hands each
/// a unique name in `0..k` for the duration of its stay.
///
/// This is the paper's resiliency mechanism: put a wait-free `k`-process
/// object behind a `KAssignment` and the composite tolerates `k-1`
/// undetected crash failures (see [`crate::native::Resilient`]).
///
/// ```rust
/// use kex_core::native::KAssignment;
///
/// let pool = KAssignment::new(16, 4); // 16 threads share 4 names
/// let guard = pool.enter(3);
/// assert!(guard.name() < 4); // unique among current holders
/// ```
pub struct KAssignment {
    kex: Box<dyn RawKex>,
    names: TasRenaming,
}

impl std::fmt::Debug for KAssignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KAssignment")
            .field("n", &self.kex.n())
            .field("k", &self.kex.k())
            .finish()
    }
}

impl KAssignment {
    /// k-assignment over the Theorem-3 cache-coherent fast-path
    /// k-exclusion (Theorem 9).
    pub fn new(n: usize, k: usize) -> Self {
        Self::over(Box::new(FastPathKex::new(n, k)))
    }

    /// k-assignment over the Theorem-7 DSM fast-path k-exclusion
    /// (Theorem 10).
    pub fn new_dsm(n: usize, k: usize) -> Self {
        Self::over(Box::new(FastPathKex::new_dsm(n, k)))
    }

    /// k-assignment over any `(N, k)`-exclusion algorithm.
    pub fn over(kex: Box<dyn RawKex>) -> Self {
        let k = kex.k();
        KAssignment {
            kex,
            names: TasRenaming::new(k),
        }
    }

    /// The process universe size.
    pub fn n(&self) -> usize {
        self.kex.n()
    }

    /// The admission bound / name-space size.
    pub fn k(&self) -> usize {
        self.kex.k()
    }

    /// Enter: acquires a k-exclusion slot, then a unique name. The guard
    /// releases both (name first, as in Figure 7) on drop.
    pub fn enter(&self, p: usize) -> NameGuard<'_> {
        // One Entry span covering both the k-exclusion acquisition and the
        // renaming loop: the inner kex's own span nests transparently, so
        // the Figure-7 test-and-sets are attributed to this entry section.
        let entry = crate::obs::span(crate::obs::Section::Entry, p);
        self.kex.acquire(p);
        let name = self.names.acquire_name();
        drop(entry);
        NameGuard {
            owner: self,
            p,
            name,
            cs: Some(crate::obs::span(crate::obs::Section::Cs, p)),
        }
    }
}

/// Holds one of the `k` slots and its unique name.
#[must_use = "dropping the guard immediately releases the name and slot"]
#[derive(Debug)]
pub struct NameGuard<'a> {
    owner: &'a KAssignment,
    p: usize,
    name: usize,
    /// Critical-section observability span; closed before the releases so
    /// the occupancy gauge never counts an exiting process.
    cs: Option<crate::obs::SpanGuard>,
}

impl NameGuard<'_> {
    /// The unique name in `0..k` held by this guard.
    pub fn name(&self) -> usize {
        self.name
    }

    /// The process id that entered.
    pub fn pid(&self) -> usize {
        self.p
    }
}

impl Drop for NameGuard<'_> {
    fn drop(&mut self) {
        // Close the Cs span first so the occupancy gauge never counts
        // an exiting process. (`= None`, not `drop(..take())`: the
        // disabled-backend guard is a Drop-less ZST and clippy objects
        // to dropping it explicitly.)
        self.cs = None;
        let _obs = crate::obs::span(crate::obs::Section::Exit, self.p);
        // Figure 7 order: release the name (statement 3), then the
        // k-exclusion (statement 4).
        self.owner.names.release_name(self.name);
        self.owner.kex.release(self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_util::sync::atomic::{AtomicUsize, Ordering::SeqCst};
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn names_are_unique_among_concurrent_holders() {
        let assign = KAssignment::new(8, 3);
        let held = Mutex::new(HashSet::new());
        let max_inside = AtomicUsize::new(0);
        let inside = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..8 {
                let (assign, held, inside, max_inside) = (&assign, &held, &inside, &max_inside);
                s.spawn(move || {
                    for _ in 0..200 {
                        let guard = assign.enter(p);
                        let now = inside.fetch_add(1, SeqCst) + 1;
                        max_inside.fetch_max(now, SeqCst);
                        {
                            let mut h = held.lock().unwrap();
                            assert!(guard.name() < 3);
                            assert!(
                                h.insert(guard.name()),
                                "duplicate live name {}",
                                guard.name()
                            );
                        }
                        for _ in 0..10 {
                            kex_util::sync::hint::spin_loop();
                        }
                        {
                            let mut h = held.lock().unwrap();
                            h.remove(&guard.name());
                        }
                        inside.fetch_sub(1, SeqCst);
                    }
                });
            }
        });
        assert!(max_inside.load(SeqCst) <= 3);
    }

    #[test]
    fn dsm_variant_behaves_identically() {
        let assign = KAssignment::new_dsm(6, 2);
        let held = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for p in 0..6 {
                let (assign, held) = (&assign, &held);
                s.spawn(move || {
                    for _ in 0..100 {
                        let guard = assign.enter(p);
                        {
                            let mut h = held.lock().unwrap();
                            assert!(h.insert(guard.name()));
                        }
                        {
                            let mut h = held.lock().unwrap();
                            h.remove(&guard.name());
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn guard_exposes_pid_and_name() {
        let assign = KAssignment::new(2, 1);
        let g = assign.enter(1);
        assert_eq!(g.pid(), 1);
        assert_eq!(g.name(), 0);
    }
}

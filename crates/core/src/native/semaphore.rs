//! An OS-blocking counting semaphore — the "what practitioners reach
//! for" baseline for the native benchmarks (E9).
//!
//! The paper motivates k-exclusion as the shared-memory primitive behind
//! resilient object wrappers; in practice, bounded-concurrency admission
//! is usually done with a semaphore. A semaphore is *not* a k-exclusion
//! solution in the paper's model: it blocks in the kernel rather than
//! spinning (so RMR accounting doesn't apply) and a holder's crash
//! deadlocks it just the same. It is, however, the right wall-clock
//! comparison point for the native algorithms.

use kex_util::sync::{Condvar, Mutex};

use super::raw::RawKex;

/// Counting semaphore with `k` permits, presented through the
/// [`RawKex`] interface (process ids are accepted and ignored).
#[derive(Debug)]
pub struct SemaphoreKex {
    permits: Mutex<usize>,
    cv: Condvar,
    n: usize,
    k: usize,
}

impl SemaphoreKex {
    /// A semaphore with `k` permits for `n` processes.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1 && k < n, "SemaphoreKex requires 1 <= k < n");
        SemaphoreKex {
            permits: Mutex::new(k),
            cv: Condvar::new(),
            n,
            k,
        }
    }
}

impl RawKex for SemaphoreKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.cv.wait(&mut permits);
        }
        *permits -= 1;
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::{max_concurrency, occupancy_stress};
    use std::time::Duration;

    #[test]
    fn never_more_than_k_inside() {
        let kex = SemaphoreKex::new(8, 3);
        let report = occupancy_stress(&kex, 300);
        assert!(report.max_seen <= 3);
        assert_eq!(report.total_entries, 8 * 300);
    }

    #[test]
    fn k_holders_rendezvous() {
        let kex = SemaphoreKex::new(8, 3);
        assert_eq!(max_concurrency(&kex, 3, Duration::from_secs(2)), 3);
    }
}

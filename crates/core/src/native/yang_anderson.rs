//! Native Yang–Anderson arbitration-tree mutual exclusion (the paper's
//! \[14\]): `O(log N)` RMR from **reads and writes only**.
//!
//! See [`crate::sim::yang_anderson`] for the statement-level rendition
//! and exhaustive model-checking coverage; this is the same algorithm on
//! real atomics (loads/stores only — the entire lock contains no RMW
//! instruction), for the k = 1 wall-clock comparison against
//! [`crate::native::McsLock`] and the paper's `(N, 1)` instances.

use kex_util::sync::atomic::{AtomicIsize, AtomicU8};

use kex_util::{Backoff, CachePadded};

use super::ordering as ord;
use super::raw::RawKex;

const NIL: isize = -1;

/// One two-process arbitration instance.
#[derive(Debug)]
struct Ya2 {
    c: [CachePadded<AtomicIsize>; 2],
    t: CachePadded<AtomicIsize>,
    /// Per-process spin flags (0 → 1 → 2), padded per process.
    p: Vec<CachePadded<AtomicU8>>,
}

impl Ya2 {
    fn new(n: usize) -> Self {
        Ya2 {
            c: [
                CachePadded::new(AtomicIsize::new(NIL)),
                CachePadded::new(AtomicIsize::new(NIL)),
            ],
            t: CachePadded::new(AtomicIsize::new(NIL)),
            p: (0..n)
                .map(|owner| {
                    let flag = CachePadded::new(AtomicU8::new(0));
                    // DSM accounting: each spin flag lives in its owner's
                    // memory partition (the algorithm's local-spin claim).
                    kex_util::sync::assign_home(&*flag, owner);
                    flag
                })
                .collect(),
        }
    }
}

/// Read/write-only mutual exclusion for processes `0..n`.
#[derive(Debug)]
pub struct YangAndersonLock {
    levels: Vec<Vec<Ya2>>,
    n: usize,
}

impl YangAndersonLock {
    /// A lock for a universe of `n` processes.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "YangAndersonLock needs at least two processes");
        let depth = usize::max(1, n.next_power_of_two().trailing_zeros() as usize);
        let levels = (0..depth)
            .map(|l| {
                let instances = usize::max(1, n.next_power_of_two() >> (l + 1));
                (0..instances).map(|_| Ya2::new(n)).collect()
            })
            .collect();
        YangAndersonLock { levels, n }
    }

    /// Rounds on each acquisition path.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    fn round(&self, level: usize, p: usize) {
        // Every non-spin site in this Dekker-style handshake stays
        // SeqCst: the arbitration argument runs through the single total
        // order across C/T/P (three variables, read/write only — no RMW
        // to anchor a pairwise argument). Only the spin *loads* relax to
        // acquire; their wake stores are SeqCst, hence also releases.
        let inst = &self.levels[level][p >> (level + 1)];
        let side = (p >> level) & 1;
        inst.c[side].store(p as isize, ord::SEQ_CST);
        inst.t.store(p as isize, ord::SEQ_CST);
        inst.p[p].store(0, ord::SEQ_CST);
        let rival = inst.c[1 - side].load(ord::SEQ_CST);
        if rival != NIL && inst.t.load(ord::SEQ_CST) == p as isize {
            if inst.p[rival as usize].load(ord::SEQ_CST) == 0 {
                inst.p[rival as usize].store(1, ord::SEQ_CST);
            }
            let backoff = Backoff::new();
            while inst.p[p].load(ord::ACQUIRE) == 0 {
                backoff.snooze();
            }
            if inst.t.load(ord::SEQ_CST) == p as isize {
                let backoff = Backoff::new();
                while inst.p[p].load(ord::ACQUIRE) <= 1 {
                    backoff.snooze();
                }
            }
        }
    }

    fn unround(&self, level: usize, p: usize) {
        let inst = &self.levels[level][p >> (level + 1)];
        let side = (p >> level) & 1;
        inst.c[side].store(NIL, ord::SEQ_CST);
        let rival = inst.t.load(ord::SEQ_CST);
        if rival != p as isize && rival != NIL {
            inst.p[rival as usize].store(2, ord::SEQ_CST);
        }
    }
}

impl RawKex for YangAndersonLock {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        1
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range");
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        for level in 0..self.levels.len() {
            self.round(level, p);
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        for level in (0..self.levels.len()).rev() {
            self.unround(level, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::occupancy_stress;

    #[test]
    fn mutual_exclusion_under_stress() {
        for n in [2usize, 4, 8] {
            let lock = YangAndersonLock::new(n);
            let report = occupancy_stress(&lock, 400);
            assert_eq!(report.max_seen, 1, "n={n}: YA must be a mutex");
            assert_eq!(report.total_entries, n as u64 * 400);
        }
    }

    #[test]
    fn non_power_of_two_universe() {
        let lock = YangAndersonLock::new(6);
        assert_eq!(lock.depth(), 3);
        let report = occupancy_stress(&lock, 300);
        assert_eq!(report.max_seen, 1);
        assert_eq!(report.total_entries, 1800);
    }

    #[test]
    fn uncontended_path_is_cheap_and_reentrant_over_time() {
        let lock = YangAndersonLock::new(4);
        for _ in 0..10_000 {
            lock.acquire(3);
            lock.release(3);
        }
    }
}

//! Native Figure-1 baseline: k-exclusion from a FIFO queue protected by a
//! real mutex.
//!
//! The paper's point about this algorithm is that it needs *large atomic
//! sections* (the angle-bracketed multi-word statements of Figure 1) and
//! is not resilient: a crashed waiter blocks the queue behind it. On real
//! hardware the "large atomic section" becomes a lock — which is exactly
//! why the construction is a baseline, not a solution: the lock
//! reintroduces a single serialization point and a single point of
//! failure. Benchmarks use it as the Table-1 \[9\]/\[10\] stand-in.

use kex_util::sync::atomic::AtomicBool;
use std::collections::VecDeque;

use kex_util::sync::Mutex;
use kex_util::{Backoff, CachePadded};

use super::ordering as ord;
use super::raw::RawKex;

/// Figure-1 queue-based `(N, k)`-exclusion with a mutex standing in for
/// the paper's multi-word atomic statements.
#[derive(Debug)]
pub struct QueueKex {
    inner: Mutex<QueueState>,
    /// `waiting[p]`: p is queued; cleared by the dequeuer. Spun on
    /// outside the lock.
    waiting: Vec<CachePadded<AtomicBool>>,
    n: usize,
    k: usize,
}

#[derive(Debug)]
struct QueueState {
    /// Available slots minus queued waiters (`X` in Figure 1).
    x: isize,
    /// The FIFO of waiting process ids (`Q` in Figure 1).
    queue: VecDeque<usize>,
}

impl QueueKex {
    /// Build the `(n, k)` queue algorithm.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1 && k < n, "QueueKex requires 1 <= k < n");
        QueueKex {
            inner: Mutex::new(QueueState {
                x: k as isize,
                queue: VecDeque::with_capacity(n),
            }),
            waiting: (0..n)
                .map(|owner| {
                    let flag = CachePadded::new(AtomicBool::new(false));
                    // DSM accounting: each spin flag lives in its waiter's
                    // memory partition.
                    kex_util::sync::assign_home(&*flag, owner);
                    flag
                })
                .collect(),
            n,
            k,
        }
    }
}

impl RawKex for QueueKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range 0..{}", self.n);
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        // Statement 1 (atomic): if f&i(X,-1) <= 0 then Enqueue(p, Q).
        let must_wait = {
            let mut st = self.inner.lock();
            let old = st.x;
            st.x -= 1;
            if old <= 0 {
                st.queue.push_back(p);
                // Ordered against the dequeuer's clear by the mutex
                // (both writes happen under `inner`), so Relaxed.
                self.waiting[p].store(true, ord::RELAXED);
                true
            } else {
                false
            }
        };
        // Statement 2: while Element(p, Q) do od.
        if must_wait {
            let backoff = Backoff::new();
            // Pairs with the dequeuer's release store below: the wake
            // carries the releaser's critical-section writes.
            while self.waiting[p].load(ord::ACQUIRE) {
                backoff.snooze();
            }
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        // Statement 3 (atomic): Dequeue(Q); f&i(X, 1).
        let mut st = self.inner.lock();
        if let Some(q) = st.queue.pop_front() {
            self.waiting[q].store(false, ord::RELEASE);
        }
        st.x += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::{max_concurrency, occupancy_stress};
    use std::time::Duration;

    #[test]
    fn never_more_than_k_inside() {
        let kex = QueueKex::new(6, 2);
        let report = occupancy_stress(&kex, 300);
        assert!(report.max_seen <= 2);
        assert_eq!(report.total_entries, 6 * 300);
    }

    #[test]
    fn k_holders_rendezvous() {
        let kex = QueueKex::new(5, 3);
        assert_eq!(max_concurrency(&kex, 3, Duration::from_secs(2)), 3);
    }
}

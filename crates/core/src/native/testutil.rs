//! Shared helpers for native stress tests: occupancy tracking with real
//! threads.

use kex_util::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::time::{Duration, Instant};

use super::raw::RawKex;

/// Result of [`occupancy_stress`].
pub(crate) struct OccupancyReport {
    /// Largest number of threads observed inside simultaneously.
    pub max_seen: usize,
    /// Total completed critical sections.
    pub total_entries: u64,
}

/// Run every process through `cycles` acquire/release pairs with small
/// pseudo-random critical-section work, tracking the maximum concurrent
/// occupancy. The caller asserts `max_seen <= k`.
pub(crate) fn occupancy_stress<K: RawKex>(kex: &K, cycles: u64) -> OccupancyReport {
    let inside = AtomicUsize::new(0);
    let max = AtomicUsize::new(0);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for p in 0..kex.n() {
            let (inside, max, total) = (&inside, &max, &total);
            s.spawn(move || {
                for i in 0..cycles {
                    kex.acquire(p);
                    let now = inside.fetch_add(1, SeqCst) + 1;
                    max.fetch_max(now, SeqCst);
                    total.fetch_add(1, SeqCst);
                    // Vary the hold time so occupancies overlap.
                    let spin = (p * 7 + i as usize * 13) % 64;
                    for _ in 0..spin {
                        kex_util::sync::hint::spin_loop();
                    }
                    inside.fetch_sub(1, SeqCst);
                    kex.release(p);
                }
            });
        }
    });
    OccupancyReport {
        max_seen: max.load(SeqCst),
        total_entries: total.load(SeqCst),
    }
}

/// Determine the achievable concurrency: every process enters once and
/// holds its slot until `want` threads are inside together (success) or
/// `timeout` elapses. Returns the maximum simultaneous occupancy seen.
///
/// Unlike [`occupancy_stress`] this is not timing-luck dependent: if the
/// algorithm truly admits `want` concurrent holders, they will
/// rendezvous.
pub(crate) fn max_concurrency<K: RawKex>(kex: &K, want: usize, timeout: Duration) -> usize {
    let inside = AtomicUsize::new(0);
    let max = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let deadline = Instant::now() + timeout;
    std::thread::scope(|s| {
        for p in 0..kex.n() {
            let (inside, max, done) = (&inside, &max, &done);
            s.spawn(move || {
                kex.acquire(p);
                let now = inside.fetch_add(1, SeqCst) + 1;
                max.fetch_max(now, SeqCst);
                if now >= want {
                    done.store(true, SeqCst);
                }
                while !done.load(SeqCst) && Instant::now() < deadline {
                    kex_util::sync::hint::spin_loop();
                }
                inside.fetch_sub(1, SeqCst);
                kex.release(p);
            });
        }
    });
    max.load(SeqCst)
}

/// Stress with a subset of processes "crashing" inside their critical
/// sections: the listed pids acquire once and never release (they park on
/// a flag until the survivors finish). Returns the survivors' completed
/// entries; the caller asserts progress.
pub(crate) fn crash_stress<K: RawKex>(kex: &K, crashed: &[usize], cycles: u64) -> u64 {
    let total = AtomicU64::new(0);
    let finished = AtomicUsize::new(0);
    let survivors = kex.n() - crashed.len();
    let crashed_in = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..kex.n() {
            let total = &total;
            let finished = &finished;
            let crashed_in = &crashed_in;
            let is_crashed = crashed.contains(&p);
            s.spawn(move || {
                if is_crashed {
                    kex.acquire(p);
                    crashed_in.fetch_add(1, SeqCst);
                    // Hold the slot until every survivor is done — the
                    // thread has effectively failed inside its CS.
                    while finished.load(SeqCst) < survivors {
                        kex_util::sync::thread::yield_now();
                    }
                    kex.release(p); // only to let the scope join cleanly
                } else {
                    // Give the crashing threads a head start so they are
                    // really inside when the survivors contend.
                    while crashed_in.load(SeqCst) < crashed.len() {
                        kex_util::sync::thread::yield_now();
                    }
                    for _ in 0..cycles {
                        kex.acquire(p);
                        total.fetch_add(1, SeqCst);
                        kex.release(p);
                    }
                    finished.fetch_add(1, SeqCst);
                }
            });
        }
    });
    total.load(SeqCst)
}

//! Native Figure-4 fast path (Theorems 3/7) and the gracefully
//! degrading nested variant (Theorems 4/8).

use kex_util::sync::atomic::{AtomicIsize, AtomicUsize};

use kex_util::CachePadded;

use super::fig2::CcChainKex;
use super::fig6::DsmChainKex;
use super::ordering as ord;
use super::raw::RawKex;
use super::tree::{NativeBlockFactory, TreeKex};

/// Range-safe `fetch_and_increment(X, -1)` per the paper's footnote 2:
/// decrements only if positive; returns whether a slot was obtained.
/// The slot accounting is same-location arithmetic on `X` alone, so the
/// AcqRel RMW chain suffices: each successful grab takes the hand-off
/// edge from every `fetch_add` release that precedes it in `X`'s
/// modification order (and the admitted process still passes through a
/// `(2k, k)` block, which provides its own synchronization).
#[inline]
fn try_grab(x: &AtomicIsize) -> bool {
    x.fetch_update(ord::ACQ_REL, ord::ACQUIRE, |v| {
        if v > 0 {
            Some(v - 1)
        } else {
            None
        }
    })
    .is_ok()
}

/// Figure 4 over a tree slow path — Theorems 3 and 7.
///
/// With contention at most `k`, an acquisition costs one fetch-and-add
/// pair plus an uncontended pass through a single `(2k, k)` block —
/// `O(k)` remote references independent of `N`. Once contention exceeds
/// `k`, overflow processes take the `(N, k)` tree (`O(k log(N/k))`).
/// This is the variant to reach for by default.
///
/// ```rust
/// use kex_core::native::{FastPathKex, RawKex};
///
/// let kex = FastPathKex::new(64, 4); // 64 threads, 4 slots
/// kex.acquire(9);
/// // ... protected section, at most 4 threads here ...
/// kex.release(9);
/// ```
pub struct FastPathKex {
    inner: FastPathInner,
    n: usize,
    k: usize,
}

#[allow(clippy::large_enum_variant)] // one long-lived allocation per lock
enum FastPathInner {
    /// `n <= 2k`: a single block is the whole algorithm.
    Single(Box<dyn RawKex>),
    Split {
        /// Fast-path slot counter, `0..=k`, initially `k`.
        x: CachePadded<AtomicIsize>,
        /// The `(N, k)` slow path.
        slow: TreeKex,
        /// The final `(2k, k)` block.
        block: Box<dyn RawKex>,
        /// Per-process "took the slow path" flags (each private to its
        /// owner; atomics only to keep the structure `Sync`).
        slow_flag: Vec<CachePadded<AtomicUsize>>,
    },
}

impl std::fmt::Debug for FastPathKex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastPathKex")
            .field("n", &self.n)
            .field("k", &self.k)
            .finish()
    }
}

impl FastPathKex {
    /// Cache-coherent variant (Figure-2 blocks) — Theorem 3.
    pub fn new(n: usize, k: usize) -> Self {
        Self::with_factory(n, k, &|u, m, k| {
            Box::new(CcChainKex::with_universe(u, m, k))
        })
    }

    /// DSM variant (Figure-6 blocks) — Theorem 7.
    pub fn new_dsm(n: usize, k: usize) -> Self {
        Self::with_factory(n, k, &|u, m, k| {
            Box::new(DsmChainKex::with_universe(u, m, k))
        })
    }

    /// Fast path over blocks from an arbitrary factory.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn with_factory(n: usize, k: usize, factory: &NativeBlockFactory) -> Self {
        assert!(k >= 1 && k < n, "FastPathKex requires 1 <= k < n");
        let inner = if n <= 2 * k {
            FastPathInner::Single(factory(n, n, k))
        } else {
            FastPathInner::Split {
                x: CachePadded::new(AtomicIsize::new(k as isize)),
                slow: TreeKex::with_factory(n, k, factory),
                block: factory(n, 2 * k, k),
                slow_flag: (0..n)
                    .map(|owner| {
                        let flag = CachePadded::new(AtomicUsize::new(0));
                        kex_util::sync::assign_home(&*flag, owner);
                        flag
                    })
                    .collect(),
            }
        };
        FastPathKex { inner, n, k }
    }
}

impl RawKex for FastPathKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range 0..{}", self.n);
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        match &self.inner {
            FastPathInner::Single(b) => b.acquire(p),
            FastPathInner::Split {
                x,
                slow,
                block,
                slow_flag,
            } => {
                // Statements 1–5 of Figure 4. `slow_flag[p]` is
                // owner-private (atomic only for `Sync`), so Relaxed.
                if try_grab(x) {
                    slow_flag[p].store(0, ord::RELAXED);
                } else {
                    slow_flag[p].store(1, ord::RELAXED);
                    slow.acquire(p);
                }
                block.acquire(p);
            }
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        match &self.inner {
            FastPathInner::Single(b) => b.release(p),
            FastPathInner::Split {
                x,
                slow,
                block,
                slow_flag,
            } => {
                // Statements 6–9 of Figure 4.
                block.release(p);
                if slow_flag[p].load(ord::RELAXED) != 0 {
                    slow.release(p);
                } else {
                    // Release half pairs with the acquire in `try_grab`,
                    // handing our critical section to the next grabber.
                    x.fetch_add(1, ord::ACQ_REL);
                }
            }
        }
    }
}

/// The gracefully degrading construction — Theorems 4 and 8: Figure 4
/// applied recursively, so the cost of an acquisition is proportional to
/// the contention `c` actually encountered (`O(⌈c/k⌉·k)`), not to the
/// worst case.
///
/// Level `i` offers `k` fast slots; a process that finds them taken
/// descends to level `i+1`, down to a plain `(2k, k)`-population chain at
/// the bottom. It then acquires one `(2k, k)` block per visited level on
/// the way back up.
pub struct GracefulKex {
    levels: Vec<GracefulLevel>,
    base: Box<dyn RawKex>,
    /// Per-process descent depth of the current acquisition.
    depth: Vec<CachePadded<AtomicUsize>>,
    n: usize,
    k: usize,
}

struct GracefulLevel {
    x: CachePadded<AtomicIsize>,
    block: Box<dyn RawKex>,
}

impl std::fmt::Debug for GracefulKex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GracefulKex")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("levels", &self.levels.len())
            .finish()
    }
}

impl GracefulKex {
    /// Cache-coherent variant — Theorem 4.
    pub fn new(n: usize, k: usize) -> Self {
        Self::with_factory(n, k, &|u, m, k| {
            Box::new(CcChainKex::with_universe(u, m, k))
        })
    }

    /// DSM variant — Theorem 8.
    pub fn new_dsm(n: usize, k: usize) -> Self {
        Self::with_factory(n, k, &|u, m, k| {
            Box::new(DsmChainKex::with_universe(u, m, k))
        })
    }

    /// Graceful nesting over blocks from an arbitrary factory.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn with_factory(n: usize, k: usize, factory: &NativeBlockFactory) -> Self {
        assert!(k >= 1 && k < n, "GracefulKex requires 1 <= k < n");
        let mut levels = Vec::new();
        let mut pop = n;
        while pop > 2 * k {
            levels.push(GracefulLevel {
                x: CachePadded::new(AtomicIsize::new(k as isize)),
                block: factory(n, 2 * k, k),
            });
            pop -= k;
        }
        GracefulKex {
            levels,
            base: factory(n, pop, k),
            depth: (0..n)
                .map(|owner| {
                    let slot = CachePadded::new(AtomicUsize::new(0));
                    kex_util::sync::assign_home(&*slot, owner);
                    slot
                })
                .collect(),
            n,
            k,
        }
    }

    /// Number of fast-path levels (the bottom chain is one more hop).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

impl RawKex for GracefulKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range 0..{}", self.n);
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        // Descend until a fast slot is grabbed (or the base is reached).
        let mut d = 0;
        while d < self.levels.len() && !try_grab(&self.levels[d].x) {
            d += 1;
        }
        // Owner-private descent cursor (atomic only for `Sync`).
        self.depth[p].store(d, ord::RELAXED);
        if d == self.levels.len() {
            self.base.acquire(p);
        }
        // Unfolding the recursion "entry(i) = [entry(i+1)] ; block_i":
        // acquire the blocks of every visited level, deepest first.
        if !self.levels.is_empty() {
            let top = d.min(self.levels.len() - 1);
            for i in (0..=top).rev() {
                self.levels[i].block.acquire(p);
            }
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        let d = self.depth[p].load(ord::RELAXED);
        // Mirror image: "exit(i) = block_i ; [exit(i+1) | X_i += 1]".
        if !self.levels.is_empty() {
            let top = d.min(self.levels.len() - 1);
            for level in &self.levels[..=top] {
                level.block.release(p);
            }
        }
        if d == self.levels.len() {
            self.base.release(p);
        } else {
            self.levels[d].x.fetch_add(1, ord::ACQ_REL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::{crash_stress, max_concurrency, occupancy_stress};
    use std::time::Duration;

    #[test]
    fn fast_path_never_exceeds_k() {
        for (n, k) in [(4, 2), (8, 2), (12, 3), (16, 4)] {
            let kex = FastPathKex::new(n, k);
            let report = occupancy_stress(&kex, 200);
            assert!(report.max_seen <= k, "(n={n},k={k}): {}", report.max_seen);
            assert_eq!(report.total_entries, n as u64 * 200);
        }
    }

    #[test]
    fn dsm_fast_path_never_exceeds_k() {
        let kex = FastPathKex::new_dsm(12, 3);
        let report = occupancy_stress(&kex, 150);
        assert!(report.max_seen <= 3);
        assert_eq!(report.total_entries, 12 * 150);
    }

    #[test]
    fn fast_path_k_holders_rendezvous() {
        let kex = FastPathKex::new(12, 3);
        assert_eq!(max_concurrency(&kex, 3, Duration::from_secs(2)), 3);
    }

    #[test]
    fn graceful_never_exceeds_k() {
        for (n, k) in [(4, 2), (8, 2), (13, 3)] {
            let kex = GracefulKex::new(n, k);
            let report = occupancy_stress(&kex, 200);
            assert!(report.max_seen <= k, "(n={n},k={k}): {}", report.max_seen);
            assert_eq!(report.total_entries, n as u64 * 200);
        }
    }

    #[test]
    fn graceful_dsm_never_exceeds_k() {
        let kex = GracefulKex::new_dsm(9, 3);
        let report = occupancy_stress(&kex, 150);
        assert!(report.max_seen <= 3);
        assert_eq!(report.total_entries, 9 * 150);
    }

    #[test]
    fn graceful_k_holders_rendezvous() {
        let kex = GracefulKex::new(10, 2);
        assert_eq!(max_concurrency(&kex, 2, Duration::from_secs(2)), 2);
    }

    #[test]
    fn graceful_level_count_matches_population_shrink() {
        assert_eq!(GracefulKex::new(4, 2).level_count(), 0);
        assert_eq!(GracefulKex::new(6, 2).level_count(), 1);
        assert_eq!(GracefulKex::new(8, 2).level_count(), 2);
    }

    #[test]
    fn fast_path_survives_k_minus_1_crashes_in_cs() {
        // Two of k = 3 holders crash inside; the other six threads must
        // keep completing acquisitions through the remaining slot.
        let kex = FastPathKex::new(8, 3);
        let completed = crash_stress(&kex, &[0, 1], 200);
        assert_eq!(completed, 6 * 200);
    }

    #[test]
    fn graceful_survives_k_minus_1_crashes_in_cs() {
        let kex = GracefulKex::new(8, 3);
        let completed = crash_stress(&kex, &[0, 1], 200);
        assert_eq!(completed, 6 * 200);
    }

    #[test]
    fn chain_and_tree_survive_crashes_too() {
        use crate::native::fig2::CcChainKex;
        use crate::native::fig6::DsmChainKex;
        use crate::native::tree::TreeKex;
        let kex = CcChainKex::new(6, 2);
        assert_eq!(crash_stress(&kex, &[3], 150), 5 * 150);
        let kex = DsmChainKex::new(6, 2);
        assert_eq!(crash_stress(&kex, &[3], 150), 5 * 150);
        let kex = TreeKex::cc(8, 2);
        assert_eq!(crash_stress(&kex, &[7], 150), 7 * 150);
    }
}

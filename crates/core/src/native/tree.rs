//! Native Figure-3(a) tree composition: `(N, k)`-exclusion from
//! `(2k, k)` building blocks, cost logarithmic in `N/k`
//! (Theorems 2 and 6).

use super::fig2::CcChainKex;
use super::fig6::DsmChainKex;
use super::raw::RawKex;

/// A factory producing `(m, k)`-exclusion blocks over a pid universe.
/// Arguments: `(universe, m, k)`.
pub type NativeBlockFactory = dyn Fn(usize, usize, usize) -> Box<dyn RawKex>;

/// The tree combinator: processes are partitioned into groups of `2k` at
/// the leaves; each block admits `k`, two sibling blocks' winners meet in
/// the parent, and the root's winners hold the critical section.
///
/// ```rust
/// use kex_core::native::{RawKex, TreeKex};
///
/// // 32 threads, k = 4: a 3-level tree instead of a 28-stage chain.
/// let kex = TreeKex::cc(32, 4);
/// assert_eq!(kex.depth(), 3);
/// let _guard = kex.enter(17);
/// ```
#[derive(Debug)]
pub struct TreeKex {
    /// `levels[0]` = leaves; the last level is the single root block.
    /// Empty iff `n <= 2k` (then `single` is the whole algorithm).
    levels: Vec<Vec<Box<dyn RawKex>>>,
    single: Option<Box<dyn RawKex>>,
    group: usize,
    n: usize,
    k: usize,
}

impl std::fmt::Debug for Box<dyn RawKex> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawKex(n={}, k={})", self.n(), self.k())
    }
}

impl TreeKex {
    /// Tree of Figure-2 (cache-coherent) chain blocks — Theorem 2.
    pub fn cc(n: usize, k: usize) -> Self {
        Self::with_factory(n, k, &|u, m, k| {
            Box::new(CcChainKex::with_universe(u, m, k))
        })
    }

    /// Tree of Figure-6 (DSM, bounded local-spin) chain blocks —
    /// Theorem 6.
    pub fn dsm(n: usize, k: usize) -> Self {
        Self::with_factory(n, k, &|u, m, k| {
            Box::new(DsmChainKex::with_universe(u, m, k))
        })
    }

    /// Tree over blocks produced by an arbitrary factory.
    ///
    /// # Panics
    /// Panics unless `1 <= k < n`.
    pub fn with_factory(n: usize, k: usize, factory: &NativeBlockFactory) -> Self {
        assert!(k >= 1 && k < n, "TreeKex requires 1 <= k < n");
        if n <= 2 * k {
            return TreeKex {
                levels: Vec::new(),
                single: Some(factory(n, n, k)),
                group: 2 * k,
                n,
                k,
            };
        }
        let mut levels = Vec::new();
        let mut count = n.div_ceil(2 * k);
        loop {
            let level: Vec<Box<dyn RawKex>> = (0..count).map(|_| factory(n, 2 * k, k)).collect();
            levels.push(level);
            if count == 1 {
                break;
            }
            count = count.div_ceil(2);
        }
        TreeKex {
            levels,
            single: None,
            group: 2 * k,
            n,
            k,
        }
    }

    /// The number of blocks on each acquisition path.
    pub fn depth(&self) -> usize {
        if self.single.is_some() {
            1
        } else {
            self.levels.len()
        }
    }

    #[inline]
    fn block_at(&self, level: usize, p: usize) -> &dyn RawKex {
        let g = (p / self.group) >> level;
        &*self.levels[level][g]
    }
}

impl RawKex for TreeKex {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn acquire(&self, p: usize) {
        assert!(p < self.n, "pid {p} out of range 0..{}", self.n);
        let _obs = crate::obs::span(crate::obs::Section::Entry, p);
        if let Some(single) = &self.single {
            single.acquire(p);
            return;
        }
        for level in 0..self.levels.len() {
            self.block_at(level, p).acquire(p);
        }
    }

    fn release(&self, p: usize) {
        let _obs = crate::obs::span(crate::obs::Section::Exit, p);
        if let Some(single) = &self.single {
            single.release(p);
            return;
        }
        for level in (0..self.levels.len()).rev() {
            self.block_at(level, p).release(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::testutil::{max_concurrency, occupancy_stress};
    use std::time::Duration;

    #[test]
    fn cc_tree_never_exceeds_k() {
        for (n, k) in [(8, 2), (12, 3), (16, 2)] {
            let kex = TreeKex::cc(n, k);
            let report = occupancy_stress(&kex, 150);
            assert!(report.max_seen <= k, "(n={n},k={k}): {}", report.max_seen);
            assert_eq!(report.total_entries, n as u64 * 150);
        }
    }

    #[test]
    fn dsm_tree_never_exceeds_k() {
        let kex = TreeKex::dsm(12, 3);
        let report = occupancy_stress(&kex, 150);
        assert!(report.max_seen <= 3);
        assert_eq!(report.total_entries, 12 * 150);
    }

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(TreeKex::cc(4, 2).depth(), 1);
        assert_eq!(TreeKex::cc(8, 2).depth(), 2);
        assert_eq!(TreeKex::cc(16, 2).depth(), 3);
        assert_eq!(TreeKex::cc(32, 2).depth(), 4);
    }

    #[test]
    fn k_holders_rendezvous_through_the_tree() {
        let kex = TreeKex::cc(12, 3);
        assert_eq!(max_concurrency(&kex, 3, Duration::from_secs(2)), 3);
    }
}

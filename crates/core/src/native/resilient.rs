//! The paper's headline methodology (§1): a `(k-1)`-resilient shared
//! object = a wait-free **k-process** object inside a k-assignment
//! wrapper.
//!
//! The wrapper admits at most `k` processes into the object at a time and
//! assigns each a unique *name* in `0..k` to use as its process identity
//! inside the wait-free implementation. Because the inner object is
//! wait-free for `k` processes and the wrapper tolerates `k-1` crashes
//! (each crash permanently consumes one slot and one name, leaving the
//! rest usable), the composite is `(k-1)`-resilient — and **effectively
//! wait-free whenever contention is at most `k`**, at a fraction of the
//! cost of an `N`-process wait-free construction.

use super::assignment::KAssignment;
use super::raw::RawKex;

/// A `(k-1)`-resilient wrapper around a `k`-process object.
///
/// `O` is any object whose operations take a process identity in `0..k`
/// (the *name*); the wait-free objects in the `kex-waitfree` crate are
/// designed for exactly this calling convention.
///
/// ```rust
/// use kex_core::native::Resilient;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // A trivial "k-process object": one counter cell per name.
/// struct Cells(Vec<AtomicU64>);
///
/// let obj = Cells((0..3).map(|_| AtomicU64::new(0)).collect());
/// let shared = Resilient::new(8, 3, obj); // 8 threads, tolerate 2 crashes
/// shared.with(5, |cells, name| {
///     cells.0[name].fetch_add(1, Ordering::Relaxed);
/// });
/// ```
pub struct Resilient<O> {
    assign: KAssignment,
    obj: O,
}

impl<O: std::fmt::Debug> std::fmt::Debug for Resilient<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resilient")
            .field("assign", &self.assign)
            .field("obj", &self.obj)
            .finish()
    }
}

impl<O: Sync> Resilient<O> {
    /// Wrap `obj` for `n` processes with resiliency/contention knob `k`,
    /// using the Theorem-3 cache-coherent fast-path k-exclusion.
    ///
    /// `obj` must be a correct *wait-free k-process* object for process
    /// identities `0..k`.
    pub fn new(n: usize, k: usize, obj: O) -> Self {
        Resilient {
            assign: KAssignment::new(n, k),
            obj,
        }
    }

    /// Wrap `obj` over a caller-chosen k-exclusion algorithm.
    pub fn over(kex: Box<dyn RawKex>, obj: O) -> Self {
        Resilient {
            assign: KAssignment::over(kex),
            obj,
        }
    }

    /// The process universe size `N`.
    pub fn n(&self) -> usize {
        self.assign.n()
    }

    /// The resiliency/contention knob `k`.
    pub fn k(&self) -> usize {
        self.assign.k()
    }

    /// Perform an operation: process `p` enters the wrapper, runs `f`
    /// with the object and its assigned name, and leaves.
    ///
    /// If at most `k-1` participating processes have crash-failed, every
    /// call completes; if contention never exceeds `k`, the wrapper adds
    /// only `O(k)` remote references and `f` runs wait-free.
    pub fn with<R>(&self, p: usize, f: impl FnOnce(&O, usize) -> R) -> R {
        let guard = self.assign.enter(p);
        f(&self.obj, guard.name())
    }

    /// Read-only access to the wrapped object **without** entering the
    /// wrapper. Only sound for operations that are safe under arbitrary
    /// concurrency (e.g. approximate reads of scalable counters).
    pub fn object_unguarded(&self) -> &O {
        &self.obj
    }

    /// Consume the wrapper and return the inner object.
    pub fn into_inner(self) -> O {
        self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_util::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    /// A deliberately non-thread-safe-looking "k-process object": a set of
    /// per-name scratch cells. If two concurrent operations ever receive
    /// the same name, the cell check fails.
    struct PerNameCells {
        cells: Vec<AtomicUsize>,
    }

    impl PerNameCells {
        fn new(k: usize) -> Self {
            PerNameCells {
                cells: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            }
        }

        fn exercise(&self, name: usize) {
            // Mark the cell claimed; detect any concurrent claimant.
            let prev = self.cells[name].fetch_add(1, SeqCst);
            assert_eq!(prev, 0, "name {name} used by two operations at once");
            for _ in 0..20 {
                kex_util::sync::hint::spin_loop();
            }
            self.cells[name].fetch_sub(1, SeqCst);
        }
    }

    #[test]
    fn names_partition_the_inner_object() {
        let r = Resilient::new(8, 3, PerNameCells::new(3));
        std::thread::scope(|s| {
            for p in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..300 {
                        r.with(p, |obj, name| obj.exercise(name));
                    }
                });
            }
        });
    }

    #[test]
    fn survivors_progress_past_k_minus_1_crashes() {
        // Two "threads" crash while holding wrapper slots (simulated by
        // acquiring and never releasing); with k = 3 one slot remains and
        // everyone else still completes.
        let r = Resilient::new(6, 3, PerNameCells::new(3));
        let crashed = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..2 {
                let (r, crashed, done) = (&r, &crashed, &done);
                s.spawn(move || {
                    r.with(p, |_, _| {
                        crashed.fetch_add(1, SeqCst);
                        // "Crash": hold the slot until everyone else is done.
                        while done.load(SeqCst) < 4 {
                            kex_util::sync::thread::yield_now();
                        }
                    });
                });
            }
            for p in 2..6 {
                let (r, crashed, done) = (&r, &crashed, &done);
                s.spawn(move || {
                    while crashed.load(SeqCst) < 2 {
                        kex_util::sync::thread::yield_now();
                    }
                    for _ in 0..100 {
                        r.with(p, |obj, name| obj.exercise(name));
                    }
                    done.fetch_add(1, SeqCst);
                });
            }
        });
        assert_eq!(done.load(SeqCst), 4);
    }

    #[test]
    fn into_inner_returns_the_object() {
        let r = Resilient::new(2, 1, 42u64);
        assert_eq!(r.into_inner(), 42);
    }
}

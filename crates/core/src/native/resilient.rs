//! The paper's headline methodology (§1): a `(k-1)`-resilient shared
//! object = a wait-free **k-process** object inside a k-assignment
//! wrapper.
//!
//! The wrapper admits at most `k` processes into the object at a time and
//! assigns each a unique *name* in `0..k` to use as its process identity
//! inside the wait-free implementation. Because the inner object is
//! wait-free for `k` processes and the wrapper tolerates `k-1` crashes
//! (each crash permanently consumes one slot and one name, leaving the
//! rest usable), the composite is `(k-1)`-resilient — and **effectively
//! wait-free whenever contention is at most `k`**, at a fraction of the
//! cost of an `N`-process wait-free construction.

use super::assignment::{KAssignment, NameGuard};
use super::ordering as ord;
use super::raw::RawKex;
use kex_util::sync::atomic::AtomicUsize;
use kex_util::CachePadded;

/// A `(k-1)`-resilient wrapper around a `k`-process object.
///
/// `O` is any object whose operations take a process identity in `0..k`
/// (the *name*); the wait-free objects in the `kex-waitfree` crate are
/// designed for exactly this calling convention.
///
/// ```rust
/// use kex_core::native::Resilient;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // A trivial "k-process object": one counter cell per name.
/// struct Cells(Vec<AtomicU64>);
///
/// let obj = Cells((0..3).map(|_| AtomicU64::new(0)).collect());
/// let shared = Resilient::new(8, 3, obj); // 8 threads, tolerate 2 crashes
/// shared.with(5, |cells, name| {
///     cells.0[name].fetch_add(1, Ordering::Relaxed);
/// });
/// ```
pub struct Resilient<O> {
    assign: KAssignment,
    /// Admission tickets outstanding: every process between taking a
    /// ticket (start of [`Resilient::enter`]) and dropping its guard.
    /// Over-counts actual slot holders by the processes still spinning
    /// in the k-exclusion entry section — which only happens when the
    /// house is full, so `entrants < k` soundly implies a free slot
    /// (the invariant [`Resilient::try_enter`] relies on). A crashed
    /// process never returns its ticket, exactly as it never returns
    /// its slot.
    entrants: CachePadded<AtomicUsize>,
    obj: O,
}

impl<O: std::fmt::Debug> std::fmt::Debug for Resilient<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resilient")
            .field("assign", &self.assign)
            .field("obj", &self.obj)
            .finish()
    }
}

/// One admission ticket; returns it on drop. Held inside
/// [`ResilientGuard`] *after* the name guard so the slot is released
/// before the gate opens (a `try_enter` winner then finds a free slot
/// immediately).
struct Ticket<'a>(&'a AtomicUsize);

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, ord::ACQ_REL);
    }
}

/// Holds one of the `k` slots, the unique name that came with it, and a
/// shared reference to the wrapped object. Obtained from
/// [`Resilient::enter`] / [`Resilient::try_enter`]; dropping it leaves
/// the wrapper (name first, then slot, then the admission ticket).
///
/// Leaking the guard (`std::mem::forget`) models a crash inside the
/// object: the slot, name, and ticket are consumed permanently, which is
/// precisely the paper's failure model — the `kex-store` crash-injection
/// paths do exactly this.
#[must_use = "dropping the guard immediately releases the name and slot"]
pub struct ResilientGuard<'a, O> {
    obj: &'a O,
    inner: NameGuard<'a>,
    _ticket: Ticket<'a>,
}

impl<'a, O> ResilientGuard<'a, O> {
    /// The wrapped object. The reference outlives the guard's borrow
    /// scope but operations on it are only covered by the k-assignment
    /// while the guard is live.
    pub fn object(&self) -> &'a O {
        self.obj
    }

    /// The unique name in `0..k` held by this guard — the process
    /// identity to use inside the wait-free object.
    pub fn name(&self) -> usize {
        self.inner.name()
    }

    /// The process id that entered.
    pub fn pid(&self) -> usize {
        self.inner.pid()
    }
}

impl<O> std::fmt::Debug for ResilientGuard<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientGuard")
            .field("pid", &self.pid())
            .field("name", &self.name())
            .finish()
    }
}

impl<O: Sync> Resilient<O> {
    /// Wrap `obj` for `n` processes with resiliency/contention knob `k`,
    /// using the Theorem-3 cache-coherent fast-path k-exclusion.
    ///
    /// `obj` must be a correct *wait-free k-process* object for process
    /// identities `0..k`.
    pub fn new(n: usize, k: usize, obj: O) -> Self {
        Resilient {
            assign: KAssignment::new(n, k),
            entrants: CachePadded::new(AtomicUsize::new(0)),
            obj,
        }
    }

    /// Wrap `obj` over a caller-chosen k-exclusion algorithm.
    pub fn over(kex: Box<dyn RawKex>, obj: O) -> Self {
        Resilient {
            assign: KAssignment::over(kex),
            entrants: CachePadded::new(AtomicUsize::new(0)),
            obj,
        }
    }

    /// The process universe size `N`.
    pub fn n(&self) -> usize {
        self.assign.n()
    }

    /// The resiliency/contention knob `k`.
    pub fn k(&self) -> usize {
        self.assign.k()
    }

    /// Processes currently admitted or waiting to be admitted — an
    /// approximate occupancy gauge (crashed holders count forever).
    /// Monitoring only; the value may be stale by the time it returns.
    pub fn occupancy(&self) -> usize {
        self.entrants.load(ord::RELAXED)
    }

    /// Enter the wrapper: process `p` waits for one of the `k` slots,
    /// receives a unique name, and gets guarded access to the object.
    ///
    /// Blocks (locally spinning) while all `k` slots are held. If at
    /// most `k-1` participating processes have crash-failed, every call
    /// completes.
    pub fn enter(&self, p: usize) -> ResilientGuard<'_, O> {
        self.entrants.fetch_add(1, ord::ACQ_REL);
        let ticket = Ticket(&self.entrants);
        ResilientGuard {
            obj: &self.obj,
            inner: self.assign.enter(p),
            _ticket: ticket,
        }
    }

    /// Non-blocking [`Resilient::enter`]: `None` when all `k` slots are
    /// (or may be) held, so callers can shed load instead of spinning.
    ///
    /// The admission test is conservative: it refuses whenever `k`
    /// tickets are outstanding, which includes processes still in the
    /// k-exclusion entry section and processes that crashed while
    /// holding a slot. On success the subsequent slot acquisition is
    /// bounded — fewer than `k` tickets were out, so a slot is free and
    /// total protocol contention is at most `k`.
    pub fn try_enter(&self, p: usize) -> Option<ResilientGuard<'_, O>> {
        let k = self.assign.k();
        // Footnote-2 shape (cf. `fast_path::try_grab`): one atomic
        // conditional increment decides admission; no waiting on failure.
        if self
            .entrants
            .fetch_update(ord::ACQ_REL, ord::ACQUIRE, |v| {
                if v < k {
                    Some(v + 1)
                } else {
                    None
                }
            })
            .is_err()
        {
            return None;
        }
        let ticket = Ticket(&self.entrants);
        Some(ResilientGuard {
            obj: &self.obj,
            inner: self.assign.enter(p),
            _ticket: ticket,
        })
    }

    /// Perform an operation: process `p` enters the wrapper, runs `f`
    /// with the object and its assigned name, and leaves.
    ///
    /// If at most `k-1` participating processes have crash-failed, every
    /// call completes; if contention never exceeds `k`, the wrapper adds
    /// only `O(k)` remote references and `f` runs wait-free.
    pub fn with<R>(&self, p: usize, f: impl FnOnce(&O, usize) -> R) -> R {
        let guard = self.enter(p);
        f(guard.object(), guard.name())
    }

    /// Non-blocking [`Resilient::with`]: runs `f` only if a slot is
    /// immediately available, returning `None` (without spinning) when
    /// all `k` slots are held — including slots consumed by crashed
    /// processes. See [`Resilient::try_enter`] for the exact admission
    /// rule.
    pub fn try_with<R>(&self, p: usize, f: impl FnOnce(&O, usize) -> R) -> Option<R> {
        let guard = self.try_enter(p)?;
        Some(f(guard.object(), guard.name()))
    }

    /// Read-only access to the wrapped object **without** entering the
    /// wrapper.
    ///
    /// # Caveat: no exclusion, no name
    ///
    /// The returned reference aliases the object concurrently with up to
    /// `k` guarded operations (plus any other unguarded readers): none
    /// of the wrapper's guarantees apply. In particular the caller has
    /// **no name** — it must not invoke any operation that takes a
    /// process identity, because every name in `0..k` may simultaneously
    /// be in use by an admitted process, and the k-process object's
    /// correctness argument assumes one operation per name at a time.
    /// Only sound for operations that are safe under arbitrary
    /// concurrency — e.g. approximate reads of scalable counters, or
    /// atomic-register snapshots like `kex-store`'s shard scans.
    pub fn object_unguarded(&self) -> &O {
        &self.obj
    }

    /// Consume the wrapper and return the inner object.
    pub fn into_inner(self) -> O {
        self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_util::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    /// A deliberately non-thread-safe-looking "k-process object": a set of
    /// per-name scratch cells. If two concurrent operations ever receive
    /// the same name, the cell check fails.
    struct PerNameCells {
        cells: Vec<AtomicUsize>,
    }

    impl PerNameCells {
        fn new(k: usize) -> Self {
            PerNameCells {
                cells: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            }
        }

        fn exercise(&self, name: usize) {
            // Mark the cell claimed; detect any concurrent claimant.
            let prev = self.cells[name].fetch_add(1, SeqCst);
            assert_eq!(prev, 0, "name {name} used by two operations at once");
            for _ in 0..20 {
                kex_util::sync::hint::spin_loop();
            }
            self.cells[name].fetch_sub(1, SeqCst);
        }
    }

    #[test]
    fn names_partition_the_inner_object() {
        let r = Resilient::new(8, 3, PerNameCells::new(3));
        std::thread::scope(|s| {
            for p in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..300 {
                        r.with(p, |obj, name| obj.exercise(name));
                    }
                });
            }
        });
    }

    #[test]
    fn survivors_progress_past_k_minus_1_crashes() {
        // Two "threads" crash while holding wrapper slots (simulated by
        // acquiring and never releasing); with k = 3 one slot remains and
        // everyone else still completes.
        let r = Resilient::new(6, 3, PerNameCells::new(3));
        let crashed = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..2 {
                let (r, crashed, done) = (&r, &crashed, &done);
                s.spawn(move || {
                    r.with(p, |_, _| {
                        crashed.fetch_add(1, SeqCst);
                        // "Crash": hold the slot until everyone else is done.
                        while done.load(SeqCst) < 4 {
                            kex_util::sync::thread::yield_now();
                        }
                    });
                });
            }
            for p in 2..6 {
                let (r, crashed, done) = (&r, &crashed, &done);
                s.spawn(move || {
                    while crashed.load(SeqCst) < 2 {
                        kex_util::sync::thread::yield_now();
                    }
                    for _ in 0..100 {
                        r.with(p, |obj, name| obj.exercise(name));
                    }
                    done.fetch_add(1, SeqCst);
                });
            }
        });
        assert_eq!(done.load(SeqCst), 4);
    }

    #[test]
    fn into_inner_returns_the_object() {
        let r = Resilient::new(2, 1, 42u64);
        assert_eq!(r.into_inner(), 42);
    }

    #[test]
    fn guard_exposes_object_name_and_pid() {
        let r = Resilient::new(4, 2, PerNameCells::new(2));
        let g = r.enter(3);
        assert_eq!(g.pid(), 3);
        assert!(g.name() < 2);
        g.object().exercise(g.name());
        assert_eq!(r.occupancy(), 1);
        drop(g);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn try_with_sheds_when_all_slots_are_held() {
        let r = Resilient::new(8, 2, PerNameCells::new(2));
        // Two live holders (distinct pids from one thread: nothing
        // blocks while slots remain).
        let g0 = r.enter(0);
        let g1 = r.enter(1);
        assert_eq!(r.occupancy(), 2);
        // House full: shed without spinning.
        assert_eq!(r.try_with(2, |_, _| ()), None);
        assert!(r.try_enter(3).is_none());
        drop(g0);
        // A slot is free again: admitted, and the freed name is reused.
        let got = r.try_with(2, |obj, name| {
            obj.exercise(name);
            name
        });
        assert!(got.is_some());
        drop(g1);
    }

    #[test]
    fn try_with_sheds_permanently_after_k_crashes() {
        // Both holders crash in the critical section (leaked guards):
        // their slots, names, and tickets are consumed forever, so the
        // non-blocking path sheds every subsequent operation instead of
        // hanging the caller.
        let r = Resilient::new(8, 2, PerNameCells::new(2));
        std::mem::forget(r.enter(0));
        std::mem::forget(r.enter(1));
        assert_eq!(r.occupancy(), 2);
        for p in 2..6 {
            assert_eq!(r.try_with(p, |_, _| ()), None);
        }
    }

    #[test]
    fn try_with_runs_under_partial_crashes() {
        // k = 3, two crashed holders: one slot remains, and try_with
        // keeps succeeding through it once no live holder is inside.
        let r = Resilient::new(8, 3, PerNameCells::new(3));
        std::mem::forget(r.enter(0));
        std::mem::forget(r.enter(1));
        for p in 2..6 {
            assert!(r.try_with(p, |_, name| name).is_some());
        }
    }
}

//! Exhaustive / preemption-bounded model checking of the **native**
//! algorithm implementations, driven by the vendored `kex-loom` checker.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p kex-core --test loom_models --release
//! ```
//!
//! Under `cfg(loom)` the `kex_util::sync` facade swaps every atomic,
//! mutex, condvar and spin hint for the model-checked versions, so the
//! exact production code paths are explored. Each test enumerates
//! thread interleavings at a small `(N, k)` and asserts, per the
//! ISSUE-2 matrix:
//!
//! * **(a) at-most-`k`-in-CS** — an occupancy counter incremented inside
//!   every critical section never exceeds `k`;
//! * **(b) unique names in `0..k`** — renaming/assignment paths record
//!   held names in a claim table and fail on any duplicate;
//! * **(c) no lost wakeups** — the checker reports a deadlock whenever a
//!   spinner or condvar waiter can never be woken again, so every
//!   passing model doubles as a lost-wakeup proof for its spin and
//!   handshake loops;
//! * **(d) crash-in-CS safety** — a designated process acquires and then
//!   stops taking steps while still inside its critical section (the
//!   paper's failure model); the survivors must still satisfy (a)–(c)
//!   and terminate, i.e. the block really is `(k-1)`-resilient.
//!
//! Tiny 2-thread models run exhaustively; 3-thread models use a CHESS
//! preemption bound (2–4), which the `LOOM_MAX_PREEMPTIONS` env var
//! overrides globally (the CI `loom` job pins it).
//!
//! The `broken_gate_*` test keeps the suite honest: it injects the
//! classic ordering bug — Figure 2's atomic `fetch_sub` admission gate
//! split into a non-atomic load/store pair — and asserts the checker
//! *finds* the resulting k-exclusion violation.

#![cfg(loom)]

use std::sync::Arc;

use kex_core::native::{
    CcChainKex, DsmChainKex, FastPathKex, GracefulKex, KAssignment, McsLock, ProcessRegistry,
    QueueKex, RawKex, Resilient, SemaphoreKex, TasRenaming, TreeKex, YangAndersonLock,
};
use kex_loom::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering::SeqCst};
use kex_loom::{thread, Builder};

/// Explore every schedule of `pids` running `cycles` acquire/release
/// pairs against a fresh instance from `make`, asserting at-most-`k`
/// occupancy. Pids listed in `crashed` acquire once, increment the
/// occupancy counter, and then stop taking steps *inside* the critical
/// section — the paper's crash model. Deadlocks (including stuck
/// spinners and lost wakeups among the survivors) fail the test via the
/// checker itself.
fn check_occupancy<K>(
    name: &'static str,
    builder: Builder,
    make: fn() -> K,
    pids: &'static [usize],
    crashed: &'static [usize],
    cycles: usize,
) where
    K: RawKex + Send + Sync + 'static,
{
    let stats = builder.check(move || {
        let kex = Arc::new(make());
        let k = kex.k();
        let inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = pids
            .iter()
            .map(|&p| {
                let kex = Arc::clone(&kex);
                let inside = Arc::clone(&inside);
                let dies = crashed.contains(&p);
                thread::spawn(move || {
                    if dies {
                        kex.acquire(p);
                        let now = inside.fetch_add(1, SeqCst) + 1;
                        assert!(now <= k, "k-exclusion violated: {now} > k={k}");
                        // Crash: never decrement, never release — the
                        // slot stays occupied forever.
                    } else {
                        for _ in 0..cycles {
                            kex.acquire(p);
                            let now = inside.fetch_add(1, SeqCst) + 1;
                            assert!(now <= k, "k-exclusion violated: {now} > k={k}");
                            inside.fetch_sub(1, SeqCst);
                            kex.release(p);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    eprintln!(
        "{name}: {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

// --- (a) at-most-k safety -------------------------------------------------

#[test]
fn fig2_cc_chain_n2_k1_exhaustive() {
    check_occupancy(
        "fig2 (2,1)",
        Builder::new(),
        || CcChainKex::new(2, 1),
        &[0, 1],
        &[],
        1,
    );
}

#[test]
fn fig2_cc_chain_n3_k2() {
    check_occupancy(
        "fig2 (3,2)",
        Builder::new().max_preemptions(3),
        || CcChainKex::new(3, 2),
        &[0, 1, 2],
        &[],
        1,
    );
}

#[test]
fn fig6_dsm_chain_n2_k1() {
    check_occupancy(
        "fig6 (2,1)",
        Builder::new().max_preemptions(3),
        || DsmChainKex::new(2, 1),
        &[0, 1],
        &[],
        1,
    );
}

#[test]
fn tree_two_levels_n3_k1() {
    // n=3, k=1 composes two levels of Figure-2 blocks — the smallest
    // genuinely hierarchical instance.
    check_occupancy(
        "tree cc (3,1)",
        Builder::new().max_preemptions(2),
        || TreeKex::cc(3, 1),
        &[0, 1, 2],
        &[],
        1,
    );
}

#[test]
fn fast_path_n3_k1() {
    // n > 2k, so the fast-path/slow-path split and the `slow_flag`
    // arbitration are actually exercised.
    check_occupancy(
        "fast path (3,1)",
        Builder::new().max_preemptions(2),
        || FastPathKex::new(3, 1),
        &[0, 1, 2],
        &[],
        1,
    );
}

#[test]
fn graceful_n3_k1() {
    check_occupancy(
        "graceful (3,1)",
        Builder::new().max_preemptions(2),
        || GracefulKex::new(3, 1),
        &[0, 1, 2],
        &[],
        1,
    );
}

#[test]
fn queue_kex_n3_k2() {
    // Figure 1 baseline: facade Mutex + per-process spin flags — checks
    // the mutex hand-off and the wakeup of dequeued waiters.
    check_occupancy(
        "fig1 queue (3,2)",
        Builder::new().max_preemptions(2),
        || QueueKex::new(3, 2),
        &[0, 1, 2],
        &[],
        1,
    );
}

#[test]
fn semaphore_n3_k2() {
    // Condvar-based baseline: a lost `notify` would park a waiter
    // forever and surface as a model deadlock.
    check_occupancy(
        "semaphore (3,2)",
        Builder::new().max_preemptions(2),
        || SemaphoreKex::new(3, 2),
        &[0, 1, 2],
        &[],
        1,
    );
}

#[test]
fn mcs_lock_two_threads() {
    check_occupancy(
        "mcs (2)",
        Builder::new().max_preemptions(4),
        || McsLock::new(2),
        &[0, 1],
        &[],
        1,
    );
}

#[test]
fn yang_anderson_two_threads() {
    // Read/write-only arbitration: the interesting interleavings flip
    // the tie-breaker `t` between the two contenders' reads.
    check_occupancy(
        "yang-anderson (2)",
        Builder::new().max_preemptions(4),
        || YangAndersonLock::new(2),
        &[0, 1],
        &[],
        1,
    );
}

// --- (d) crash-in-CS safety ----------------------------------------------

#[test]
fn fig2_crash_in_cs_n3_k2() {
    // Process 0 halts inside its critical section; with k = 2 the block
    // is 1-resilient, so processes 1 and 2 must still cycle through the
    // remaining slot without ever exceeding k or deadlocking.
    check_occupancy(
        "fig2 crash (3,2)",
        Builder::new().max_preemptions(2),
        || CcChainKex::new(3, 2),
        &[0, 1, 2],
        &[0],
        1,
    );
}

#[test]
fn fig6_crash_in_cs_n3_k2() {
    check_occupancy(
        "fig6 crash (3,2)",
        Builder::new().max_preemptions(2),
        || DsmChainKex::new(3, 2),
        &[0, 1, 2],
        &[0],
        1,
    );
}

#[test]
fn fast_path_crash_in_cs_n3_k2() {
    check_occupancy(
        "fast path crash (3,2)",
        Builder::new().max_preemptions(2),
        || FastPathKex::new(3, 2),
        &[0, 1, 2],
        &[0],
        1,
    );
}

// --- (b) unique names in 0..k --------------------------------------------

#[test]
fn tas_renaming_two_concurrent() {
    // Two concurrent processes over k = 2 names, two acquisitions each
    // (long-lived renaming: names are re-acquired after release). Names
    // must stay in 0..2 and never be held twice at once. Exhaustive
    // exploration takes ~1.3M executions; a 4-preemption bound keeps the
    // same bug-finding power at a fraction of the cost.
    let stats = Builder::new().max_preemptions(4).check(|| {
        let r = Arc::new(TasRenaming::new(2));
        let held: Arc<Vec<AtomicBool>> = Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                let held = Arc::clone(&held);
                thread::spawn(move || {
                    for _ in 0..2 {
                        let name = r.acquire_name();
                        assert!(name < 2, "name {name} out of 0..2");
                        assert!(!held[name].swap(true, SeqCst), "duplicate name {name}");
                        held[name].store(false, SeqCst);
                        r.release_name(name);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    eprintln!(
        "tas renaming (2 names): {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

#[test]
fn k_assignment_n3_k2_unique_names() {
    // Three processes funnel through a (3,2)-exclusion block and then
    // claim one of 2 names each — the ISSUE's "renaming with 3
    // processes over 2 names" configuration.
    let stats = Builder::new().max_preemptions(2).check(|| {
        let a = Arc::new(KAssignment::new(3, 2));
        let held: Arc<Vec<AtomicBool>> = Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
        let handles: Vec<_> = (0..3)
            .map(|p| {
                let a = Arc::clone(&a);
                let held = Arc::clone(&held);
                thread::spawn(move || {
                    let g = a.enter(p);
                    let name = g.name();
                    assert!(name < 2, "name {name} out of 0..2");
                    assert!(!held[name].swap(true, SeqCst), "duplicate name {name}");
                    held[name].store(false, SeqCst);
                    drop(g);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    eprintln!(
        "k-assignment (3,2): {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

#[test]
fn k_assignment_crash_n3_k2_keeps_names_unique() {
    // Process 0 crashes while *holding* slot and name: the name must
    // stay permanently claimed, and the two survivors must keep cycling
    // with distinct names from what remains.
    let stats = Builder::new().max_preemptions(2).check(|| {
        let a = Arc::new(KAssignment::new(3, 2));
        let held: Arc<Vec<AtomicBool>> = Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
        let handles: Vec<_> = (0..3)
            .map(|p| {
                let a = Arc::clone(&a);
                let held = Arc::clone(&held);
                thread::spawn(move || {
                    if p == 0 {
                        let g = a.enter(p);
                        let name = g.name();
                        assert!(!held[name].swap(true, SeqCst), "duplicate name {name}");
                        // Crash while holding: the guard never drops, so
                        // neither slot nor name is ever released.
                        std::mem::forget(g);
                    } else {
                        let g = a.enter(p);
                        let name = g.name();
                        assert!(name < 2, "name {name} out of 0..2");
                        assert!(!held[name].swap(true, SeqCst), "duplicate name {name}");
                        held[name].store(false, SeqCst);
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    eprintln!(
        "k-assignment crash (3,2): {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

#[test]
fn registry_assigns_distinct_pids() {
    let stats = Builder::new().check(|| {
        let reg = Arc::new(ProcessRegistry::new(2));
        let claimed: Arc<Vec<AtomicBool>> =
            Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let claimed = Arc::clone(&claimed);
                thread::spawn(move || {
                    let id = reg.register().expect("a slot must be free");
                    assert!(
                        !claimed[id.get()].swap(true, SeqCst),
                        "pid {} handed out twice",
                        id.get()
                    );
                    claimed[id.get()].store(false, SeqCst);
                    drop(id);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    eprintln!(
        "registry (2): {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

// --- resilient-object wrapper --------------------------------------------

#[test]
fn resilient_counter_n3_k2() {
    // The §1 methodology end-to-end: three processes bump a shared
    // counter through `Resilient::with`; every increment must land.
    let stats = Builder::new().max_preemptions(2).check(|| {
        let obj = Arc::new(Resilient::new(3, 2, AtomicUsize::new(0)));
        let handles: Vec<_> = (0..3)
            .map(|p| {
                let obj = Arc::clone(&obj);
                thread::spawn(move || {
                    obj.with(p, |counter, name| {
                        assert!(name < 2, "name {name} out of 0..2");
                        counter.fetch_add(1, SeqCst);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(obj.object_unguarded().load(SeqCst), 3, "lost increment");
    });
    eprintln!(
        "resilient counter (3,2): {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

// --- observability is inert under loom ------------------------------------

/// Under `cfg(loom)` the `kex_core::obs` shim must be a zero-sized
/// no-op, whatever cargo features are enabled: spans may never add
/// schedule points or the model-checking results would stop covering
/// the uninstrumented production build. We run the same (2,1) chain
/// model twice — bare, and drowning in redundant span annotations —
/// and require bit-identical exploration statistics.
#[test]
fn obs_spans_do_not_perturb_schedules() {
    fn explore(annotate: bool) -> kex_loom::Stats {
        Builder::new().check(move || {
            let kex = Arc::new(CcChainKex::new(2, 1));
            let inside = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|p| {
                    let kex = Arc::clone(&kex);
                    let inside = Arc::clone(&inside);
                    thread::spawn(move || {
                        let outer =
                            annotate.then(|| kex_core::obs::span(kex_core::obs::Section::Other, p));
                        kex.acquire(p);
                        let cs =
                            annotate.then(|| kex_core::obs::span(kex_core::obs::Section::Cs, p));
                        let now = inside.fetch_add(1, SeqCst) + 1;
                        assert!(now <= 1, "k-exclusion violated: {now} > k=1");
                        inside.fetch_sub(1, SeqCst);
                        drop(cs);
                        kex.release(p);
                        drop(outer);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    }

    let bare = explore(false);
    let annotated = explore(true);
    assert_eq!(
        bare.executions, annotated.executions,
        "span annotations changed the number of explored interleavings"
    );
    assert_eq!(
        bare.schedule_points, annotated.schedule_points,
        "span annotations introduced schedule points"
    );
    eprintln!(
        "obs inertness: {} executions, {} schedule points, identical with and without spans",
        bare.executions, bare.schedule_points
    );
}

// --- relaxed-ordering sites: multi-cycle models ---------------------------
//
// `native::ordering` weakens selected hot-path sites from SeqCst to
// acquire/release/relaxed (see `docs/MEMORY_ORDERING.md`). The vendored
// checker explores sequentially-consistent interleavings whatever
// `Ordering` argument the code passes, so these models cannot detect a
// *wrong ordering* directly — that is TSan's job (CI runs the contend
// smoke under `-Z sanitizer=thread`). What they do pin down is the
// *algorithmic* claim each relaxation leans on, across the state reuse
// that only shows up after a release: every model below runs two full
// acquire→release cycles per process, so each relaxed site is exercised
// in its "stale value from the previous cycle" regime.

#[test]
fn fig2_two_cycles_spin_sees_second_wakeup() {
    // Relaxed site: the `Q == p` spin load is ACQUIRE. Its soundness
    // argument needs *every* wake store (release-side and newer-waiter
    // side) to reach the spinner — including a second wakeup of the same
    // process after it already cycled once.
    check_occupancy(
        "fig2 2-cycle (2,1)",
        Builder::new().max_preemptions(3),
        || CcChainKex::new(2, 1),
        &[0, 1],
        &[],
        2,
    );
}

#[test]
fn fig6_two_cycles_last_cursor_advances() {
    // Relaxed sites: `mine.last` load/store are RELAXED (owner-private
    // cursor) and the `p[next]` spin is ACQUIRE. Two cycles make the
    // cursor actually advance through the wheel, so a stale `last`
    // read would hand the process a spin location nobody will set.
    check_occupancy(
        "fig6 2-cycle (2,1)",
        Builder::new().max_preemptions(3),
        || DsmChainKex::new(2, 1),
        &[0, 1],
        &[],
        2,
    );
}

#[test]
fn mcs_two_cycles_node_reuse() {
    // Relaxed sites: `next.store(NIL, RELAXED)` on enqueue, AcqRel tail
    // swap, RELEASE/ACQUIRE locked-flag handoff. Node reuse is the
    // classic MCS hazard: cycle 2 re-enqueues the same node cycle 1
    // just released, so a predecessor still holding a stale `next`
    // pointer would corrupt the queue.
    check_occupancy(
        "mcs 2-cycle (2)",
        Builder::new().max_preemptions(4),
        || McsLock::new(2),
        &[0, 1],
        &[],
        2,
    );
}

#[test]
fn fast_path_two_cycles_slow_flag_round_trip() {
    // Relaxed sites: the X credit counter RMWs are ACQ_REL (same-location
    // chain) and `slow_flag` is RELAXED (arbitration is advisory; safety
    // rests on X). Two cycles drive a process through set-then-clear of
    // its slow flag with the other process mid-protocol.
    check_occupancy(
        "fast path 2-cycle (3,1)",
        Builder::new().max_preemptions(2),
        || FastPathKex::new(3, 1),
        &[0, 1, 2],
        &[],
        2,
    );
}

#[test]
fn fig1_two_cycles_waiting_flag_reuse() {
    // Relaxed sites: a process's own `waiting` flag is stored RELAXED
    // (ordered by the enclosing mutex), spun on with ACQUIRE, and
    // cleared by the releaser with RELEASE. Cycle 2 re-arms the same
    // flag the releaser just cleared.
    check_occupancy(
        "fig1 2-cycle (3,2)",
        Builder::new().max_preemptions(2),
        || QueueKex::new(3, 2),
        &[0, 1, 2],
        &[],
        2,
    );
}

#[test]
fn yang_anderson_two_cycles() {
    // Relaxed sites: only the two `p[..]` spin loads are ACQUIRE; the
    // three-variable Dekker handshake stays SEQ_CST. Two cycles make
    // each contender pass through both roles of the arbitration.
    check_occupancy(
        "yang-anderson 2-cycle (2)",
        Builder::new().max_preemptions(4),
        || YangAndersonLock::new(2),
        &[0, 1],
        &[],
        2,
    );
}

#[test]
fn graceful_two_cycles_depth_cursor() {
    // Relaxed site: `depth[p]` is an owner-private RELAXED cursor
    // recording which level the process stopped at; release must read
    // back the value acquire wrote one cycle earlier.
    check_occupancy(
        "graceful 2-cycle (2,1)",
        Builder::new().max_preemptions(3),
        || GracefulKex::new(2, 1),
        &[0, 1],
        &[],
        2,
    );
}

// The renaming swap/clear pair (ACQ_REL `bit.swap`, RELEASE clear) is
// already exercised across reuse by `tas_renaming_two_concurrent`
// above: each process acquires a name twice, so cycle 2 re-swaps bits
// cycle 1 released.

// --- checker power: the injected Figure-2 ordering bug --------------------

/// Figure 2's admission gate with the atomic `fetch_sub` deliberately
/// split into a load/store pair — the exact bug a relaxed or non-RMW
/// "optimization" of the gate would introduce. Two processes can both
/// read `X = 1` and both admit themselves.
struct BrokenGate {
    x: AtomicIsize,
    q: AtomicUsize,
}

impl BrokenGate {
    fn new(k: isize) -> Self {
        BrokenGate {
            x: AtomicIsize::new(k),
            q: AtomicUsize::new(usize::MAX),
        }
    }

    fn acquire(&self, p: usize) {
        // BUG: non-atomic read-modify-write of the admission counter.
        let v = self.x.load(SeqCst);
        self.x.store(v - 1, SeqCst);
        if v <= 0 {
            self.q.store(p, SeqCst);
            while self.q.load(SeqCst) == p && self.x.load(SeqCst) < 0 {
                kex_loom::hint::spin_loop();
            }
        }
    }

    fn release(&self, p: usize) {
        self.x.fetch_add(1, SeqCst);
        self.q.store(p, SeqCst);
    }
}

#[test]
fn broken_gate_violation_is_caught() {
    let msg = kex_loom::check_expecting_failure(|| {
        let gate = Arc::new(BrokenGate::new(1));
        let inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|p| {
                let gate = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                thread::spawn(move || {
                    gate.acquire(p);
                    let now = inside.fetch_add(1, SeqCst) + 1;
                    assert!(now <= 1, "k-exclusion violated: {now} > k=1");
                    inside.fetch_sub(1, SeqCst);
                    gate.release(p);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(
        msg.contains("k-exclusion violated") || msg.contains("deadlock"),
        "checker reported an unrelated failure: {msg}"
    );
}

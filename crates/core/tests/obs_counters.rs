//! Scripted single-thread schedules with **exact** expected counter
//! values from the instrumented atomics backend.
//!
//! With one thread there is exactly one interleaving, so every counter
//! is deterministic and the test can pin the estimator's CC/DSM
//! semantics op by op (mirroring `kex_sim::memmodel`):
//!
//! * CC read: local iff the reader already holds the line; a miss
//!   inserts the reader into the holder set.
//! * CC write/RMW: local iff the writer is the *sole* holder; otherwise
//!   remote, and the writer becomes sole holder.
//! * DSM: static owner; every access to an unowned or foreign-owned
//!   location is remote.
//!
//! Runs only with `--features obs`; it is an integration test so it gets
//! its own process and its own (otherwise untouched) global registry.

#![cfg(all(feature = "obs", not(loom)))]

use kex_core::native::{CcChainKex, RawKex};
use kex_obs::Section;

/// The whole file is one `#[test]`: the registry is process-global and
/// the libtest harness runs `#[test]` fns concurrently, so independent
/// tests would race each other's `reset()`.
#[test]
fn scripted_single_thread_schedule_has_exact_counts() {
    cc_chain_2_1_exact_counts();
    second_acquisition_hits_warm_cache();
    guard_drives_occupancy_gauge_and_cs_span();
}

/// `CcChainKex::new(2, 1)` is a single Figure-2 stage (`X`, `Q`).
/// Uncontended acquire touches only `X`; release touches `X` and `Q`.
fn cc_chain_2_1_exact_counts() {
    kex_obs::reset();
    let kex = CcChainKex::new(2, 1);

    kex.acquire(0);
    let snap = kex_obs::snapshot();
    let entry = snap.section_totals(Section::Entry);
    // Statement 2: one fetch&add on X. First touch of the line: CC
    // remote (pid 0 becomes sole holder); no DSM owner, so DSM remote.
    assert_eq!(entry.rmws, 1, "acquire = exactly one RMW on X");
    assert_eq!(entry.loads, 0, "slot was free: no re-check, no spin");
    assert_eq!(entry.stores, 0);
    assert_eq!(entry.cc_remote, 1);
    assert_eq!(entry.dsm_remote, 1);
    assert_eq!(entry.spans, 1, "one completed Entry span");
    assert_eq!(entry.spins, 0);

    kex.release(0);
    let snap = kex_obs::snapshot();
    let exit = snap.section_totals(Section::Exit);
    // Statement 6: fetch&add on X — pid 0 is sole holder, so CC *local*,
    // but DSM remote (unowned). Statement 7: store to Q — first touch,
    // CC remote and DSM remote.
    assert_eq!(exit.rmws, 1);
    assert_eq!(exit.stores, 1);
    assert_eq!(exit.loads, 0);
    assert_eq!(exit.cc_remote, 1, "X is cached; only the Q store misses");
    assert_eq!(exit.dsm_remote, 2, "every access is DSM-remote (no homes)");
    assert_eq!(exit.spans, 1);

    // Everything was inside a span: the untracked bucket stayed empty.
    assert!(
        snap.untracked().is_none(),
        "no ops should fall outside the algorithm spans"
    );
    // All ops belong to pid 0.
    let pid0 = snap.pid(0).expect("pid 0 recorded");
    assert_eq!(pid0.sections[Section::Entry as usize].ops(), 1);
    assert_eq!(pid0.sections[Section::Exit as usize].ops(), 2);
    // The event ring replays the same story in order.
    let kinds: Vec<&str> = pid0.events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        [
            "span-open",  // Entry
            "rmw",        // X.fetch_sub
            "span-close", // Entry
            "span-open",  // Exit
            "rmw",        // X.fetch_add
            "store",      // Q.store
            "span-close", // Exit
        ]
    );
}

/// The CC estimator is stateful across acquisitions: the second
/// uncontended pass finds `X` still cached (pid 0 stayed sole holder)
/// and costs zero CC-remote references in the entry section.
fn second_acquisition_hits_warm_cache() {
    kex_obs::reset();
    let kex = CcChainKex::new(2, 1);
    kex.acquire(0);
    kex.release(0);

    kex_obs::reset(); // counters to zero; holder masks intentionally survive
    kex.acquire(0);
    let snap = kex_obs::snapshot();
    let entry = snap.section_totals(Section::Entry);
    assert_eq!(entry.rmws, 1);
    assert_eq!(entry.cc_remote, 0, "X line still held from the first pass");
    assert_eq!(entry.dsm_remote, 1, "DSM has no cache: remote every time");
    kex.release(0);
}

/// `enter()` wraps the critical section in a `Cs` span that drives the
/// occupancy gauge; the guard closes it before releasing.
fn guard_drives_occupancy_gauge_and_cs_span() {
    kex_obs::reset();
    let kex = CcChainKex::new(2, 1);
    {
        let _guard = kex.enter(1);
        let snap = kex_obs::snapshot();
        assert_eq!(snap.occupancy.current, 1, "one live holder");
        assert_eq!(snap.occupancy.max, 1);
    }
    let snap = kex_obs::snapshot();
    assert_eq!(snap.occupancy.current, 0, "guard dropped");
    assert_eq!(snap.occupancy.max, 1, "high-water mark retained");
    let pid1 = snap.pid(1).expect("pid 1 recorded");
    assert_eq!(pid1.sections[Section::Cs as usize].spans, 1);
    assert_eq!(
        pid1.hists[Section::Cs as usize].count(),
        1,
        "one Cs latency sample"
    );
}

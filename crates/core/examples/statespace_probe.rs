//! Measures reachable-state counts of the model-checked instances, so the
//! exhaustive tests can be sized to stay fast. Run with:
//! `cargo run --release -p kex-core --example statespace_probe`

use std::time::Instant;

use kex_core::sim::Algorithm;
use kex_sim::explore::{explore, ExploreConfig};

fn probe(label: &str, algo: Algorithm, n: usize, k: usize, failures: usize, cap: usize) {
    probe_cycles(label, algo, n, k, failures, cap, None)
}

fn probe_cycles(
    label: &str,
    algo: Algorithm,
    n: usize,
    k: usize,
    failures: usize,
    cap: usize,
    cycles: Option<u64>,
) {
    let proto = algo.build(n, k, 16);
    let cfg = ExploreConfig {
        max_failures: failures,
        max_states: cap,
        cycles,
        ..ExploreConfig::default()
    };
    let t = Instant::now();
    let report = explore(proto, &cfg);
    println!(
        "{label:<28} n={n} k={k} f={failures}: states={}{} transitions={} violation={} in {:?}",
        report.states,
        if report.truncated {
            "+ (TRUNCATED)"
        } else {
            ""
        },
        report.transitions,
        report.violation.is_some(),
        t.elapsed()
    );
}

fn main() {
    let cap = 3_000_000;
    probe_cycles(
        "dsm-chain c=1 f=1",
        Algorithm::DsmChain,
        3,
        2,
        1,
        cap,
        Some(1),
    );
    probe("graceful", Algorithm::CcGraceful, 3, 1, 0, cap);
    probe("cc-fastpath", Algorithm::CcFastPath, 3, 1, 0, cap);
}

//! Named ordering constant for the store layer.
//!
//! Mirrors `kex_core::native::ordering` and `kex-waitfree`'s module of
//! the same name: every non-test atomic access in this crate names its
//! ordering through a constant defined here instead of spelling a
//! literal `Ordering::*`, so the kex-lint ordering-policy pass can
//! audit the crate the same way it audits the native hot paths. The
//! store's shared cells — packed key/value slots raced by up to `k`
//! admitted writers, journal lane heads read cross-process for crash
//! attribution — follow the wait-free layer's policy: uniformly SeqCst,
//! with no per-site relaxation argument attempted. The store is a
//! *service* layer; its cost is dominated by the k-assignment wrappers
//! underneath, whose orderings are the audited ones.

use kex_util::sync::atomic::Ordering;

/// The single ordering the store layer uses.
pub(crate) const SEQ_CST: Ordering = Ordering::SeqCst;

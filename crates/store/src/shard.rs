//! One shard: a `Resilient<O>` wrapper, its per-name operation lanes,
//! and monitoring counters.
//!
//! The shard is where the paper's composition becomes a service
//! building block: the k-assignment wrapper admits at most `k`
//! processes and hands each a *name*, the name indexes both the
//! k-process object's identity space and the journal lane the operation
//! is logged to, and a crash inside the critical section consumes the
//! slot, the name, and the lane together — so the lane's in-flight
//! entry is exactly the crashed process's last operation.

use kex_core::native::Resilient;
use kex_util::sync::atomic::AtomicU64;
use kex_util::CachePadded;

use crate::journal::{LaneJournal, OpKind};
use crate::object::ShardObject;
use crate::ordering::SEQ_CST;
use crate::traits::PutError;

/// A single shard; created and routed to by [`crate::Store`].
pub struct Shard<O> {
    res: Resilient<O>,
    journal: LaneJournal,
    /// Operations completed through this shard (reads + writes).
    ops: CachePadded<AtomicU64>,
    /// Non-blocking operations shed because no slot was free.
    sheds: CachePadded<AtomicU64>,
}

/// A monitoring snapshot of one shard; all fields are approximate
/// point-in-time reads (see [`Shard::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's admission bound.
    pub k: usize,
    /// Distinct keys resident in the shard object.
    pub keys: usize,
    /// Operations completed through the shard.
    pub ops: u64,
    /// Non-blocking operations shed.
    pub sheds: u64,
    /// Processes admitted or waiting right now (crashed holders count
    /// forever).
    pub occupancy: usize,
    /// Lanes whose last journaled operation is still in flight — after
    /// crashes, the number of attributable dead holders.
    pub in_flight_lanes: usize,
}

impl<O: ShardObject> Shard<O> {
    /// A shard over `obj` for `n` processes with admission bound `k`,
    /// journaling the most recent `journal_depth` operations per lane.
    pub fn new(n: usize, k: usize, journal_depth: usize, obj: O) -> Self {
        Shard {
            res: Resilient::new(n, k, obj),
            journal: LaneJournal::new(k, journal_depth),
            ops: CachePadded::new(AtomicU64::new(0)),
            sheds: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The shard's admission bound.
    pub fn k(&self) -> usize {
        self.res.k()
    }

    /// The shard's per-name journal.
    pub fn journal(&self) -> &LaneJournal {
        &self.journal
    }

    fn finish_put(&self, name: usize, lsn: u64, result: Result<(), PutError>) {
        match result {
            Ok(()) => self.journal.commit(name, lsn),
            Err(_) => self.journal.abort(name, lsn),
        }
        self.ops.fetch_add(1, SEQ_CST);
    }

    /// Guarded read.
    pub fn get(&self, p: usize, key: u64) -> Option<u64> {
        let got = self.res.with(p, |obj, name| obj.get(name, key));
        self.ops.fetch_add(1, SEQ_CST);
        got
    }

    /// Non-blocking guarded read; `None` = shed.
    pub fn try_get(&self, p: usize, key: u64) -> Option<Option<u64>> {
        match self.res.try_with(p, |obj, name| obj.get(name, key)) {
            Some(got) => {
                self.ops.fetch_add(1, SEQ_CST);
                Some(got)
            }
            None => {
                self.sheds.fetch_add(1, SEQ_CST);
                None
            }
        }
    }

    /// Guarded, journaled write.
    pub fn put(&self, p: usize, key: u64, value: u64) -> Result<(), PutError> {
        self.res.with(p, |obj, name| {
            let lsn = self.journal.begin(name, OpKind::Put, key, value);
            let result = obj.put(name, key, value);
            self.finish_put(name, lsn, result);
            result
        })
    }

    /// Non-blocking guarded, journaled write; `None` = shed.
    pub fn try_put(&self, p: usize, key: u64, value: u64) -> Option<Result<(), PutError>> {
        let outcome = self.res.try_with(p, |obj, name| {
            let lsn = self.journal.begin(name, OpKind::Put, key, value);
            let result = obj.put(name, key, value);
            self.finish_put(name, lsn, result);
            result
        });
        if outcome.is_none() {
            self.sheds.fetch_add(1, SEQ_CST);
        }
        outcome
    }

    /// Guarded scan of this shard's pairs.
    pub fn scan(&self, p: usize, f: &mut dyn FnMut(u64, u64)) {
        self.res.with(p, |obj, name| obj.scan(name, f));
        self.ops.fetch_add(1, SEQ_CST);
    }

    /// Crash-failure injection: enter as `p`, journal and apply a put,
    /// then die *before committing* — permanently consuming one slot,
    /// one name, and leaving the lane's in-flight entry attributing the
    /// interrupted operation to this crash. Used by the loom model and
    /// the crash-mix benchmark runs.
    pub fn crash_in_cs(&self, p: usize, key: u64, value: u64) {
        let guard = self.res.enter(p);
        let name = guard.name();
        self.journal.begin(name, OpKind::Put, key, value);
        let _ = guard.object().put(name, key, value);
        // The crash: the slot, name, and admission ticket never return.
        std::mem::forget(guard);
    }

    /// Approximate monitoring snapshot (no wrapper entry; every field
    /// is an always-safe read).
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            k: self.res.k(),
            keys: self.res.object_unguarded().len_unguarded(),
            ops: self.ops.load(SEQ_CST),
            sheds: self.sheds.load(SEQ_CST),
            occupancy: self.res.occupancy(),
            in_flight_lanes: self.journal.in_flight_lanes(),
        }
    }
}

impl<O: Sync> std::fmt::Debug for Shard<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("k", &self.res.k())
            .field("journal", &self.journal)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::OpState;
    use crate::object::KvCells;

    #[test]
    fn ops_are_journaled_to_the_holders_lane() {
        let shard = Shard::new(4, 2, 8, KvCells::new(16));
        shard.put(0, 5, 50).unwrap();
        shard.put(1, 6, 60).unwrap();
        assert_eq!(shard.get(2, 5), Some(50));
        let committed: u64 = (0..2).map(|name| shard.journal().committed(name)).sum();
        assert_eq!(committed, 2);
        assert_eq!(shard.stats().in_flight_lanes, 0);
        assert_eq!(shard.stats().keys, 2);
        assert_eq!(shard.stats().ops, 3);
    }

    #[test]
    fn crash_in_cs_is_attributable_and_survivable() {
        let shard = Shard::new(6, 2, 4, KvCells::new(16));
        shard.crash_in_cs(0, 42, 1);
        // One slot and one lane are gone; survivors still operate.
        shard.put(1, 42, 2).unwrap();
        assert!(shard.get(2, 42).is_some());
        let stats = shard.stats();
        assert_eq!(stats.in_flight_lanes, 1);
        assert_eq!(stats.occupancy, 1);
        // The dead lane names the interrupted op.
        let dead: Vec<_> = (0..2)
            .filter_map(|name| shard.journal().in_flight(name))
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!((dead[0].key, dead[0].value), (42, 1));
        assert_eq!(dead[0].state, OpState::InFlight);
    }

    #[test]
    fn full_shard_sheds_nonblocking_ops() {
        let shard = Shard::new(6, 2, 4, KvCells::new(16));
        shard.crash_in_cs(0, 1, 1);
        shard.crash_in_cs(1, 2, 2);
        assert_eq!(shard.try_put(2, 3, 3), None);
        assert_eq!(shard.try_get(3, 1), None);
        assert_eq!(shard.stats().sheds, 2);
        assert_eq!(shard.stats().in_flight_lanes, 2);
    }

    #[test]
    fn aborts_are_journaled_not_in_flight() {
        let shard = Shard::new(4, 1, 4, KvCells::new(2));
        shard.put(0, 0, 0).unwrap();
        shard.put(0, 1, 1).unwrap();
        assert_eq!(shard.put(0, 2, 2), Err(PutError::ShardFull));
        assert_eq!(shard.stats().in_flight_lanes, 0);
        let hist = shard.journal().history(0);
        assert_eq!(hist.last().unwrap().state, OpState::Aborted);
    }
}

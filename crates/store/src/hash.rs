//! Seeded key → shard routing.
//!
//! Routing must be (a) deterministic per seed, so every process — and
//! every recovery pass over the journals — agrees on which shard owns a
//! key, and (b) well-mixed, so the hottest Zipfian ranks land on
//! *different* shards instead of piling onto one wrapper. A
//! SplitMix64-style finalizer (the same mixer `kex_util::rng::SmallRng`
//! uses) over `key ^ seed` gives both without any external dependency;
//! the high multiply-shift bits pick the shard, so the shard count does
//! not need to be a power of two.

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard in `0..shards` that owns `key` under `seed`.
///
/// Multiply-shift on the mixed value: unbiased to within 2^-64 for any
/// shard count, monotone in the mixed hash (useful for reasoning about
/// splits), and branch-free.
#[inline]
pub fn shard_of(key: u64, seed: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    ((u128::from(mix64(key ^ seed)) * shards as u128) >> 64) as usize
}

/// Probe start for `key` inside a shard table of `capacity` slots
/// (capacity must be a power of two). Mixed with a different stream
/// constant than the shard router so in-shard placement is independent
/// of shard routing.
#[inline]
pub(crate) fn slot_of(key: u64, capacity: usize) -> usize {
    debug_assert!(capacity.is_power_of_two());
    (mix64(key ^ 0xA076_1D64_78BD_642F) as usize) & (capacity - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_seed_sensitive() {
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(shard_of(key, 7, 64), shard_of(key, 7, 64));
        }
        // Different seeds must re-route at least one of a small key set.
        let moved = (0..256u64)
            .filter(|&k| shard_of(k, 1, 64) != shard_of(k, 2, 64))
            .count();
        assert!(moved > 64, "seed change only moved {moved}/256 keys");
    }

    #[test]
    fn shard_is_in_range_for_non_power_of_two_counts() {
        for shards in [1usize, 3, 7, 12, 100] {
            for key in 0..1000u64 {
                assert!(shard_of(key, 99, shards) < shards);
            }
        }
    }

    #[test]
    fn mixer_avalanches_single_bit_flips() {
        // Crude avalanche check: flipping one input bit flips a
        // substantial fraction of output bits on average.
        let mut total = 0u32;
        for bit in 0..64 {
            total += (mix64(0xDEAD_BEEF) ^ mix64(0xDEAD_BEEF ^ (1 << bit))).count_ones();
        }
        let avg = f64::from(total) / 64.0;
        assert!((20.0..44.0).contains(&avg), "avg flipped bits {avg}");
    }
}

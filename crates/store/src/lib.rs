//! # kex-store — a sharded resilient-object service layer
//!
//! The paper's methodology makes *one* shared object `(k-1)`-resilient:
//! a wait-free k-process object inside a k-assignment wrapper
//! ([`kex_core::native::Resilient`]). This crate is the next layer up —
//! the first in the repo that serves a *multi-object workload* rather
//! than a single primitive:
//!
//! ```text
//!   key ──seeded hash──▶ shard ──Resilient (n, k)──▶ wait-free object
//!                          │
//!                          └─▶ per-name op lanes (append-only journal)
//! ```
//!
//! * **Routing** ([`shard_of`]): a SplitMix64-style seeded hash assigns each
//!   key to one of a fixed set of shards; deterministic per seed, so
//!   every process and every recovery pass agrees on ownership.
//! * **Admission** ([`Shard`]): each shard owns a `Resilient<O>` with
//!   its own `(n, k)` — per-shard `k` tunes resiliency/contention
//!   independently (hot shards wider, cold shards narrower).
//! * **Lanes** ([`LaneJournal`]): the k-assignment *name* doubles as the
//!   index of an append-only per-name operation journal. A crashed
//!   process consumes its name forever, so the lane it leaves behind
//!   attributes exactly the in-flight operation it died in.
//! * **Surface**: small capability traits — [`StoreRead`],
//!   [`StoreWrite`], [`StoreScan`] — with non-blocking `try_*` variants
//!   that shed load (via [`Resilient::try_with`]) when a shard's `k`
//!   slots are all held, instead of spinning behind crashed holders.
//!
//! The shard objects are **k-process** implementations per the paper's
//! contract; [`KvCells`] (an atomic-register open-addressed table) is
//! the stock one. Every atomic in this crate goes through the
//! [`kex_util::sync`] facade and names its ordering through the audited
//! constant in `ordering` (uniformly SeqCst — the service layer makes
//! no relaxation claims; the audited relaxations live in the native
//! layer beneath it).
//!
//! Resilience composition across shards: each shard tolerates
//! `k_s - 1` crashed holders independently, so the store as a whole
//! serves every key whose shard has a live slot — a crash budget of
//! `Σ (k_s - 1)` placed adversarially, in the spirit of the t-resilient
//! composition line in PAPERS.md. The `store` binary in `kex-bench`
//! measures throughput/latency across shard × thread grids and the
//! crash-mix regime (EXPERIMENTS.md E13); `docs/STORE.md` has the
//! architecture tour.
//!
//! [`Resilient::try_with`]: kex_core::native::Resilient::try_with

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod hash;
mod journal;
mod object;
mod ordering;
mod shard;
mod store;
mod traits;

pub use hash::shard_of;
pub use journal::{Entry, LaneJournal, OpKind, OpState};
pub use object::{KvCells, ShardObject, MAX_KEY, MAX_VALUE};
pub use shard::{Shard, ShardStats};
pub use store::{KvStore, Store, StoreConfig};
pub use traits::{PutError, StoreRead, StoreScan, StoreWrite};

//! The sharded store: seeded-hash routing over a fixed set of
//! [`Shard`]s, each with an independently configured `(n, k)`.

use crate::hash::shard_of;
use crate::object::{KvCells, ShardObject};
use crate::shard::{Shard, ShardStats};
use crate::traits::{PutError, StoreRead, StoreScan, StoreWrite};

// Span shim: real `Section::Store` spans under `--features obs`,
// erased otherwise (see `kex_core::obs`).
use kex_core::obs;

/// Construction parameters for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards; routing is `shard_of(key, seed, shards)`.
    pub shards: usize,
    /// Per-shard process universe: every process id in `0..n` may
    /// operate on every shard. Size it with headroom for the crash
    /// budget (crashed ids are never reclaimed — see the registry
    /// note in `kex-core`).
    pub n: usize,
    /// Default admission/resiliency bound per shard (each shard
    /// tolerates `k - 1` crashed holders). Override per shard with
    /// [`StoreConfig::shard_ks`].
    pub k: usize,
    /// Routing seed: all processes (and any recovery pass) must agree
    /// on it.
    pub seed: u64,
    /// Key capacity per shard object (rounded up to a power of two).
    pub capacity: usize,
    /// Journaled operations retained per lane.
    pub journal_depth: usize,
    /// Optional per-shard `k` overrides (index = shard; missing entries
    /// fall back to `k`) — hot shards can run wider admission than cold
    /// ones.
    pub shard_ks: Vec<usize>,
}

impl StoreConfig {
    /// A config with `shards` shards for an `n`-process universe and
    /// uniform admission bound `k`.
    pub fn new(shards: usize, n: usize, k: usize) -> Self {
        StoreConfig {
            shards,
            n,
            k,
            seed: 0x6B65_785F_7374_6F72, // "kex_stor"
            capacity: 1024,
            journal_depth: 8,
            shard_ks: Vec::new(),
        }
    }

    /// The admission bound for `shard`.
    pub fn k_of(&self, shard: usize) -> usize {
        self.shard_ks.get(shard).copied().unwrap_or(self.k)
    }
}

/// A sharded, `(k-1)`-resilient-per-shard key/value service:
/// keys route by seeded hash to a shard, each shard is a
/// [`Resilient`](kex_core::native::Resilient)-wrapped wait-free object
/// with its own operation lanes.
///
/// ```rust
/// use kex_store::{KvStore, StoreConfig, StoreRead, StoreWrite};
///
/// let store = KvStore::new(StoreConfig::new(8, 16, 2));
/// store.put(3, 7001, 42).unwrap();
/// assert_eq!(store.get(5, 7001), Some(42));
/// ```
pub struct Store<O> {
    shards: Vec<Shard<O>>,
    seed: u64,
}

/// The concrete store the benchmarks and examples use: [`KvCells`]
/// behind every shard.
pub type KvStore = Store<KvCells>;

impl KvStore {
    /// Build a store of [`KvCells`] shards from `cfg`.
    pub fn new(cfg: StoreConfig) -> Self {
        Store::with_objects(&cfg, |_| KvCells::new(cfg.capacity))
    }
}

impl<O: ShardObject> Store<O> {
    /// Build a store whose shard objects come from `make(shard_index)`,
    /// honoring `cfg`'s per-shard `k` overrides.
    pub fn with_objects(cfg: &StoreConfig, make: impl FnMut(usize) -> O) -> Self {
        assert!(cfg.shards >= 1, "a store needs at least one shard");
        let mut make = make;
        Store {
            shards: (0..cfg.shards)
                .map(|s| {
                    let k = cfg.k_of(s);
                    assert!(
                        k >= 1 && k < cfg.n,
                        "shard {s}: need 1 <= k < n (k = {k}, n = {})",
                        cfg.n
                    );
                    Shard::new(cfg.n, k, cfg.journal_depth, make(s))
                })
                .collect(),
            seed: cfg.seed,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of(key, self.seed, self.shards.len())
    }

    /// The shard that owns `key`.
    pub fn shard_for(&self, key: u64) -> &Shard<O> {
        &self.shards[self.shard_of(key)]
    }

    /// The shard at `index` (monitoring/recovery surface).
    pub fn shard(&self, index: usize) -> &Shard<O> {
        &self.shards[index]
    }

    /// Crash-failure injection on the shard owning `key`: process `p`
    /// dies inside the critical section mid-`put`, consuming a slot and
    /// a name there forever. See [`Shard::crash_in_cs`].
    pub fn crash_in_cs(&self, p: usize, key: u64, value: u64) {
        let _span = obs::span(obs::Section::Store, p);
        self.shard_for(key).crash_in_cs(p, key, value);
    }

    /// Per-shard monitoring snapshots, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(Shard::stats).collect()
    }
}

impl<O: ShardObject> StoreRead for Store<O> {
    fn get(&self, p: usize, key: u64) -> Option<u64> {
        let _span = obs::span(obs::Section::Store, p);
        self.shard_for(key).get(p, key)
    }

    fn try_get(&self, p: usize, key: u64) -> Option<Option<u64>> {
        let _span = obs::span(obs::Section::Store, p);
        self.shard_for(key).try_get(p, key)
    }
}

impl<O: ShardObject> StoreWrite for Store<O> {
    fn put(&self, p: usize, key: u64, value: u64) -> Result<(), PutError> {
        let _span = obs::span(obs::Section::Store, p);
        self.shard_for(key).put(p, key, value)
    }

    fn try_put(&self, p: usize, key: u64, value: u64) -> Option<Result<(), PutError>> {
        let _span = obs::span(obs::Section::Store, p);
        self.shard_for(key).try_put(p, key, value)
    }
}

impl<O: ShardObject> StoreScan for Store<O> {
    fn for_each(&self, p: usize, f: &mut dyn FnMut(u64, u64)) {
        let _span = obs::span(obs::Section::Store, p);
        for shard in &self.shards {
            shard.scan(p, f);
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.stats().keys).sum()
    }
}

impl<O> std::fmt::Debug for Store<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("shards", &self.shards.len())
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_deterministically_and_round_trips() {
        let store = KvStore::new(StoreConfig::new(16, 8, 2));
        for key in 0..500u64 {
            store.put(key as usize % 8, key, key + 1).unwrap();
            assert_eq!(store.shard_of(key), store.shard_of(key));
        }
        for key in 0..500u64 {
            assert_eq!(store.get(0, key), Some(key + 1));
        }
        assert_eq!(store.get(0, 100_000), None);
        assert_eq!(store.len(), 500);
    }

    #[test]
    fn scan_covers_every_shard() {
        let store = KvStore::new(StoreConfig::new(4, 4, 2));
        for key in 0..64u64 {
            store.put(0, key, key * 2).unwrap();
        }
        let mut pairs = std::collections::BTreeMap::new();
        store.for_each(1, &mut |k, v| {
            pairs.insert(k, v);
        });
        assert_eq!(pairs.len(), 64);
        assert!(pairs.iter().all(|(k, v)| *v == k * 2));
    }

    #[test]
    fn per_shard_k_overrides_apply() {
        let mut cfg = StoreConfig::new(3, 8, 2);
        cfg.shard_ks = vec![4, 1];
        let store = KvStore::new(cfg);
        assert_eq!(store.shard(0).k(), 4);
        assert_eq!(store.shard(1).k(), 1);
        assert_eq!(store.shard(2).k(), 2); // fallback
    }

    #[test]
    fn crashed_shard_keeps_serving_with_k_minus_1_dead() {
        let cfg = StoreConfig::new(2, 8, 2);
        let store = KvStore::new(cfg);
        // Find a key per shard, then kill one holder in shard 0.
        let key0 = (0..).find(|&k| store.shard_of(k) == 0).unwrap();
        let key1 = (0..).find(|&k| store.shard_of(k) == 1).unwrap();
        store.crash_in_cs(0, key0, 7);
        // Both shards still serve blocking ops.
        store.put(1, key0, 8).unwrap();
        store.put(2, key1, 9).unwrap();
        assert_eq!(store.get(3, key0), Some(8));
        assert_eq!(store.get(3, key1), Some(9));
        let stats = store.stats();
        assert_eq!(stats[0].in_flight_lanes, 1);
        assert_eq!(stats[1].in_flight_lanes, 0);
        assert_eq!(stats[0].occupancy, 1);
    }

    #[test]
    fn sheds_route_only_to_the_dead_shard() {
        let store = KvStore::new(StoreConfig::new(2, 16, 2));
        let key0 = (0..).find(|&k| store.shard_of(k) == 0).unwrap();
        let key1 = (0..).find(|&k| store.shard_of(k) == 1).unwrap();
        // Kill *all* of shard 0's slots: it is now unavailable, and the
        // non-blocking surface sheds instead of hanging.
        store.crash_in_cs(0, key0, 1);
        store.crash_in_cs(1, key0, 2);
        assert_eq!(store.try_put(2, key0, 3), None);
        assert_eq!(store.try_get(3, key0), None);
        // The live shard is untouched.
        assert_eq!(store.try_put(2, key1, 3), Some(Ok(())));
        assert_eq!(store.try_get(3, key1), Some(Some(3)));
        assert_eq!(store.stats()[0].sheds, 2);
    }
}

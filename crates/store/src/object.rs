//! The wait-free k-process object a shard wraps: a fixed-capacity
//! open-addressed key/value table over atomic registers.
//!
//! [`KvCells`] is deliberately minimal — the store layer's subject is
//! the *composition* (hash → k-assignment → object → journal), not a
//! clever map. Every slot is one `AtomicU64` packing a 32-bit key tag
//! with a 32-bit value, so a read or an overwrite is a single atomic
//! register access and a racing same-key write can never tear the pair
//! apart. Probes are linearly bounded by the (fixed) capacity and there
//! are no deletions, so every operation is wait-free for *any* number
//! of processes — a strictly stronger object than the k-process
//! contract [`crate::Store`] requires, which keeps the shard's
//! correctness burden on the admission layer where the paper puts it.

use kex_util::sync::atomic::{AtomicU64, AtomicUsize};
use kex_util::CachePadded;

use crate::hash::slot_of;
use crate::ordering::SEQ_CST;
use crate::traits::PutError;

/// Largest storable key: keys are packed as a 32-bit tag (`key + 1`,
/// reserving 0 for *empty*).
pub const MAX_KEY: u64 = (u32::MAX - 1) as u64;
/// Largest storable value: values occupy the low 32 bits of a slot.
pub const MAX_VALUE: u64 = u32::MAX as u64;

/// The k-process object behind each shard: operations take the caller's
/// assigned *name* in `0..k` per the paper's calling convention.
///
/// Implementations must be wait-free for `k` concurrent processes with
/// distinct names. `len_unguarded` and `scan` must additionally be safe
/// under arbitrary concurrency (they are what
/// [`Resilient::object_unguarded`](kex_core::native::Resilient::object_unguarded)
/// exposes for monitoring).
pub trait ShardObject: Sync {
    /// Read `key`; `None` when absent.
    fn get(&self, name: usize, key: u64) -> Option<u64>;
    /// Insert or overwrite `key`.
    fn put(&self, name: usize, key: u64, value: u64) -> Result<(), PutError>;
    /// Visit every present pair. Per-entry atomic, not a consistent cut.
    fn scan(&self, name: usize, f: &mut dyn FnMut(u64, u64));
    /// Approximate number of distinct keys present; safe to call
    /// without entering the wrapper.
    fn len_unguarded(&self) -> usize;
}

/// Fixed-capacity open-addressed atomic-register k/v table; see the
/// module docs for the design constraints.
#[derive(Debug)]
pub struct KvCells {
    /// `(key + 1) << 32 | value` per slot; 0 = empty. Slots only ever
    /// transition empty → claimed-for-one-key and then hold that key
    /// forever (no deletes), which is what makes bounded probing sound.
    slots: Vec<AtomicU64>,
    /// Distinct keys inserted (monotone; exact once insertions settle).
    len: CachePadded<AtomicUsize>,
}

impl KvCells {
    /// A table with room for `capacity` keys (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        KvCells {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Slot capacity (insertions beyond it return
    /// [`PutError::ShardFull`]).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn pack(key: u64, value: u64) -> u64 {
        assert!(key <= MAX_KEY, "KvCells keys are 32-bit (got {key})");
        assert!(
            value <= MAX_VALUE,
            "KvCells values are 32-bit (got {value})"
        );
        (key + 1) << 32 | value
    }
}

impl ShardObject for KvCells {
    fn get(&self, _name: usize, key: u64) -> Option<u64> {
        let cap = self.slots.len();
        let tag = Self::pack(key, 0) >> 32;
        let start = slot_of(key, cap);
        for i in 0..cap {
            let cur = self.slots[(start + i) & (cap - 1)].load(SEQ_CST);
            if cur == 0 {
                // First empty slot in probe order: the key was not
                // present when we looked (slots never empty out, so no
                // earlier insert can hide beyond this point).
                return None;
            }
            if cur >> 32 == tag {
                return Some(cur & MAX_VALUE);
            }
        }
        None
    }

    fn put(&self, _name: usize, key: u64, value: u64) -> Result<(), PutError> {
        let packed = Self::pack(key, value);
        let tag = packed >> 32;
        let cap = self.slots.len();
        let start = slot_of(key, cap);
        for i in 0..cap {
            let slot = &self.slots[(start + i) & (cap - 1)];
            let cur = slot.load(SEQ_CST);
            if cur >> 32 == tag {
                // Our key's slot: a full-word store replaces the value
                // and necessarily rewrites the same tag — concurrent
                // same-key writers cannot tear it, last write wins.
                slot.store(packed, SEQ_CST);
                return Ok(());
            }
            if cur == 0 {
                match slot.compare_exchange(0, packed, SEQ_CST, SEQ_CST) {
                    Ok(_) => {
                        self.len.fetch_add(1, SEQ_CST);
                        return Ok(());
                    }
                    Err(found) if found >> 32 == tag => {
                        // Lost the claim to a racing writer of the
                        // *same* key: converge on its slot.
                        slot.store(packed, SEQ_CST);
                        return Ok(());
                    }
                    // Claimed by a different key: keep probing.
                    Err(_) => {}
                }
            }
            // Occupied by a different key: keep probing.
        }
        Err(PutError::ShardFull)
    }

    fn scan(&self, _name: usize, f: &mut dyn FnMut(u64, u64)) {
        for slot in &self.slots {
            let cur = slot.load(SEQ_CST);
            if cur != 0 {
                f((cur >> 32) - 1, cur & MAX_VALUE);
            }
        }
    }

    fn len_unguarded(&self) -> usize {
        self.len.load(SEQ_CST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite_roundtrip() {
        let kv = KvCells::new(8);
        assert_eq!(kv.get(0, 7), None);
        kv.put(0, 7, 100).unwrap();
        kv.put(0, 9, 200).unwrap();
        assert_eq!(kv.get(1, 7), Some(100));
        kv.put(1, 7, 101).unwrap();
        assert_eq!(kv.get(0, 7), Some(101));
        assert_eq!(kv.get(0, 9), Some(200));
        assert_eq!(kv.len_unguarded(), 2);
    }

    #[test]
    fn zero_key_and_zero_value_are_storable() {
        let kv = KvCells::new(4);
        kv.put(0, 0, 0).unwrap();
        assert_eq!(kv.get(0, 0), Some(0));
        assert_eq!(kv.len_unguarded(), 1);
    }

    #[test]
    fn fills_to_capacity_then_sheds() {
        let kv = KvCells::new(4); // rounds to 4 slots
        for key in 0..4 {
            kv.put(0, key, key).unwrap();
        }
        assert_eq!(kv.put(0, 99, 1), Err(PutError::ShardFull));
        // Overwrites of present keys still succeed at capacity.
        kv.put(0, 2, 22).unwrap();
        assert_eq!(kv.get(0, 2), Some(22));
    }

    #[test]
    fn scan_visits_every_pair() {
        let kv = KvCells::new(16);
        for key in 0..10 {
            kv.put(0, key, key * 3).unwrap();
        }
        let mut seen = std::collections::BTreeMap::new();
        kv.scan(0, &mut |k, v| {
            assert!(seen.insert(k, v).is_none());
        });
        assert_eq!(seen.len(), 10);
        for (k, v) in seen {
            assert_eq!(v, k * 3);
        }
    }

    #[test]
    fn concurrent_same_key_writers_never_tear_the_pair() {
        let kv = std::sync::Arc::new(KvCells::new(8));
        std::thread::scope(|s| {
            for name in 0..4u64 {
                let kv = std::sync::Arc::clone(&kv);
                s.spawn(move || {
                    for i in 0..500 {
                        // Value encodes its writer; a torn pair would
                        // surface as an unknown value below.
                        kv.put(name as usize, 5, name * 1000 + (i % 100)).unwrap();
                        let got = kv.get(name as usize, 5).unwrap();
                        assert!(got / 1000 < 4, "torn value {got}");
                    }
                });
            }
        });
        assert_eq!(kv.len_unguarded(), 1);
    }
}

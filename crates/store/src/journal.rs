//! Per-name operation lanes: an append-only journal in the spirit of
//! quickstep's per-lane WAL discipline, keyed by k-assignment *names*.
//!
//! The k-assignment wrapper guarantees that at most one live process
//! holds each name at a time, so a name is a natural single-writer lane:
//! the holder journals `begin → (object op) → commit` into its lane with
//! plain atomic stores and no further synchronization among writers.
//! Because a crashed process consumes its name forever (the paper's
//! failure model), the lane it leaves behind is *attributable*: an entry
//! that is begun but never committed sits at the lane head and names
//! exactly the in-flight operation the crash interrupted — which is what
//! a recovery pass (or the crash-mix benchmark) reads back out.
//!
//! Lanes are fixed-depth rings; only the most recent `depth` entries are
//! retained. The head advances on *commit*, so the in-flight entry (if
//! any) always lives at `head % depth`.

use kex_util::sync::atomic::AtomicU64;
use kex_util::CachePadded;

use crate::ordering::SEQ_CST;

/// State of a journal slot, packed into the low bits of its meta word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpState {
    /// Begun, outcome unknown — the attribution target after a crash.
    InFlight,
    /// Completed successfully.
    Committed,
    /// Completed with an object-level error (e.g. shard full).
    Aborted,
}

/// Kind of journaled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An insert/overwrite.
    Put,
}

/// One decoded journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Lane-local sequence number (0-based, monotone).
    pub lsn: u64,
    /// What the operation was.
    pub kind: OpKind,
    /// How it ended — or [`OpState::InFlight`] if it never did.
    pub state: OpState,
    /// The operation's key.
    pub key: u64,
    /// The operation's value.
    pub value: u64,
}

const STATE_EMPTY: u64 = 0;
const STATE_IN_FLIGHT: u64 = 1;
const STATE_COMMITTED: u64 = 2;
const STATE_ABORTED: u64 = 3;
/// meta = `lsn << 4 | kind << 2 | state` (60-bit lsn).
const META_BITS: u32 = 4;

/// One name's ring: a head counter plus `depth` (meta, key, value) slot
/// triples, padded so lanes never share a cache line.
struct Lane {
    head: CachePadded<AtomicU64>,
    meta: Vec<AtomicU64>,
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
}

/// The per-shard journal: one single-writer lane per k-assignment name.
pub struct LaneJournal {
    lanes: Vec<Lane>,
    depth: usize,
}

impl std::fmt::Debug for LaneJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneJournal")
            .field("lanes", &self.lanes.len())
            .field("depth", &self.depth)
            .finish()
    }
}

impl LaneJournal {
    /// A journal with one lane per name in `0..k`, each retaining the
    /// most recent `depth` entries (`depth` rounded up to at least 1).
    pub fn new(k: usize, depth: usize) -> Self {
        let depth = depth.max(1);
        LaneJournal {
            lanes: (0..k)
                .map(|_| Lane {
                    head: CachePadded::new(AtomicU64::new(0)),
                    meta: (0..depth).map(|_| AtomicU64::new(STATE_EMPTY)).collect(),
                    keys: (0..depth).map(|_| AtomicU64::new(0)).collect(),
                    vals: (0..depth).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            depth,
        }
    }

    /// Number of lanes (the wrapper's `k`).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Entries retained per lane.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Journal the start of an operation on `name`'s lane; returns the
    /// entry's lane-local sequence number for [`LaneJournal::commit`] /
    /// [`LaneJournal::abort`].
    ///
    /// Caller contract (what the k-assignment buys): the caller holds
    /// `name` right now, making it the lane's only writer.
    pub fn begin(&self, name: usize, kind: OpKind, key: u64, value: u64) -> u64 {
        let lane = &self.lanes[name];
        let lsn = lane.head.load(SEQ_CST);
        let slot = (lsn % self.depth as u64) as usize;
        lane.keys[slot].store(key, SEQ_CST);
        lane.vals[slot].store(value, SEQ_CST);
        let kind = match kind {
            OpKind::Put => 0u64,
        };
        // Publishing the meta word last makes the (key, value) pair
        // visible before any observer can classify the entry in-flight.
        lane.meta[slot].store(lsn << META_BITS | kind << 2 | STATE_IN_FLIGHT, SEQ_CST);
        lsn
    }

    fn finish(&self, name: usize, lsn: u64, state: u64) {
        let lane = &self.lanes[name];
        let slot = (lsn % self.depth as u64) as usize;
        let meta = lane.meta[slot].load(SEQ_CST);
        debug_assert_eq!(meta >> META_BITS, lsn, "finish of a non-head entry");
        lane.meta[slot].store(meta & !0b11 | state, SEQ_CST);
        // Advancing the head only now keeps the in-flight entry (if the
        // writer dies first) pinned at `head % depth`.
        lane.head.store(lsn + 1, SEQ_CST);
    }

    /// Mark `name`'s entry `lsn` committed and advance the lane head.
    pub fn commit(&self, name: usize, lsn: u64) {
        self.finish(name, lsn, STATE_COMMITTED);
    }

    /// Mark `name`'s entry `lsn` aborted (the object refused the op)
    /// and advance the lane head.
    pub fn abort(&self, name: usize, lsn: u64) {
        self.finish(name, lsn, STATE_ABORTED);
    }

    fn decode(&self, name: usize, lsn: u64) -> Option<Entry> {
        let lane = &self.lanes[name];
        let slot = (lsn % self.depth as u64) as usize;
        let meta = lane.meta[slot].load(SEQ_CST);
        if meta & 0b11 == STATE_EMPTY || meta >> META_BITS != lsn {
            return None;
        }
        Some(Entry {
            lsn,
            kind: OpKind::Put,
            state: match meta & 0b11 {
                STATE_IN_FLIGHT => OpState::InFlight,
                STATE_COMMITTED => OpState::Committed,
                _ => OpState::Aborted,
            },
            key: lane.keys[slot].load(SEQ_CST),
            value: lane.vals[slot].load(SEQ_CST),
        })
    }

    /// The begun-but-unfinished operation on `name`'s lane, if any —
    /// after a crash, the attributable in-flight op the holder died in.
    ///
    /// Sound to call from any process for lanes whose holder is gone;
    /// racing it against a *live* holder yields a momentary in-flight
    /// entry, which is an accurate answer, not a torn one.
    pub fn in_flight(&self, name: usize) -> Option<Entry> {
        let head = self.lanes[name].head.load(SEQ_CST);
        self.decode(name, head)
            .filter(|e| e.state == OpState::InFlight)
    }

    /// How many lanes currently show an in-flight entry.
    pub fn in_flight_lanes(&self) -> usize {
        (0..self.lanes.len())
            .filter(|&name| self.in_flight(name).is_some())
            .count()
    }

    /// Completed entries committed to `name`'s lane so far.
    pub fn committed(&self, name: usize) -> u64 {
        self.lanes[name].head.load(SEQ_CST)
    }

    /// The retained tail of `name`'s lane, oldest first (completed
    /// entries plus a trailing in-flight one, if any).
    pub fn history(&self, name: usize) -> Vec<Entry> {
        // Candidate lsns span one ring plus the (possibly in-flight)
        // head entry; `decode` rejects slots whose stored lsn does not
        // match, so overwritten history simply drops out.
        let head = self.lanes[name].head.load(SEQ_CST);
        let first = head.saturating_sub(self.depth as u64);
        (first..=head)
            .filter_map(|lsn| self.decode(name, lsn))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_advances_and_records() {
        let j = LaneJournal::new(2, 4);
        let lsn = j.begin(0, OpKind::Put, 7, 70);
        assert_eq!(lsn, 0);
        assert_eq!(j.in_flight(0).unwrap().key, 7);
        assert_eq!(j.in_flight_lanes(), 1);
        j.commit(0, lsn);
        assert_eq!(j.in_flight(0), None);
        assert_eq!(j.committed(0), 1);
        let hist = j.history(0);
        assert_eq!(hist.len(), 1);
        assert_eq!(
            hist[0],
            Entry {
                lsn: 0,
                kind: OpKind::Put,
                state: OpState::Committed,
                key: 7,
                value: 70
            }
        );
    }

    #[test]
    fn crash_leaves_attributable_in_flight_entry() {
        let j = LaneJournal::new(3, 4);
        j.begin(1, OpKind::Put, 42, 1); // never committed: the crash
        let lsn = j.begin(2, OpKind::Put, 9, 2);
        j.commit(2, lsn);
        assert_eq!(j.in_flight_lanes(), 1);
        let e = j.in_flight(1).unwrap();
        assert_eq!((e.key, e.value, e.state), (42, 1, OpState::InFlight));
        assert_eq!(j.in_flight(0), None);
        assert_eq!(j.in_flight(2), None);
    }

    #[test]
    fn aborted_ops_are_not_in_flight() {
        let j = LaneJournal::new(1, 2);
        let lsn = j.begin(0, OpKind::Put, 1, 1);
        j.abort(0, lsn);
        assert_eq!(j.in_flight(0), None);
        assert_eq!(j.history(0)[0].state, OpState::Aborted);
    }

    #[test]
    fn ring_retains_only_the_most_recent_entries() {
        let j = LaneJournal::new(1, 4);
        for i in 0..10u64 {
            let lsn = j.begin(0, OpKind::Put, i, i * 10);
            j.commit(0, lsn);
        }
        let hist = j.history(0);
        assert!(hist.len() <= 4, "ring overflowed: {hist:?}");
        assert_eq!(hist.last().unwrap().key, 9);
        for w in hist.windows(2) {
            assert_eq!(w[1].lsn, w[0].lsn + 1);
        }
    }
}

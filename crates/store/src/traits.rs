//! The store's service surface: small capability traits in the style of
//! wrongodb's page-store decomposition (SNIPPETS.md) — a consumer that
//! only reads depends only on [`StoreRead`], a writer adds
//! [`StoreWrite`], and analytics/recovery tooling takes [`StoreScan`].
//! `Store<O>` implements all three; test doubles and future tiered
//! stores implement whichever subset they mean.
//!
//! Every operation takes the calling process id `p` (in `0..n`, the
//! per-shard universe) because admission and crash accounting are
//! per-process — this is a *paper-shaped* API, not a `&self`-hides-all
//! one. The `try_*` variants shed instead of waiting when the target
//! shard's `k` slots are all held (including slots consumed by crashed
//! processes), via [`Resilient::try_with`](kex_core::native::Resilient::try_with).

/// Why a write did not take effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutError {
    /// The owning shard's object is at capacity for new keys
    /// (overwrites of present keys still succeed).
    ShardFull,
}

impl std::fmt::Display for PutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PutError::ShardFull => write!(f, "shard object is full"),
        }
    }
}

impl std::error::Error for PutError {}

/// Read capability.
pub trait StoreRead {
    /// Read `key` as process `p`; `None` when absent. Blocks while the
    /// owning shard's slots are all held.
    fn get(&self, p: usize, key: u64) -> Option<u64>;

    /// Non-blocking [`StoreRead::get`]: `None` means *shed* (the owning
    /// shard had no free slot), `Some(inner)` is the read's answer.
    fn try_get(&self, p: usize, key: u64) -> Option<Option<u64>>;
}

/// Write capability.
pub trait StoreWrite {
    /// Insert or overwrite `key` as process `p`. Blocks while the
    /// owning shard's slots are all held.
    fn put(&self, p: usize, key: u64, value: u64) -> Result<(), PutError>;

    /// Non-blocking [`StoreWrite::put`]: `None` means *shed*,
    /// `Some(result)` is the write's outcome.
    fn try_put(&self, p: usize, key: u64, value: u64) -> Option<Result<(), PutError>>;
}

/// Whole-store iteration capability (monitoring, recovery, analytics).
pub trait StoreScan {
    /// Visit every present pair, shard by shard, as process `p`.
    /// Per-entry atomic; not a consistent cut across shards.
    fn for_each(&self, p: usize, f: &mut dyn FnMut(u64, u64));

    /// Approximate number of distinct keys across all shards, without
    /// entering any wrapper (see
    /// [`Resilient::object_unguarded`](kex_core::native::Resilient::object_unguarded)'s
    /// caveat — sound here because it only touches always-safe reads).
    fn len(&self) -> usize;

    /// `len() == 0`, with the same approximation caveat.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

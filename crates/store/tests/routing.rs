//! Shard-routing distribution tests: the seeded hash must spread keys
//! near-uniformly across shards (a hot shard defeats the whole point of
//! sharding the k-assignment wrappers) and must be a pure function of
//! `(key, seed, shards)` so every process routes identically.

use kex_store::{shard_of, KvStore, StoreConfig, StoreScan, StoreWrite};

/// Pearson chi-squared statistic of `counts` against a uniform
/// expectation.
fn chi_squared(counts: &[u64], total: u64) -> f64 {
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// 99.9%-quantile of the chi-squared distribution with 63 degrees of
/// freedom is ≈ 103.4; the seeds below are fixed, so this is a
/// deterministic regression bound with headroom, not a flaky
/// statistical test.
const CHI2_DF63_BOUND: f64 = 110.0;

#[test]
fn sequential_keys_spread_uniformly_across_64_shards() {
    // Sequential key ids are exactly what the Zipfian benchmark uses
    // (rank = key), making this the adversarial-but-realistic input: a
    // weak mixer would stripe them.
    const SHARDS: usize = 64;
    const KEYS: u64 = 64_000;
    for seed in [0u64, 1, 0x6B65_785F_7374_6F72, u64::MAX] {
        let mut counts = [0u64; SHARDS];
        for key in 0..KEYS {
            counts[shard_of(key, seed, SHARDS)] += 1;
        }
        let chi2 = chi_squared(&counts, KEYS);
        assert!(
            chi2 < CHI2_DF63_BOUND,
            "seed {seed:#x}: chi^2 = {chi2:.1} over {SHARDS} shards (bound {CHI2_DF63_BOUND})"
        );
        // No shard may be empty or pathologically hot at this volume.
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 0, "seed {seed:#x}: empty shard");
        assert!(
            (max as f64) < 1.5 * (KEYS as f64 / SHARDS as f64),
            "seed {seed:#x}: hottest shard holds {max} of {KEYS}"
        );
    }
}

#[test]
fn sparse_and_clustered_key_patterns_also_spread() {
    const SHARDS: usize = 64;
    for (label, keys) in [
        (
            "strided",
            (0..32_000u64).map(|i| i * 4096).collect::<Vec<_>>(),
        ),
        ("high-bit", (0..32_000u64).map(|i| i | 1 << 63).collect()),
    ] {
        let mut counts = [0u64; SHARDS];
        for &key in &keys {
            counts[shard_of(key, 7, SHARDS)] += 1;
        }
        let chi2 = chi_squared(&counts, keys.len() as u64);
        assert!(
            chi2 < CHI2_DF63_BOUND,
            "{label}: chi^2 = {chi2:.1} (bound {CHI2_DF63_BOUND})"
        );
    }
}

#[test]
fn routing_is_deterministic_and_seed_dependent() {
    const SHARDS: usize = 64;
    for key in (0..10_000u64).step_by(97) {
        assert_eq!(shard_of(key, 42, SHARDS), shard_of(key, 42, SHARDS));
    }
    // Changing the seed must re-route a substantial fraction (≈ 63/64)
    // of keys: routing is a function of the seed, not just the key.
    let moved = (0..10_000u64)
        .filter(|&k| shard_of(k, 42, SHARDS) != shard_of(k, 43, SHARDS))
        .count();
    assert!(moved > 9_000, "seed change moved only {moved}/10000 keys");
}

#[test]
fn store_occupancy_matches_direct_routing() {
    // End-to-end: inserting through the Store lands each key on the
    // shard `shard_of` predicts, and the per-shard key counts the
    // stats report reproduce the routing histogram.
    let cfg = StoreConfig::new(16, 4, 2);
    let seed = cfg.seed;
    let store = KvStore::new(cfg);
    let mut expected = [0usize; 16];
    for key in 0..2_000u64 {
        store.put(0, key, key).unwrap();
        expected[shard_of(key, seed, 16)] += 1;
    }
    let stats = store.stats();
    for (shard, stat) in stats.iter().enumerate() {
        assert_eq!(
            stat.keys, expected[shard],
            "shard {shard} key count diverges from routing"
        );
    }
    assert_eq!(store.len(), 2_000);
}

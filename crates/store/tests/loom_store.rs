//! Model checking of the store's crash story, driven by the vendored
//! `kex-loom` checker.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p kex-store --test loom_store --release
//! ```
//!
//! Under `cfg(loom)` the `kex_util::sync` facade swaps every atomic the
//! store (and the k-assignment machinery beneath it) touches for the
//! model-checked versions, so the exact production composition —
//! route → admission gate → k-exclusion → renaming → object →
//! journal — is explored. The headline model is the ISSUE-8 one: two
//! processes race `StoreWrite::put` on the *same key* while one of them
//! crash-fails inside its critical section.

#![cfg(loom)]

use std::sync::Arc;

use kex_loom::{thread, Builder};
use kex_store::{KvStore, OpState, StoreConfig, StoreRead, StoreWrite};

fn tiny_store() -> KvStore {
    // One shard keeps the model honest (both writers *must* collide on
    // the same wrapper) and small: n = 3, k = 2 — one crash survivable.
    let mut cfg = StoreConfig::new(1, 3, 2);
    cfg.capacity = 4;
    cfg.journal_depth = 2;
    KvStore::new(cfg)
}

const KEY: u64 = 42;

/// Two processes race a put on the same key; process 0 crashes in its
/// critical section mid-put (slot, name, and lane consumed forever).
/// Every schedule must end with: the survivor's put completed, the
/// value intact (one of the two written values — the register may
/// linearize either last), exactly one lane attributing the crash, and
/// the store still answering reads.
#[test]
fn racing_same_key_writes_with_crash_in_cs() {
    let stats = Builder::new().max_preemptions(2).check(move || {
        let store = Arc::new(tiny_store());

        let crasher = Arc::clone(&store);
        let t0 = thread::spawn(move || {
            // Crash-in-CS: journals the op, applies it, dies before
            // commit — the paper's failure model via a leaked guard.
            crasher.crash_in_cs(0, KEY, 100);
        });

        let writer = Arc::clone(&store);
        let t1 = thread::spawn(move || {
            // k = 2: the survivor is admitted even while the crasher
            // holds (and never releases) the other slot.
            writer.put(1, KEY, 200).unwrap();
            let seen = writer.get(1, KEY).unwrap();
            assert!(seen == 100 || seen == 200, "torn or lost value: {seen}");
        });

        t0.join().unwrap();
        t1.join().unwrap();

        // Post-mortem, from a third process (the main thread).
        let value = store.get(2, KEY).unwrap();
        assert!(value == 100 || value == 200, "torn value {value}");

        let stats = store.stats();
        assert_eq!(stats[0].in_flight_lanes, 1, "crash not attributed");
        assert_eq!(stats[0].occupancy, 1, "crashed ticket not retained");

        // The dead lane names exactly the interrupted operation.
        let journal = store.shard(0).journal();
        let dead: Vec<_> = (0..2).filter_map(|name| journal.in_flight(name)).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!((dead[0].key, dead[0].value), (KEY, 100));
        assert_eq!(dead[0].state, OpState::InFlight);

        // And the survivor's lane committed its put.
        let committed: u64 = (0..2).map(|name| journal.committed(name)).sum();
        assert!(committed >= 1, "survivor's commit lost");
    });
    eprintln!(
        "store crash race: {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

/// The non-blocking surface under a *fully* dead shard: both slots
/// crash-consumed, so `try_put`/`try_get` must shed (return `None`)
/// on every schedule rather than admit or hang.
#[test]
fn try_ops_shed_when_every_slot_is_crash_consumed() {
    let stats = Builder::new().max_preemptions(2).check(move || {
        let store = Arc::new(tiny_store());

        let c0 = Arc::clone(&store);
        let t0 = thread::spawn(move || c0.crash_in_cs(0, KEY, 1));
        let c1 = Arc::clone(&store);
        let t1 = thread::spawn(move || c1.crash_in_cs(1, KEY, 2));
        t0.join().unwrap();
        t1.join().unwrap();

        // k = 2 slots crash-consumed: shedding is permanent.
        assert_eq!(store.try_put(2, KEY, 3), None);
        assert_eq!(store.try_get(2, KEY), None);
        assert_eq!(store.stats()[0].in_flight_lanes, 2);
    });
    eprintln!(
        "store full-crash shed: {} executions, {} schedule points",
        stats.executions, stats.schedule_points
    );
}

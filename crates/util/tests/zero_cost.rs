//! Proof that the disabled observability backend is zero-cost.
//!
//! The strongest possible "no fields, no ops" argument is definitional:
//! with `--features obs` off (and outside loom), the facade's atomic
//! re-exports *are* `std::sync::atomic` — the same `TypeId`, therefore
//! the same layout and the same codegen for every operation. There is
//! no wrapper to optimize away because there is no wrapper. The
//! `assign_home` hook is an empty `#[inline(always)]` function of a
//! generic reference, which the optimizer erases.
//!
//! With the feature on, the inverse is pinned: the instrumented types
//! are distinct, strictly larger (they carry the holder mask and DSM
//! home), and actually count — so the feature cannot silently decay
//! into a no-op either.

#![cfg(not(loom))]

use std::any::TypeId;
use std::mem::size_of;

use kex_util::sync;

#[cfg(not(feature = "obs"))]
#[test]
fn disabled_backend_is_exactly_std() {
    use std::mem::align_of;

    macro_rules! same_type {
        ($name:ident) => {
            assert_eq!(
                TypeId::of::<sync::atomic::$name>(),
                TypeId::of::<std::sync::atomic::$name>(),
                concat!(
                    "facade ",
                    stringify!($name),
                    " must BE std's type when obs is disabled"
                ),
            );
            assert_eq!(
                size_of::<sync::atomic::$name>(),
                size_of::<std::sync::atomic::$name>(),
            );
            assert_eq!(
                align_of::<sync::atomic::$name>(),
                align_of::<std::sync::atomic::$name>(),
            );
        };
    }
    same_type!(AtomicBool);
    same_type!(AtomicU8);
    same_type!(AtomicU32);
    same_type!(AtomicU64);
    same_type!(AtomicI64);
    same_type!(AtomicUsize);
    same_type!(AtomicIsize);
    assert_eq!(
        TypeId::of::<sync::atomic::AtomicPtr<u8>>(),
        TypeId::of::<std::sync::atomic::AtomicPtr<u8>>(),
    );
    assert_eq!(
        size_of::<sync::atomic::AtomicPtr<u8>>(),
        size_of::<std::sync::atomic::AtomicPtr<u8>>(),
    );
}

#[cfg(not(feature = "obs"))]
#[test]
fn disabled_spin_hint_is_std() {
    // The shim path exists and costs a plain `std::hint::spin_loop`;
    // nothing to count, nothing counted.
    sync::hint::spin_loop();
    let x = sync::atomic::AtomicUsize::new(0);
    sync::assign_home(&x, 3);
    assert_eq!(x.load(sync::atomic::Ordering::SeqCst), 0);
}

#[cfg(feature = "obs")]
#[test]
fn instrumented_backend_is_distinct_and_counts() {
    use sync::atomic::Ordering::SeqCst;

    assert_ne!(
        TypeId::of::<sync::atomic::AtomicUsize>(),
        TypeId::of::<std::sync::atomic::AtomicUsize>(),
        "obs backend must not alias std's type",
    );
    assert!(
        size_of::<sync::atomic::AtomicUsize>() > size_of::<std::sync::atomic::AtomicUsize>(),
        "instrumented atomics carry cost-model metadata",
    );

    let before = kex_obs::snapshot()
        .section_totals(kex_obs::Section::Entry)
        .rmws;
    let x = sync::atomic::AtomicUsize::new(0);
    sync::assign_home(&x, 0);
    {
        let _span = kex_obs::span(kex_obs::Section::Entry, 0);
        x.fetch_add(1, SeqCst);
        sync::hint::spin_loop();
    }
    let snap = kex_obs::snapshot();
    let entry = snap.section_totals(kex_obs::Section::Entry);
    assert!(entry.rmws > before, "instrumented RMW was counted");
    assert!(entry.spins >= 1, "instrumented spin hint was counted");
}

//! Backend-swappable synchronization facade.
//!
//! Everything the native algorithms synchronize through lives behind
//! this module: [`Mutex`]/[`Condvar`], the [`atomic`] types, the
//! [`hint::spin_loop`] shim, and [`thread`]. Three backends exist, with
//! a strict precedence:
//!
//! 1. **loom** — building with `RUSTFLAGS="--cfg loom"` swaps in the
//!    `kex-loom` model-checked replacements so the *same* algorithm
//!    code runs under exhaustive schedule exploration
//!    (`crates/core/tests/loom_models.rs`). This backend always wins.
//! 2. **obs** — building with `--features obs` (and not loom) swaps
//!    [`atomic`] and [`hint`] to the `kex-obs` instrumented
//!    implementations: every operation is counted per process and
//!    section, with estimated remote references under the CC and DSM
//!    cost models (see `docs/OBSERVABILITY.md`). `Mutex`/`Condvar`/
//!    [`thread`] stay std-backed.
//! 3. **std** — the default. The re-exports *are* the `std` types
//!    (same `TypeId`, same layout, zero added fields or operations);
//!    `crates/util/tests/zero_cost.rs` pins this down.
//!
//! Rules for code in `kex-core`'s native layer:
//!
//! * import atomics from `kex_util::sync::atomic`, never
//!   `std::sync::atomic`;
//! * busy-wait loops call [`hint::spin_loop`] (usually via
//!   [`crate::Backoff`]), never `std::hint::spin_loop` — under loom the
//!   shim is the yield point that makes spin loops explorable, and
//!   under obs it is where spin iterations are counted;
//! * per-process variables (spin flags, queue nodes, handshake words)
//!   are declared with [`assign_home`] at construction so the DSM cost
//!   model knows their owner; the call is a no-op except under obs;
//! * there is no `Condvar::wait_timeout`; [`Condvar::wait_for`] exists
//!   but under loom it never times out, so algorithms must not rely on
//!   timeouts for *progress* (a good constraint: the paper's protocols
//!   are timeout-free).
//!
//! The std `Mutex`/`Condvar` are non-poisoning with a
//! `parking_lot`-style API; the native algorithms use a mutex only to
//! *model* the paper's multi-word atomic statements, where poisoning is
//! noise (a panicking holder should not turn every later test failure
//! into `PoisonError`).

#[cfg(loom)]
pub use kex_loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std_impl::{Condvar, Mutex, MutexGuard};

/// Atomic types: `std::sync::atomic`, model-checked under `cfg(loom)`,
/// or instrumented under `--features obs`.
pub mod atomic {
    #[cfg(loom)]
    pub use kex_loom::atomic::{
        AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
    #[cfg(all(not(loom), feature = "obs"))]
    pub use kex_obs::atomic::{
        AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
    #[cfg(all(not(loom), not(feature = "obs")))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
}

/// Spin-hint shim; under `cfg(loom)` a spinning thread is demoted until
/// another thread writes (which makes busy-wait loops finite in the
/// model), and under `--features obs` each call is counted against the
/// current `(process, section)` span.
pub mod hint {
    #[cfg(loom)]
    pub use kex_loom::hint::spin_loop;
    #[cfg(all(not(loom), feature = "obs"))]
    pub use kex_obs::hint::spin_loop;
    #[cfg(all(not(loom), not(feature = "obs")))]
    pub use std::hint::spin_loop;
}

/// Declares `var` (a facade atomic) to be *local to* process `home`
/// under the DSM cost model.
///
/// The paper's DSM accounting assigns every shared variable to exactly
/// one processor's memory partition; constructors of the native
/// algorithms call this on each per-process slot. Only the obs backend
/// does anything with the declaration — under std and loom it
/// compiles to nothing.
#[cfg(all(not(loom), feature = "obs"))]
pub use kex_obs::atomic::assign_home;

/// No-op DSM home declaration (std and loom backends); see the obs
/// backend's documentation for what it declares when active.
#[cfg(any(loom, not(feature = "obs")))]
#[inline(always)]
pub fn assign_home<T: ?Sized>(_var: &T, _home: usize) {}

/// Thread spawn/join/yield, `std::thread` or model-checked.
pub mod thread {
    #[cfg(loom)]
    pub use kex_loom::thread::{spawn, yield_now, JoinHandle};
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(not(loom))]
mod std_impl {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::{self, PoisonError};
    use std::time::Duration;

    /// A mutual-exclusion lock that does not poison on panic.
    pub struct Mutex<T: ?Sized> {
        inner: sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex::lock`]; unlocks on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        inner: sync::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        /// A mutex holding `value`.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking until it is available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Attempts to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard { inner: g }),
                Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: p.into_inner(),
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// A condition variable paired with [`Mutex`].
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: sync::Condvar,
    }

    impl Condvar {
        /// A fresh condition variable.
        pub const fn new() -> Self {
            Condvar {
                inner: sync::Condvar::new(),
            }
        }

        /// Atomically releases the guard's lock and waits; re-acquires
        /// before returning. Spurious wakeups are possible, as usual.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            replace_guard(&mut guard.inner, |g| {
                self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
            });
        }

        /// Like [`Condvar::wait`] with a timeout; returns `true` if the
        /// wait timed out. Under `cfg(loom)` this never times out — see
        /// the module docs.
        pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
            let mut timed_out = false;
            replace_guard(&mut guard.inner, |g| {
                let (g, r) = self
                    .inner
                    .wait_timeout(g, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                timed_out = r.timed_out();
                g
            });
            timed_out
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// Runs `f` on an owned `std` guard and stores the guard `f` returns.
    ///
    /// `Condvar::wait` consumes the guard by value while our public API
    /// (matching `parking_lot`) takes `&mut`; the swap through `f` bridges
    /// the two. If `f` unwinds the process aborts — preferable to UB.
    fn replace_guard<'a, T: ?Sized>(
        slot: &mut sync::MutexGuard<'a, T>,
        f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
    ) {
        // SAFETY: `slot` is forgotten immediately after the read, so the
        // guard is never duplicated; `abort_on_unwind` guarantees we never
        // unwind past the moment where `slot` would dangle.
        unsafe {
            let guard = std::ptr::read(slot);
            let bomb = AbortOnDrop;
            let new_guard = f(guard);
            std::mem::forget(bomb);
            std::ptr::write(slot, new_guard);
        }
    }

    struct AbortOnDrop;

    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a holder panicked");
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn facade_paths_resolve() {
        use super::atomic::{AtomicUsize, Ordering::SeqCst};
        let x = AtomicUsize::new(1);
        assert_eq!(x.fetch_add(1, SeqCst), 1);
        super::hint::spin_loop();
        super::thread::spawn(|| {}).join().unwrap();
    }
}

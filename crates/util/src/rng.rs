//! A small deterministic pseudo-random number generator.
//!
//! The schedulers and randomized tests only need reproducible,
//! well-mixed 64-bit streams — not cryptographic strength. This is
//! `splitmix64` (Steele, Lea & Flood's `SplittableRandom` finalizer),
//! which passes BigCrush when used as a plain sequential generator and
//! has the convenient property that *any* seed, including 0, works.

use std::ops::Range;

/// Deterministic 64-bit PRNG (splitmix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `range` (multiply-shift; bias is below
    /// `len / 2^64`, irrelevant at scheduler scales).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        let len = range.end.checked_sub(range.start).expect("empty range");
        assert!(len > 0, "cannot sample from an empty range");
        let hi = ((self.next_u64() as u128 * len as u128) >> 64) as usize;
        range.start + hi
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        // 53 uniform mantissa bits in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SmallRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = r.gen_range(10..15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(1).gen_bool(1.0));
    }
}

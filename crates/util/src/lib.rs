//! # kex-util — dependency-free concurrency utilities
//!
//! The workspace builds offline, so the handful of external helpers the
//! native algorithms and schedulers need are provided here instead:
//!
//! * [`CachePadded`] — align a value to a cache-line-sized boundary so
//!   per-process slots never share a line (false sharing would corrupt
//!   the RMR story the native benchmarks tell).
//! * [`Backoff`] — bounded exponential spin/yield backoff for busy-wait
//!   loops, routed through the [`sync::hint`] shim so the same loops are
//!   explorable under the loom model checker.
//! * [`sync`] — the backend-swappable synchronization facade:
//!   non-poisoning [`sync::Mutex`] / [`sync::Condvar`],
//!   [`sync::atomic`], [`sync::hint`], and [`sync::thread`];
//!   `std`-backed normally, `kex-loom`-backed under
//!   `RUSTFLAGS="--cfg loom"`, `kex-obs`-instrumented under
//!   `--features obs` (loom wins when both apply).
//! * [`rng`] — a small deterministic PRNG ([`rng::SmallRng`]) for
//!   reproducible randomized schedules and tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rng;
pub mod sync;

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache-line boundary.
///
/// 128 bytes covers the common cases: 64-byte lines with adjacent-line
/// prefetching on x86, and 128-byte lines on several ARM parts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache-line boundary.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Exponential backoff for spin loops: spin for a while, then start
/// yielding the thread to the OS scheduler.
#[derive(Debug)]
pub struct Backoff {
    step: Cell<u32>,
}

/// `2^SPIN_LIMIT` busy-loop iterations before yielding takes over.
const SPIN_LIMIT: u32 = 6;
/// Backoff stops growing past `2^YIELD_LIMIT` (the yield phase).
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// A fresh backoff in the spinning phase.
    pub const fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Resets to the spinning phase.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off, spinning at first and yielding to the OS once the
    /// spin budget is exhausted. Call this in a loop that waits for
    /// another thread's progress.
    ///
    /// Under `cfg(loom)` every call is a single [`sync::hint::spin_loop`]
    /// yield point: the model has no notion of wasted cycles, and one
    /// hint per loop iteration is exactly the granularity the checker's
    /// spin-pruning reduction wants.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            #[cfg(not(loom))]
            for _ in 0..1u32 << step {
                crate::sync::hint::spin_loop();
            }
            #[cfg(loom)]
            crate::sync::hint::spin_loop();
        } else {
            crate::sync::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Backs off without ever yielding (pure spinning); for loops where
    /// the wait is known to be short.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        #[cfg(not(loom))]
        for _ in 0..1u32 << step {
            crate::sync::hint::spin_loop();
        }
        #[cfg(loom)]
        crate::sync::hint::spin_loop();
        if step <= SPIN_LIMIT {
            self.step.set(step + 1);
        }
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let x = CachePadded::new(7u64);
        assert_eq!(*x, 7);
        assert_eq!(x.into_inner(), 7);
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let boxed: Vec<CachePadded<u8>> = vec![CachePadded::new(1), CachePadded::new(2)];
        let a = &*boxed[0] as *const u8 as usize;
        let b = &*boxed[1] as *const u8 as usize;
        assert!(b - a >= 128, "adjacent elements share a cache line");
    }

    #[test]
    fn backoff_progresses_and_resets() {
        let b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert_eq!(b.step.get(), YIELD_LIMIT + 1);
        b.reset();
        assert_eq!(b.step.get(), 0);
        b.spin();
        assert_eq!(b.step.get(), 1);
    }
}

//! # kex-util — dependency-free concurrency utilities
//!
//! The workspace builds offline, so the handful of external helpers the
//! native algorithms and schedulers need are provided here instead:
//!
//! * [`CachePadded`] — align a value to a cache-line-sized boundary so
//!   per-process slots never share a line (false sharing would corrupt
//!   the RMR story the native benchmarks tell).
//! * [`Backoff`] — bounded exponential spin/yield backoff for busy-wait
//!   loops, routed through the [`sync::hint`] shim so the same loops are
//!   explorable under the loom model checker; thresholds are tunable via
//!   [`BackoffCfg`] / [`set_global_backoff`] (profiled by the
//!   `kex-bench contend --backoff` sweep).
//! * [`sync`] — the backend-swappable synchronization facade:
//!   non-poisoning [`sync::Mutex`] / [`sync::Condvar`],
//!   [`sync::atomic`], [`sync::hint`], and [`sync::thread`];
//!   `std`-backed normally, `kex-loom`-backed under
//!   `RUSTFLAGS="--cfg loom"`, `kex-obs`-instrumented under
//!   `--features obs` (loom wins when both apply).
//! * [`rng`] — a small deterministic PRNG ([`rng::SmallRng`]) for
//!   reproducible randomized schedules and tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rng;
pub mod sync;

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache-line boundary.
///
/// 128 bytes covers the common cases: 64-byte lines with adjacent-line
/// prefetching on x86, and 128-byte lines on several ARM parts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache-line boundary.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Tunable [`Backoff`] thresholds: spin `2^step` hints per snooze while
/// `step <= spin_limit`, yield to the OS past that, and stop growing the
/// step at `yield_limit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffCfg {
    /// Last step of the busy-spin phase (`2^spin_limit` hints).
    pub spin_limit: u32,
    /// Step at which backoff growth stops (the steady yield phase).
    pub yield_limit: u32,
}

impl BackoffCfg {
    /// Contention-profiled defaults, chosen by the `contend --backoff`
    /// sweep (see `EXPERIMENTS.md` E12 and `BENCH_contend.json`'s
    /// `backoff_sweep` section). On an oversubscribed host every extra
    /// spin doubling is time the descheduled lock holder cannot use:
    /// the sweep shows throughput decaying roughly an order of magnitude
    /// between `spin_limit <= 2` and `spin_limit >= 8` on the contended
    /// paths (fig2/fast_path/mcs at T=8). The short spin phase is kept
    /// (rather than `{0, 4}`) so a holder that *is* running on another
    /// core can still be caught without paying a `yield` syscall.
    pub const DEFAULT: BackoffCfg = BackoffCfg {
        spin_limit: 2,
        yield_limit: 6,
    };

    /// Clamp to sane shift ranges (`spin_limit <= yield_limit <= 16`).
    fn clamped(self) -> Self {
        let spin_limit = self.spin_limit.min(16);
        BackoffCfg {
            spin_limit,
            yield_limit: self.yield_limit.clamp(spin_limit, 16),
        }
    }
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg::DEFAULT
    }
}

// The process-wide configuration consulted by `Backoff::new`. Plain std
// atomics on purpose: this is tuning metadata written before the threads
// under test start, not protocol state — routing it through the facade
// would only add schedule points for loom to explore. The loom build
// compiles it out entirely and always uses `BackoffCfg::DEFAULT`.
#[cfg(not(loom))]
static GLOBAL_SPIN_LIMIT: std::sync::atomic::AtomicU32 =
    std::sync::atomic::AtomicU32::new(BackoffCfg::DEFAULT.spin_limit);
#[cfg(not(loom))]
static GLOBAL_YIELD_LIMIT: std::sync::atomic::AtomicU32 =
    std::sync::atomic::AtomicU32::new(BackoffCfg::DEFAULT.yield_limit);

/// Set the process-wide [`BackoffCfg`] picked up by every subsequent
/// [`Backoff::new`]. Out-of-range values are clamped. Intended for
/// benchmark harnesses (`kex-bench contend --backoff` sweeps it);
/// calling it mid-protocol is harmless but only affects new `Backoff`s.
#[cfg(not(loom))]
pub fn set_global_backoff(cfg: BackoffCfg) {
    let cfg = cfg.clamped();
    GLOBAL_SPIN_LIMIT.store(cfg.spin_limit, std::sync::atomic::Ordering::Relaxed);
    GLOBAL_YIELD_LIMIT.store(cfg.yield_limit, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide [`BackoffCfg`].
#[cfg(not(loom))]
pub fn global_backoff() -> BackoffCfg {
    BackoffCfg {
        spin_limit: GLOBAL_SPIN_LIMIT.load(std::sync::atomic::Ordering::Relaxed),
        yield_limit: GLOBAL_YIELD_LIMIT.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// Exponential backoff for spin loops: spin for a while, then start
/// yielding the thread to the OS scheduler.
#[derive(Debug)]
pub struct Backoff {
    step: Cell<u32>,
    cfg: BackoffCfg,
}

impl Backoff {
    /// A fresh backoff in the spinning phase, using the process-wide
    /// [`BackoffCfg`] (always [`BackoffCfg::DEFAULT`] under `cfg(loom)`,
    /// where thresholds are invisible to the model anyway).
    pub fn new() -> Self {
        #[cfg(not(loom))]
        let cfg = global_backoff();
        #[cfg(loom)]
        let cfg = BackoffCfg::DEFAULT;
        Backoff::with_cfg(cfg)
    }

    /// A fresh backoff with explicit thresholds (clamped to sane ranges).
    pub fn with_cfg(cfg: BackoffCfg) -> Self {
        Backoff {
            step: Cell::new(0),
            cfg: cfg.clamped(),
        }
    }

    /// Resets to the spinning phase.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off, spinning at first and yielding to the OS once the
    /// spin budget is exhausted. Call this in a loop that waits for
    /// another thread's progress.
    ///
    /// Under `cfg(loom)` every call is a single [`sync::hint::spin_loop`]
    /// yield point: the model has no notion of wasted cycles, and one
    /// hint per loop iteration is exactly the granularity the checker's
    /// spin-pruning reduction wants.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= self.cfg.spin_limit {
            #[cfg(not(loom))]
            for _ in 0..1u32 << step {
                crate::sync::hint::spin_loop();
            }
            #[cfg(loom)]
            crate::sync::hint::spin_loop();
        } else {
            crate::sync::thread::yield_now();
        }
        if step <= self.cfg.yield_limit {
            self.step.set(step + 1);
        }
    }

    /// Backs off without ever yielding (pure spinning); for loops where
    /// the wait is known to be short.
    pub fn spin(&self) {
        let step = self.step.get().min(self.cfg.spin_limit);
        #[cfg(not(loom))]
        for _ in 0..1u32 << step {
            crate::sync::hint::spin_loop();
        }
        #[cfg(loom)]
        crate::sync::hint::spin_loop();
        if step <= self.cfg.spin_limit {
            self.step.set(step + 1);
        }
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let x = CachePadded::new(7u64);
        assert_eq!(*x, 7);
        assert_eq!(x.into_inner(), 7);
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let boxed: Vec<CachePadded<u8>> = vec![CachePadded::new(1), CachePadded::new(2)];
        let a = &*boxed[0] as *const u8 as usize;
        let b = &*boxed[1] as *const u8 as usize;
        assert!(b - a >= 128, "adjacent elements share a cache line");
    }

    #[test]
    fn backoff_progresses_and_resets() {
        let b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert_eq!(b.step.get(), BackoffCfg::DEFAULT.yield_limit + 1);
        b.reset();
        assert_eq!(b.step.get(), 0);
        b.spin();
        assert_eq!(b.step.get(), 1);
    }

    #[test]
    fn backoff_cfg_clamps_and_applies() {
        let b = Backoff::with_cfg(BackoffCfg {
            spin_limit: 2,
            yield_limit: 3,
        });
        for _ in 0..10 {
            b.snooze();
        }
        assert_eq!(b.step.get(), 4, "growth stops at yield_limit + 1");

        let wild = BackoffCfg {
            spin_limit: 99,
            yield_limit: 0,
        }
        .clamped();
        assert_eq!(wild.spin_limit, 16);
        assert!(wild.yield_limit >= wild.spin_limit);
    }

    #[test]
    fn global_backoff_roundtrip() {
        // Note: process-global; keep the default restored for other tests.
        let before = global_backoff();
        set_global_backoff(BackoffCfg {
            spin_limit: 1,
            yield_limit: 4,
        });
        assert_eq!(
            global_backoff(),
            BackoffCfg {
                spin_limit: 1,
                yield_limit: 4
            }
        );
        let b = Backoff::new();
        assert_eq!(b.cfg.spin_limit, 1);
        set_global_backoff(before);
    }
}

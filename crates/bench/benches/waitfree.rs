//! E9b — wait-free object ablation: the cost spectrum of the payload
//! objects that go inside the resiliency wrapper, plus the full
//! wrapped stack.
//!
//! * `SlotCounter` (per-name cells) vs `FetchAddCounter` (one hot word)
//!   vs `Universal<SeqCounter>` (log replay): why the bounded name space
//!   that k-assignment provides matters — per-name slotting is only
//!   possible because names are dense in `0..k`.
//! * `Resilient<SlotCounter>` end to end: wrapper + payload.
//!
//! Run: `cargo bench -p kex-bench --bench waitfree`

use kex_bench::microbench::{BatchSize, BenchmarkId, Criterion, Throughput};

use kex_core::native::Resilient;
use kex_waitfree::seq::CounterOp;
use kex_waitfree::{CachedUniversal, FetchAddCounter, SlotCounter, Snapshot, Universal, WfQueue};

const K: usize = 4;

fn bench_counters_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_add_single_thread");
    let slot = SlotCounter::new(K);
    group.bench_function("slot_counter", |b| b.iter(|| slot.add(0, 1)));
    let fa = FetchAddCounter::new();
    group.bench_function("fetch_add_counter", |b| b.iter(|| fa.add(1)));
    let uni: Universal<kex_waitfree::seq::SeqCounter> = Universal::new(K);
    group.bench_function("universal_counter", |b| {
        b.iter(|| uni.apply(0, CounterOp::Add(1)))
    });
    group.finish();
}

fn bench_counters_contended(c: &mut Criterion) {
    let threads = K;
    let ops: u64 = 5_000;
    let mut group = c.benchmark_group("counter_add_contended");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops * threads as u64));

    group.bench_function(BenchmarkId::new("slot_counter", threads), |b| {
        b.iter(|| {
            let counter = SlotCounter::new(K);
            std::thread::scope(|s| {
                for me in 0..threads {
                    let counter = &counter;
                    s.spawn(move || {
                        for _ in 0..ops {
                            counter.add(me, 1);
                        }
                    });
                }
            });
            counter.read()
        })
    });

    group.bench_function(BenchmarkId::new("fetch_add_counter", threads), |b| {
        b.iter(|| {
            let counter = FetchAddCounter::new();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let counter = &counter;
                    s.spawn(move || {
                        for _ in 0..ops {
                            counter.add(1);
                        }
                    });
                }
            });
            counter.read()
        })
    });
    group.finish();
}

/// The replay-cost ablation: textbook log replay (O(history) per op) vs
/// the resume-cached construction (O(k) amortized), measured as total
/// time for a burst of ops on a fresh object of each size.
fn bench_universal_vs_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal_log_growth");
    group.sample_size(10);
    for ops in [200u64, 1_000, 4_000] {
        group.throughput(Throughput::Elements(ops));
        group.bench_with_input(BenchmarkId::new("textbook_replay", ops), &ops, |b, &ops| {
            b.iter(|| {
                let u: Universal<kex_waitfree::seq::SeqCounter> = Universal::new(K);
                for i in 0..ops {
                    u.apply((i % K as u64) as usize, CounterOp::Add(1));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("resume_cached", ops), &ops, |b, &ops| {
            b.iter(|| {
                let u: CachedUniversal<kex_waitfree::seq::SeqCounter> = CachedUniversal::new(K);
                for i in 0..ops {
                    u.apply((i % K as u64) as usize, CounterOp::Add(1));
                }
            })
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    let snap: Snapshot<u64> = Snapshot::new(K);
    for i in 0..K {
        snap.update(i, i as u64);
    }
    group.bench_function("scan_k4", |b| b.iter(|| snap.scan()));
    group.bench_function("update_k4", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            snap.update(0, i);
        })
    });
    group.finish();
}

fn bench_wrapped_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilient_end_to_end");
    let counter = Resilient::new(8, K, SlotCounter::new(K));
    group.bench_function("resilient_counter_add", |b| {
        b.iter(|| counter.with(0, |c, name| c.add(name, 1)));
    });
    // The universal-construction queue replays its log per operation, so
    // measure a fixed-size burst on a fresh object per iteration (the
    // steady-state cost of a long-lived log is the construction's known
    // O(history) behaviour, not what we want to track here).
    group.bench_function("resilient_universal_queue_100_ops", |b| {
        b.iter_batched(
            || Resilient::new(8, K, WfQueue::<u64>::new(K)),
            |queue| {
                for i in 0..50 {
                    queue.with(0, |q, name| q.enqueue(name, i));
                    queue.with(0, |q, name| q.dequeue(name));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_counters_single_thread(&mut c);
    bench_counters_contended(&mut c);
    bench_universal_vs_cached(&mut c);
    bench_snapshot(&mut c);
    bench_wrapped_stack(&mut c);
}

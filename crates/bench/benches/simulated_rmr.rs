//! Bench over the *simulator*: time to run a fixed workload to
//! quiescence per algorithm. This is a performance benchmark of the
//! reproduction infrastructure itself (so regressions in the experiment
//! harness are caught), and doubles as a determinism check: each
//! iteration re-runs an identical seeded schedule.
//!
//! Run: `cargo bench -p kex-bench --bench simulated_rmr`

use kex_bench::microbench::{BenchmarkId, Criterion};

use kex_core::sim::Algorithm;
use kex_sim::prelude::*;

fn run_workload(algo: Algorithm, n: usize, k: usize) -> u64 {
    let proto = algo.build(n, k, 4096);
    let mut sim = Sim::new(proto, algo.model())
        .cycles(10)
        .scheduler(RandomSched::new(42))
        .timing(Timing {
            ncs_steps: 1,
            cs_steps: 2,
        })
        .build();
    let report = sim.run(100_000_000);
    report.assert_safe();
    assert_eq!(report.stop, StopReason::Quiescent);
    report.stats.worst_pair()
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_workload");
    group.sample_size(10);
    for algo in [
        Algorithm::CcChain,
        Algorithm::CcTree,
        Algorithm::CcFastPath,
        Algorithm::DsmChain,
        Algorithm::AssignmentCc,
    ] {
        group.bench_function(BenchmarkId::from_parameter(algo.label()), |b| {
            b.iter(|| run_workload(algo, 12, 3));
        });
    }
    group.finish();
}

fn bench_model_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_checker");
    group.sample_size(10);
    group.bench_function("explore_cc_chain_3_1", |b| {
        b.iter(|| {
            let report = kex_sim::explore::explore(
                Algorithm::CcChain.build(3, 1, 0),
                &kex_sim::explore::ExploreConfig::default(),
            );
            assert!(report.is_clean());
            report.states
        });
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_simulator(&mut c);
    bench_model_checker(&mut c);
}

//! E9 — native wall-clock scalability: throughput and latency of every
//! native k-exclusion algorithm vs. the OS-semaphore baseline, across
//! thread counts.
//!
//! Absolute numbers are host-specific; the *shape* to compare with the
//! paper's scalability argument: the local-spin algorithms' per-
//! acquisition cost stays flat (or grows slowly) with thread count, and
//! the fast-path variants win at low contention.
//!
//! Run: `cargo bench -p kex-bench --bench native`

use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kex_bench::microbench::{BenchmarkId, Criterion, Throughput};

use kex_core::native::{
    CcChainKex, DsmChainKex, FastPathKex, GracefulKex, KAssignment, McsLock, QueueKex, RawKex,
    SemaphoreKex, TreeKex, YangAndersonLock,
};

const K: usize = 4;

fn algorithms(n: usize) -> Vec<(&'static str, Arc<dyn RawKex>)> {
    let k = K.min(n - 1).max(1);
    vec![
        (
            "cc-chain",
            Arc::new(CcChainKex::new(n, k)) as Arc<dyn RawKex>,
        ),
        ("dsm-chain", Arc::new(DsmChainKex::new(n, k))),
        ("cc-tree", Arc::new(TreeKex::cc(n, k))),
        ("cc-fastpath", Arc::new(FastPathKex::new(n, k))),
        ("dsm-fastpath", Arc::new(FastPathKex::new_dsm(n, k))),
        ("cc-graceful", Arc::new(GracefulKex::new(n, k))),
        ("fig1-queue", Arc::new(QueueKex::new(n, k))),
        ("semaphore", Arc::new(SemaphoreKex::new(n, k))),
    ]
}

/// Total wall time for `threads` threads to complete `ops` acquisitions
/// each (with a tiny critical section).
fn run_once(kex: &Arc<dyn RawKex>, threads: usize, ops: u64) -> Duration {
    let gate = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..threads {
            let kex = Arc::clone(kex);
            let gate = Arc::clone(&gate);
            s.spawn(move || {
                gate.fetch_add(1, SeqCst);
                while gate.load(SeqCst) < threads {
                    std::hint::spin_loop();
                }
                for _ in 0..ops {
                    kex.acquire(p);
                    std::hint::spin_loop();
                    kex.release(p);
                }
            });
        }
    });
    start.elapsed()
}

/// Uncontended single-thread acquisition latency.
fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_acquire_release");
    for (name, kex) in algorithms(16) {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                kex.acquire(0);
                kex.release(0);
            });
        });
    }
    group.finish();
}

/// Throughput at full contention across thread counts.
fn bench_contended(c: &mut Criterion) {
    let ops: u64 = 2_000;
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(16);
    let mut group = c.benchmark_group("contended_throughput");
    group.sample_size(10);
    let mut thread_counts = vec![2usize, 4, 8];
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }
    for threads in thread_counts {
        if threads > max_threads {
            continue;
        }
        for (name, kex) in algorithms(threads.max(K + 1)) {
            group.throughput(Throughput::Elements(ops * threads as u64));
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += run_once(&kex, threads, ops);
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

/// k-assignment (kex + renaming) vs bare kex overhead.
fn bench_assignment(c: &mut Criterion) {
    let n = 8;
    let mut group = c.benchmark_group("assignment_overhead");
    let bare = FastPathKex::new(n, K);
    group.bench_function("fastpath_bare", |b| {
        b.iter(|| {
            bare.acquire(0);
            bare.release(0);
        });
    });
    let assign = KAssignment::new(n, K);
    group.bench_function("fastpath_with_renaming", |b| {
        b.iter(|| {
            let g = assign.enter(0);
            std::hint::black_box(g.name());
        });
    });
    group.finish();
}

/// §5's k = 1 comparison: the paper's (N, 1) instances vs the MCS queue
/// lock, at full contention.
fn bench_k1_vs_mcs(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let ops: u64 = 2_000;
    let algos: Vec<(&'static str, Arc<dyn RawKex>)> = vec![
        ("mcs", Arc::new(McsLock::new(threads)) as Arc<dyn RawKex>),
        ("yang-anderson", Arc::new(YangAndersonLock::new(threads))),
        ("cc-chain-k1", Arc::new(CcChainKex::new(threads, 1))),
        ("cc-tree-k1", Arc::new(TreeKex::cc(threads, 1))),
        ("cc-fastpath-k1", Arc::new(FastPathKex::new(threads, 1))),
    ];
    let mut group = c.benchmark_group("k1_vs_mcs");
    group.sample_size(10);
    for (name, kex) in algos {
        group.throughput(Throughput::Elements(ops * threads as u64));
        group.bench_function(BenchmarkId::new(name, threads), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_once(&kex, threads, ops);
                }
                total
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_uncontended(&mut c);
    bench_contended(&mut c);
    bench_assignment(&mut c);
    bench_k1_vs_mcs(&mut c);
}

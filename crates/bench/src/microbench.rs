//! A minimal wall-clock micro-benchmark runner with a criterion-shaped
//! API, so the `benches/` files read like standard Rust benchmarks
//! while depending on nothing outside the workspace.
//!
//! Measurement model: each `bench_function` first calibrates an
//! iteration count so one sample takes at least `TARGET_SAMPLE` (10 ms) of
//! wall time, then takes `sample_size` samples and reports the median
//! ns/iteration (plus elements/second when a [`Throughput`] is set).
//! No statistics beyond the median are attempted — these benches chart
//! *shapes* (scaling curves), not microsecond-exact deltas.

use std::fmt;
use std::time::{Duration, Instant};

/// Minimum wall time per sample after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Top-level runner; hands out named benchmark groups.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// A fresh runner.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; every batch is one routine call here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Routine input is cheap to construct.
    SmallInput,
}

/// A display-friendly benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of benchmarks sharing a prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares the work done per iteration for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            mode: Mode::Calibrate,
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow iters until one sample is long enough.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
            };
            b.iters = (b.iters * grow.clamp(2, 16)).min(1 << 30);
        }
        b.mode = Mode::Measure;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples.sort_by(|a, z| a.total_cmp(z));
        let median = samples[samples.len() / 2];
        let mut line = format!("{}/{id}: {median:.1} ns/iter", self.name);
        if let Some(Throughput::Elements(elems)) = self.throughput {
            let per_sec = elems as f64 * 1e9 / median;
            line.push_str(&format!(" ({per_sec:.0} elem/s)"));
        }
        println!("{line}");
    }

    /// Runs one benchmark that also receives an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (purely cosmetic here).
    pub fn finish(self) {}
}

#[derive(Debug, PartialEq)]
enum Mode {
    Calibrate,
    Measure,
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the routine time itself: `routine(iters)` must return the
    /// wall time spent on `iters` iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_trivial_bench_without_panicking() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        let mut hits = 0u64;
        g.bench_function("noop", |b| b.iter(|| hits += 1));
        g.bench_with_input(BenchmarkId::new("id", 7), &7, |b, &x| {
            b.iter(|| x * 2);
        });
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::spin_loop();
                }
                t.elapsed()
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(hits > 0);
    }
}

//! Skewed-workload generation for the `store` binary (EXPERIMENTS.md
//! E13): a Zipfian key sampler and per-thread deterministic RNG
//! streams.
//!
//! The sampler precomputes the normalized CDF of `P(rank) ∝ 1/rank^s`
//! once and answers each draw with a binary search — ~`log2(keys)`
//! float compares, cheap next to a store operation — so the generator
//! never becomes the bottleneck being measured. Key ids are the ranks
//! themselves: the store's seeded routing hash already de-correlates
//! rank from shard, so the hottest keys land on different shards
//! without an extra permutation (asserted by the routing tests in
//! `kex-store`).

use std::sync::atomic::{AtomicU64, Ordering};

use kex_util::CachePadded;

/// SplitMix64 finalizer (same mixer as `kex_util::rng::SmallRng`).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A Zipf(`s`) sampler over ranks `0..keys` via inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precompute the CDF for `keys` ranks with exponent `s >= 0`
    /// (`s = 0` degenerates to uniform).
    pub fn new(keys: usize, s: f64) -> Self {
        assert!(keys >= 1, "need at least one key");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(keys);
        let mut acc = 0.0f64;
        for rank in 1..=keys {
            acc += (rank as f64).powf(s).recip();
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn keys(&self) -> usize {
        self.cdf.len()
    }

    /// The rank (= key id) for a uniform draw `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> u64 {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1) as u64
    }

    /// Probability mass of rank 0 (the hottest key) — reported in the
    /// benchmark document so skew is self-describing.
    pub fn hottest_mass(&self) -> f64 {
        self.cdf[0]
    }
}

/// Deterministic per-thread RNG streams usable from a `Fn(usize) + Sync`
/// benchmark closure: one padded atomic SplitMix64 state per thread,
/// advanced with an uncontended relaxed `fetch_add` (each thread only
/// touches its own line).
#[derive(Debug)]
pub struct ThreadRngs {
    states: Vec<CachePadded<AtomicU64>>,
}

impl ThreadRngs {
    /// `threads` streams derived from `seed`.
    pub fn new(threads: usize, seed: u64) -> Self {
        ThreadRngs {
            states: (0..threads as u64)
                .map(|t| {
                    CachePadded::new(AtomicU64::new(mix64(
                        seed.wrapping_add(GOLDEN.wrapping_mul(t + 1)),
                    )))
                })
                .collect(),
        }
    }

    /// Next raw 64-bit draw for thread `t`.
    pub fn next(&self, t: usize) -> u64 {
        let z = self.states[t].fetch_add(GOLDEN, Ordering::Relaxed);
        mix64(z)
    }

    /// Next uniform draw in `[0, 1)` for thread `t`.
    pub fn uniform(&self, t: usize) -> f64 {
        (self.next(t) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut prev = 0.0;
        for rank in 0..1000 {
            let u = (rank as f64 + 0.5) / 1000.0;
            let _ = z.sample(u);
        }
        for &c in &z.cdf {
            assert!(c >= prev);
            prev = c;
        }
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let z = ZipfSampler::new(4096, 0.99);
        // Rank 0 of Zipf(0.99) over 4096 keys carries ~10% of the mass.
        assert!(z.hottest_mass() > 0.05, "hottest = {}", z.hottest_mass());
        let rngs = ThreadRngs::new(1, 7);
        let mut hot = 0u32;
        const DRAWS: u32 = 20_000;
        for _ in 0..DRAWS {
            if z.sample(rngs.uniform(0)) < 10 {
                hot += 1;
            }
        }
        // Top-10 ranks should absorb a large plurality of draws.
        assert!(hot > DRAWS / 5, "only {hot}/{DRAWS} draws hit the top 10");
    }

    #[test]
    fn uniform_exponent_is_not_skewed() {
        let z = ZipfSampler::new(100, 0.0);
        let rngs = ThreadRngs::new(1, 11);
        let mut hot = 0u32;
        for _ in 0..10_000 {
            if z.sample(rngs.uniform(0)) == 0 {
                hot += 1;
            }
        }
        // P(rank 0) = 1/100; allow wide slack.
        assert!(hot < 400, "uniform draw hit rank 0 {hot}/10000 times");
    }

    #[test]
    fn samples_cover_the_range_and_stay_in_bounds() {
        let z = ZipfSampler::new(64, 1.2);
        let rngs = ThreadRngs::new(2, 3);
        let mut seen = [false; 64];
        for _ in 0..50_000 {
            let rank = z.sample(rngs.uniform(0)) as usize;
            assert!(rank < 64);
            seen[rank] = true;
        }
        assert_eq!(z.sample(0.9999999), 63.min(z.keys() as u64 - 1));
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 48, "only {covered}/64 ranks ever drawn");
    }

    #[test]
    fn thread_streams_are_deterministic_and_distinct() {
        let a = ThreadRngs::new(2, 42);
        let b = ThreadRngs::new(2, 42);
        let first: Vec<u64> = (0..8).map(|_| a.next(0)).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next(0)).collect();
        assert_eq!(first, again);
        let other: Vec<u64> = (0..8).map(|_| b.next(1)).collect();
        assert_ne!(again, other);
    }
}

//! # kex-bench — the experiment harness
//!
//! Regenerates every table and theorem-bound curve of the paper's
//! evaluation (see the repository's `EXPERIMENTS.md` for the index and
//! recorded results):
//!
//! * `cargo run --release -p kex-bench --bin table1` — Table 1
//!   (E1/E8): measured worst-case RMRs per algorithm, with and without
//!   contention, under each algorithm's memory model.
//! * `cargo run --release -p kex-bench --bin bounds -- <thm|all>` —
//!   Theorems 1–10 (E2–E6): parameter sweeps, measured vs. formula.
//! * `cargo run --release -p kex-bench --bin resilience` — E7: failure
//!   injection, survivors' progress at `f = 0 .. k` crashes.
//! * `cargo bench -p kex-bench` — E9: native wall-clock scalability on
//!   the host machine (via the in-tree [`microbench`] runner).
//!
//! This library crate holds the shared measurement machinery.

#![warn(missing_docs)]

pub mod harness;
pub mod microbench;
pub mod report;

pub use harness::{measure, Measurement, Workload};
pub use report::JsonSink;

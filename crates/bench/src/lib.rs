//! # kex-bench — the experiment harness
//!
//! Regenerates every table and theorem-bound curve of the paper's
//! evaluation (see the repository's `EXPERIMENTS.md` for the index and
//! recorded results):
//!
//! * `cargo run --release -p kex-bench --bin table1` — Table 1
//!   (E1/E8): measured worst-case RMRs per algorithm, with and without
//!   contention, under each algorithm's memory model.
//! * `cargo run --release -p kex-bench --bin bounds -- <thm|all>` —
//!   Theorems 1–10 (E2–E6): parameter sweeps, measured vs. formula.
//! * `cargo run --release -p kex-bench --bin resilience` — E7: failure
//!   injection, survivors' progress at `f = 0 .. k` crashes.
//! * `cargo bench -p kex-bench` — E9: native wall-clock scalability on
//!   the host machine (via the in-tree [`microbench`] runner).
//! * `cargo run --release -p kex-bench --bin contend` — E12:
//!   multi-threaded contention (throughput, latency percentiles,
//!   fairness) per native algorithm; build with `--features seqcst` and
//!   pass that run back via `--baseline` to record the memory-ordering
//!   relaxation delta (the committed `BENCH_contend.json`).
//!
//! This library crate holds the shared measurement machinery.

#![warn(missing_docs)]

pub mod contend;
pub mod harness;
pub mod microbench;
pub mod report;
pub mod store_load;

pub use harness::{measure, Measurement, Workload};
pub use report::JsonSink;

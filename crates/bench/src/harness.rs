//! Shared measurement machinery for the experiment binaries.

use kex_core::sim::Algorithm;
use kex_sim::prelude::*;

/// One measurement configuration: which algorithm instance, how much
/// contention, how long the dwell times, how many seeds.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The algorithm variant.
    pub algo: Algorithm,
    /// Process universe size `N`.
    pub n: usize,
    /// Exclusion bound `k`.
    pub k: usize,
    /// Number of participating processes (the contention cap).
    pub contention: usize,
    /// Acquisitions per participant.
    pub cycles: u64,
    /// Random schedules to aggregate over.
    pub seeds: u64,
    /// Noncritical-section dwell steps.
    pub ncs_steps: u32,
    /// Critical-section dwell steps.
    pub cs_steps: u32,
    /// Figure-5 location supply (ignored by other algorithms).
    pub max_locs: usize,
    /// Memory-model override (default: the algorithm's target model).
    pub model: Option<MemoryModel>,
}

impl Workload {
    /// A standard workload: every process participates, moderate dwell
    /// times, 8 seeds, 15 cycles.
    pub fn full(algo: Algorithm, n: usize, k: usize) -> Self {
        Workload {
            algo,
            n,
            k,
            contention: n,
            cycles: 15,
            seeds: 8,
            ncs_steps: 1,
            cs_steps: 2,
            max_locs: 8192,
            model: None,
        }
    }

    /// Account remote references under a specific memory model instead of
    /// the algorithm's target model.
    pub fn model(mut self, model: MemoryModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Cap the number of participating processes.
    pub fn contention(mut self, c: usize) -> Self {
        self.contention = c.min(self.n);
        self
    }

    /// Override the dwell times.
    pub fn dwell(mut self, ncs: u32, cs: u32) -> Self {
        self.ncs_steps = ncs;
        self.cs_steps = cs;
        self
    }

    /// Override cycles per participant.
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }
}

/// Aggregated result of running a [`Workload`] over all its seeds.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Worst entry+exit remote-reference pair over all acquisitions and
    /// seeds — the paper's complexity measure `t`.
    pub worst_pair: u64,
    /// Mean pair over all acquisitions and seeds.
    pub mean_pair: f64,
    /// Worst entry-section-only cost.
    pub worst_entry: u64,
    /// Worst entry-section waiting time in own steps (spins included) —
    /// the fairness measure RMR counting deliberately ignores.
    pub worst_wait_steps: u64,
    /// Bucketed p99 of the waiting time (upper bound of the bucket).
    pub p99_wait_steps: u64,
    /// Total acquisitions aggregated.
    pub acquisitions: u64,
    /// Highest contention actually observed during any entry.
    pub peak_contention: usize,
}

/// Run the workload to quiescence under each seed and aggregate.
///
/// # Panics
/// Panics on any safety violation or non-quiescent run — experiments must
/// not silently measure broken executions.
pub fn measure(w: &Workload) -> Measurement {
    let mut worst_pair = 0u64;
    let mut worst_entry = 0u64;
    let mut wait = kex_sim::stats::Aggregate::default();
    let mut total = 0u64;
    let mut count = 0u64;
    let mut peak = 0usize;
    for seed in 0..w.seeds {
        let proto = w.algo.build(w.n, w.k, w.max_locs);
        let mut sim = Sim::new(proto, w.model.unwrap_or_else(|| w.algo.model()))
            .cycles(w.cycles)
            .scheduler(RandomSched::new(seed))
            .participants(0..w.contention)
            .timing(Timing {
                ncs_steps: w.ncs_steps,
                cs_steps: w.cs_steps,
            })
            .build();
        let report = sim.run(500_000_000);
        report.assert_safe();
        assert_eq!(
            report.stop,
            StopReason::Quiescent,
            "{} (n={},k={}) did not quiesce",
            w.algo.label(),
            w.n,
            w.k
        );
        let pair = report.stats.pair();
        worst_pair = worst_pair.max(pair.max);
        worst_entry = worst_entry.max(report.stats.entry().max);
        wait.merge(&report.stats.wait_steps());
        total += pair.total;
        count += pair.count;
        peak = peak.max(report.stats.peak_contention());
    }
    Measurement {
        worst_pair,
        mean_pair: if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        },
        worst_entry,
        worst_wait_steps: wait.max,
        p99_wait_steps: wait.quantile_bucket_upper(0.99),
        acquisitions: count,
        peak_contention: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_aggregates_across_seeds() {
        let w = Workload::full(Algorithm::CcChain, 4, 2).cycles(5);
        let m = measure(&w);
        assert_eq!(m.acquisitions, 8 * 4 * 5);
        assert!(m.worst_pair >= 1);
        assert!(m.worst_pair <= 14);
        assert!(m.mean_pair <= m.worst_pair as f64);
        assert!(m.peak_contention <= 4);
    }

    #[test]
    fn contention_cap_is_respected() {
        let w = Workload::full(Algorithm::CcFastPath, 8, 2)
            .contention(2)
            .cycles(5);
        let m = measure(&w);
        assert!(m.peak_contention <= 2);
        assert_eq!(m.acquisitions, 8 * 2 * 5);
    }
}

//! E13: Zipfian read/write mixes over the `kex-store` sharded
//! resilient-object service layer.
//!
//! For each shard count × thread count cell this builds a fresh
//! [`KvStore`], pre-populates every key, and drives a skewed
//! (Zipf(`s`)) closed-loop read/write mix through the blocking
//! `StoreRead`/`StoreWrite` surface, reporting throughput, sampled
//! latency percentiles, per-thread fairness, and per-shard key/op
//! imbalance. A crash-mix section then injects `k - 1` crash-in-CS
//! failures into *every* shard (the paper's failure model: each crash
//! permanently consumes one slot + name + journal lane) and shows the
//! store still serving, and finally kills the last slot of one shard to
//! show the non-blocking surface shedding exactly that shard's traffic.
//! Always writes a JSON document (default `BENCH_store.json`, schema
//! `kex-bench/store/v1`) via the shared report writer.
//!
//! ```text
//! store [--smoke] [--json <path>] [--duration-ms <n>]
//!       [--threads <a,b,c>] [--shards <a,b,c>] [--keys <n>]
//!       [--zipf-s <f>] [--read-pct <0-100>] [--k <n>]
//! ```
//!
//! * `--smoke` — CI mode: short windows over a reduced (but still
//!   ≥ 2 shard counts × ≥ 3 thread counts) grid, plus schema
//!   self-checks.
//!
//! Methodology caveats live in `EXPERIMENTS.md` E13.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kex_bench::contend::{run_contended, RunConfig, RunStats};
use kex_bench::store_load::{ThreadRngs, ZipfSampler};
use kex_bench::JsonSink;
use kex_obs::json::Json;
use kex_store::{KvStore, StoreConfig, StoreRead, StoreWrite};

#[derive(Debug)]
struct Options {
    smoke: bool,
    duration: Duration,
    threads: Vec<usize>,
    shards: Vec<usize>,
    keys: usize,
    zipf_s: f64,
    read_pct: u64,
    k: usize,
}

/// Workload seed: fixed so documents regenerate comparably.
const SEED: u64 = 0x6B65_785F_6C6F_6164; // "kex_load"

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        duration: Duration::from_millis(200),
        threads: vec![2, 8, 32, 128],
        shards: vec![4, 16, 64],
        keys: 4096,
        zipf_s: 0.99,
        read_pct: 90,
        k: 4,
    };
    fn num(args: &mut impl Iterator<Item = String>, name: &str) -> u64 {
        args.next()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| usage(&format!("{name} needs an integer")))
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--json" => {
                args.next(); // consumed by JsonSink::from_args
            }
            "--duration-ms" => {
                opts.duration = Duration::from_millis(num(&mut args, "--duration-ms"));
            }
            "--keys" => opts.keys = num(&mut args, "--keys").max(1) as usize,
            "--read-pct" => {
                opts.read_pct = num(&mut args, "--read-pct");
                if opts.read_pct > 100 {
                    usage("--read-pct must be 0..=100");
                }
            }
            "--k" => opts.k = num(&mut args, "--k").max(1) as usize,
            "--zipf-s" => {
                opts.zipf_s = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage("--zipf-s needs a non-negative float"));
            }
            "--threads" => opts.threads = parse_list(args.next(), "--threads"),
            "--shards" => opts.shards = parse_list(args.next(), "--shards"),
            other if other.starts_with("--json=") => {}
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if opts.smoke {
        opts.threads = vec![2, 4, 8];
        opts.shards = vec![4, 16];
        opts.duration = Duration::from_millis(60);
        opts.keys = opts.keys.min(2048);
    }
    opts.threads.sort_unstable();
    opts.threads.dedup();
    opts.shards.sort_unstable();
    opts.shards.dedup();
    opts
}

fn parse_list(arg: Option<String>, name: &str) -> Vec<usize> {
    arg.unwrap_or_else(|| usage(&format!("{name} needs a list")))
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&v| v >= 1)
                .unwrap_or_else(|| usage(&format!("{name} entries must be positive")))
        })
        .collect()
}

fn usage(msg: &str) -> ! {
    eprintln!("store: {msg}");
    eprintln!(
        "usage: store [--smoke] [--json <path>] [--duration-ms <n>] \
         [--threads <a,b,c>] [--shards <a,b,c>] [--keys <n>] \
         [--zipf-s <f>] [--read-pct <0-100>] [--k <n>]"
    );
    std::process::exit(2);
}

fn ordering_build() -> &'static str {
    if cfg!(feature = "seqcst") {
        "seqcst"
    } else {
        "relaxed"
    }
}

fn stats_json(s: &RunStats) -> Json {
    Json::obj(vec![
        ("threads", s.threads.into()),
        ("total_ops", s.total_ops.into()),
        ("elapsed_ms", (s.elapsed.as_secs_f64() * 1e3).into()),
        ("ops_per_sec", s.ops_per_sec().into()),
        ("p50_ns", s.p50_ns.into()),
        ("p90_ns", s.p90_ns.into()),
        ("p99_ns", s.p99_ns.into()),
        ("p999_ns", s.p999_ns.into()),
        ("latency_samples", s.samples.into()),
        ("min_thread_ops", s.min_thread_ops.into()),
        ("max_thread_ops", s.max_thread_ops.into()),
    ])
}

/// A fresh, fully populated store for one benchmark cell.
fn build_store(opts: &Options, shards: usize, n: usize) -> KvStore {
    let mut cfg = StoreConfig::new(shards, n, opts.k);
    cfg.seed = SEED;
    // Bulletproof capacity: any routing of `keys` fits any shard.
    cfg.capacity = opts.keys.next_power_of_two();
    cfg.journal_depth = 8;
    let store = KvStore::new(cfg);
    for key in 0..opts.keys as u64 {
        store.put(0, key, key & 0xFFFF).unwrap();
    }
    store
}

/// Per-shard key/op imbalance of a finished cell, from the store's own
/// monitoring surface (`ops_baseline` removes populate traffic).
fn imbalance_json(store: &KvStore, ops_baseline: &[u64]) -> Json {
    let stats = store.stats();
    let keys: Vec<u64> = stats.iter().map(|s| s.keys as u64).collect();
    let ops: Vec<u64> = stats
        .iter()
        .zip(ops_baseline)
        .map(|(s, base)| s.ops.saturating_sub(*base))
        .collect();
    let summarize = |v: &[u64]| -> (u64, u64, f64, f64) {
        let (min, max) = (*v.iter().min().unwrap(), *v.iter().max().unwrap());
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        (
            min,
            max,
            mean,
            if mean > 0.0 { max as f64 / mean } else { 0.0 },
        )
    };
    let (kmin, kmax, kmean, kskew) = summarize(&keys);
    let (omin, omax, omean, oskew) = summarize(&ops);
    Json::obj(vec![
        ("keys_min", kmin.into()),
        ("keys_max", kmax.into()),
        ("keys_mean", kmean.into()),
        ("keys_max_over_mean", kskew.into()),
        ("ops_min", omin.into()),
        ("ops_max", omax.into()),
        ("ops_mean", omean.into()),
        ("ops_max_over_mean", oskew.into()),
    ])
}

fn main() {
    let opts = parse_args();
    let mut sink = JsonSink::from_args_or_default("BENCH_store.json");
    let cfg = RunConfig::with_duration(opts.duration);
    let zipf = ZipfSampler::new(opts.keys, opts.zipf_s);
    let windows: usize = if opts.smoke { 1 } else { 3 };
    let mut failures = 0u32;

    println!(
        "store: build={} shards={:?} threads={:?} keys={} zipf_s={} read_pct={}% k={} window={:?} cpus={}",
        ordering_build(),
        opts.shards,
        opts.threads,
        opts.keys,
        opts.zipf_s,
        opts.read_pct,
        opts.k,
        opts.duration,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );

    // ---- shard-count × thread-count grid --------------------------------
    let mut grid = Vec::new();
    for &shards in &opts.shards {
        for &threads in &opts.threads {
            let n = threads.max(opts.k + 1);
            let store = build_store(&opts, shards, n);
            let ops_baseline: Vec<u64> = store.stats().iter().map(|s| s.ops).collect();
            let rngs = ThreadRngs::new(threads, SEED ^ (shards as u64) << 32 ^ threads as u64);
            let reads = AtomicU64::new(0);
            let writes = AtomicU64::new(0);
            let op = |t: usize| {
                let r = rngs.next(t);
                let key = zipf.sample(rngs.uniform(t));
                if r % 100 < opts.read_pct {
                    std::hint::black_box(store.get(t, key));
                    reads.fetch_add(1, Ordering::Relaxed);
                } else {
                    store.put(t, key, r & 0xFFFF).unwrap();
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            };
            let mut samples: Vec<_> = (0..windows)
                .map(|_| run_contended(threads, &cfg, op))
                .collect();
            samples.sort_by(|a, z| a.ops_per_sec().total_cmp(&z.ops_per_sec()));
            let stats = samples[samples.len() / 2];
            println!(
                "  S={:<3} T={:<3} {:>12.0} ops/s  p50={:>7} p99={:>8} p999={:>8} ns  ops/thread={}..{}",
                shards,
                threads,
                stats.ops_per_sec(),
                stats.p50_ns,
                stats.p99_ns,
                stats.p999_ns,
                stats.min_thread_ops,
                stats.max_thread_ops,
            );
            if stats.total_ops == 0 || stats.samples == 0 {
                eprintln!("  FAIL: S={shards} T={threads} made no progress");
                failures += 1;
            }
            grid.push(Json::obj(vec![
                ("shards", shards.into()),
                ("threads", threads.into()),
                ("n_per_shard", n.into()),
                ("run", stats_json(&stats)),
                ("reads", reads.load(Ordering::Relaxed).into()),
                ("writes", writes.load(Ordering::Relaxed).into()),
                ("imbalance", imbalance_json(&store, &ops_baseline)),
            ]));
        }
    }

    // ---- crash-mix: k-1 dead holders in *every* shard -------------------
    let shards = opts.shards[0];
    let threads = opts.threads[opts.threads.len() / 2];
    let crashed_per_shard = opts.k - 1;
    let crashers = crashed_per_shard * shards + 1; // +1 for the shed demo
    let n = threads.max(opts.k + 1) + crashers;
    let store = build_store(&opts, shards, n);
    let ops_baseline: Vec<u64> = store.stats().iter().map(|s| s.ops).collect();

    // Crash k-1 holders per shard, each a dedicated pid dying in its CS.
    let mut crash_pid = threads.max(opts.k + 1);
    for shard in 0..shards {
        let mut injected = 0;
        for key in 0..opts.keys as u64 {
            if injected == crashed_per_shard {
                break;
            }
            if store.shard_of(key) == shard {
                store.crash_in_cs(crash_pid, key, 0xDEAD);
                crash_pid += 1;
                injected += 1;
            }
        }
        assert_eq!(
            injected, crashed_per_shard,
            "shard {shard} owns too few keys"
        );
    }
    let in_flight: usize = store.stats().iter().map(|s| s.in_flight_lanes).sum();
    println!(
        "  crash-mix: S={shards} T={threads} k={} with {} dead holders ({} per shard), {} lanes in flight",
        opts.k,
        crashed_per_shard * shards,
        crashed_per_shard,
        in_flight,
    );

    // Availability: the blocking surface still completes through the one
    // live slot per shard.
    let rngs = ThreadRngs::new(threads, SEED ^ 0xC8A5);
    let avail_op = |t: usize| {
        let r = rngs.next(t);
        let key = zipf.sample(rngs.uniform(t));
        if r % 100 < opts.read_pct {
            std::hint::black_box(store.get(t, key));
        } else {
            store.put(t, key, r & 0xFFFF).unwrap();
        }
    };
    let avail = run_contended(threads, &cfg, avail_op);
    println!(
        "  crash-mix availability: {:>12.0} ops/s  p50={} p999={} ns",
        avail.ops_per_sec(),
        avail.p50_ns,
        avail.p999_ns,
    );
    if avail.total_ops == 0 {
        eprintln!("  FAIL: crash-mix run made no progress with k-1 dead per shard");
        failures += 1;
    }

    // Shed demo: consume shard 0's last slot, then drive the
    // non-blocking surface — shard 0's traffic sheds, the rest serves.
    let key0 = (0..opts.keys as u64)
        .find(|&k| store.shard_of(k) == 0)
        .unwrap();
    store.crash_in_cs(crash_pid, key0, 0xDEAD);
    let sheds_before: u64 = store.stats().iter().map(|s| s.sheds).sum();
    let shed_rngs = ThreadRngs::new(threads, SEED ^ 0x5EED);
    let served = AtomicU64::new(0);
    let shed_op = |t: usize| {
        let r = shed_rngs.next(t);
        let key = zipf.sample(shed_rngs.uniform(t));
        let outcome = if r % 100 < opts.read_pct {
            store.try_get(t, key).map(|_| ())
        } else {
            store.try_put(t, key, r & 0xFFFF).map(|_| ())
        };
        if outcome.is_some() {
            served.fetch_add(1, Ordering::Relaxed);
        }
    };
    let shed_stats = run_contended(threads, &cfg, shed_op);
    let sheds = store.stats().iter().map(|s| s.sheds).sum::<u64>() - sheds_before;
    println!(
        "  crash-mix shed (shard 0 fully dead): {:>12.0} attempts/s, {} shed",
        shed_stats.ops_per_sec(),
        sheds,
    );
    if shed_stats.total_ops == 0 || served.load(Ordering::Relaxed) == 0 {
        eprintln!("  FAIL: shed run served nothing");
        failures += 1;
    }
    if sheds == 0 {
        eprintln!("  FAIL: a fully dead shard shed no traffic");
        failures += 1;
    }

    let crash_mix = Json::obj(vec![
        ("shards", shards.into()),
        ("threads", threads.into()),
        ("k", opts.k.into()),
        ("crashed_per_shard", crashed_per_shard.into()),
        ("crashed_total", (crashed_per_shard * shards).into()),
        ("in_flight_lanes", in_flight.into()),
        ("availability", stats_json(&avail)),
        (
            "shed",
            Json::obj(vec![
                ("dead_shard", 0u64.into()),
                ("extra_crashes", 1u64.into()),
                ("run", stats_json(&shed_stats)),
                ("attempts_served", served.load(Ordering::Relaxed).into()),
                ("attempts_shed", sheds.into()),
            ]),
        ),
        ("imbalance", imbalance_json(&store, &ops_baseline)),
    ]);

    // ---- document -------------------------------------------------------
    sink.put("schema", "kex-bench/store/v1".into());
    sink.put("ordering_build", ordering_build().into());
    sink.put(
        "cpus",
        std::thread::available_parallelism()
            .map_or(0usize, |n| n.get())
            .into(),
    );
    sink.put("k", opts.k.into());
    sink.put("keys", opts.keys.into());
    sink.put("zipf_s", opts.zipf_s.into());
    sink.put("zipf_hottest_mass", zipf.hottest_mass().into());
    sink.put("read_pct", opts.read_pct.into());
    sink.put("seed", SEED.into());
    sink.put("duration_ms", (opts.duration.as_millis() as u64).into());
    sink.put("warmup_ms", (cfg.warmup.as_millis() as u64).into());
    sink.put("latency_sample_every", cfg.sample_every.into());
    sink.put("windows_per_cell", windows.into());
    sink.put(
        "shard_counts",
        Json::arr(opts.shards.iter().map(|&s| s.into()).collect()),
    );
    sink.put(
        "thread_counts",
        Json::arr(opts.threads.iter().map(|&t| t.into()).collect()),
    );
    sink.put("grid", Json::arr(grid));
    sink.put("crash_mix", crash_mix);
    sink.finish();

    // Schema self-check: the acceptance surface the CI smoke run pins.
    if opts.smoke {
        assert!(opts.shards.len() >= 2, "smoke grid needs >= 2 shard counts");
        assert!(
            opts.threads.len() >= 3,
            "smoke grid needs >= 3 thread counts"
        );
    }

    if failures > 0 {
        eprintln!("store: {failures} run(s) failed");
        std::process::exit(1);
    }
    if opts.smoke {
        println!(
            "SMOKE OK: {} grid cells + crash-mix (k-1 dead per shard) all made progress",
            opts.shards.len() * opts.threads.len()
        );
    }
}

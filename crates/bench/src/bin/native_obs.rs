//! E10 — measure the **native** algorithms' estimated remote references
//! with the instrumented atomics backend (`kex-obs`) and check them
//! against the Theorem 1–10 formulas.
//!
//! Where `table1`/`bounds` count exact RMRs on the discrete-event
//! simulator, this binary runs the real `std::thread` implementations
//! and lets the facade's instrumented backend estimate CC/DSM remote
//! references per entry+exit pair. The two views should agree in shape:
//! every algorithm's mean estimate under its *target* model must sit at
//! or below the paper's worst-case formula.
//!
//! Run: `cargo run --release -p kex-bench --features obs --bin native_obs`
//!
//! Flags:
//! * `--quick` — one small configuration, few cycles (CI smoke).
//! * `--json <path>` — output path (default `BENCH_native.json`).
//!
//! Exits nonzero if any algorithm exceeds its bound or the occupancy
//! gauge ever exceeds `k` — so CI can gate on it.
//!
//! ## Estimator caveats (see `docs/OBSERVABILITY.md`)
//!
//! * The per-pair numbers are **means**, compared against *worst-case*
//!   bounds; the margin is expected to be large at low contention.
//! * `QueueKex` and `SemaphoreKex` serialize on an OS mutex whose
//!   traffic the facade cannot see; their rows are baselines only and
//!   carry no bound.

use std::sync::Arc;

use kex_bench::JsonSink;
use kex_core::native::{
    CcChainKex, DsmChainKex, FastPathKex, GracefulKex, KAssignment, McsLock, QueueKex, RawKex,
    SemaphoreKex, TreeKex, YangAndersonLock,
};
use kex_core::sim::tree_depth;
use kex_obs::json::Json;
use kex_obs::Section;

/// One algorithm under measurement: a per-process entry/exit routine
/// plus the theorem bound it must respect.
struct Case {
    name: &'static str,
    /// `"cc"` or `"dsm"` — which estimate the bound constrains.
    target_model: &'static str,
    theorem: &'static str,
    /// Worst-case remote references per entry+exit pair under the target
    /// model, if the paper gives a closed formula for this `(n, k)`.
    bound: Option<u64>,
    /// Runs one full acquire → dwell → release cycle for process `p`.
    runner: Box<dyn Fn(usize) + Send + Sync>,
}

/// Dwell inside the critical section long enough for holders to overlap
/// (spins route through the facade, so they are counted, in the Cs
/// section, without touching shared memory).
fn dwell() {
    for _ in 0..32 {
        kex_util::sync::hint::spin_loop();
    }
}

fn kex_case<K: RawKex + 'static>(
    name: &'static str,
    target_model: &'static str,
    theorem: &'static str,
    bound: Option<u64>,
    kex: K,
) -> Case {
    let kex = Arc::new(kex);
    Case {
        name,
        target_model,
        theorem,
        bound,
        runner: Box::new(move |p| {
            let guard = kex.enter(p);
            dwell();
            drop(guard);
        }),
    }
}

fn assignment_case(
    name: &'static str,
    target_model: &'static str,
    theorem: &'static str,
    bound: Option<u64>,
    assign: KAssignment,
) -> Case {
    let assign = Arc::new(assign);
    Case {
        name,
        target_model,
        theorem,
        bound,
        runner: Box::new(move |p| {
            let guard = assign.enter(p);
            dwell();
            drop(guard);
        }),
    }
}

fn cases(n: usize, k: usize) -> Vec<Case> {
    let nu = n as u64;
    let ku = k as u64;
    let depth = tree_depth(n, k) as u64;
    let thm3 = 7 * ku * (depth + 1) + 2;
    let thm7 = 14 * ku * (depth + 1) + 2;
    vec![
        kex_case(
            "cc-chain",
            "cc",
            "Thm 1",
            Some(7 * (nu - ku)),
            CcChainKex::new(n, k),
        ),
        kex_case(
            "cc-tree",
            "cc",
            "Thm 2",
            Some(7 * ku * depth),
            TreeKex::cc(n, k),
        ),
        kex_case(
            "cc-fastpath",
            "cc",
            "Thm 3",
            Some(thm3),
            FastPathKex::new(n, k),
        ),
        kex_case("cc-graceful", "cc", "Thm 4", None, GracefulKex::new(n, k)),
        kex_case(
            "dsm-chain",
            "dsm",
            "Thm 5",
            Some(14 * (nu - ku)),
            DsmChainKex::new(n, k),
        ),
        kex_case(
            "dsm-tree",
            "dsm",
            "Thm 6",
            Some(14 * ku * depth),
            TreeKex::dsm(n, k),
        ),
        kex_case(
            "dsm-fastpath",
            "dsm",
            "Thm 7",
            Some(thm7),
            FastPathKex::new_dsm(n, k),
        ),
        kex_case(
            "dsm-graceful",
            "dsm",
            "Thm 8",
            None,
            GracefulKex::new_dsm(n, k),
        ),
        assignment_case(
            "assignment-cc",
            "cc",
            "Thm 9",
            Some(thm3 + ku + 1),
            KAssignment::new(n, k),
        ),
        assignment_case(
            "assignment-dsm",
            "dsm",
            "Thm 10",
            Some(thm7 + ku + 1),
            KAssignment::new_dsm(n, k),
        ),
        // Reference points, no paper bound: the k = 1 spin locks...
        kex_case("mcs", "cc", "[12]", None, McsLock::new(n)),
        kex_case(
            "yang-anderson",
            "cc",
            "[14]",
            None,
            YangAndersonLock::new(n),
        ),
        // ...and the mutex/kernel baselines (facade-invisible traffic).
        kex_case("queue-fig1", "cc", "[9,10]", None, QueueKex::new(n, k)),
        kex_case("semaphore", "cc", "-", None, SemaphoreKex::new(n, k)),
    ]
}

struct CaseResult {
    json: Json,
    ok: bool,
}

/// Run one case: `n` threads, `cycles` acquisitions each, then snapshot
/// and reduce. Counters are reset before the run; each case builds fresh
/// atomics, so holder masks and DSM homes start clean.
fn run_case(case: &Case, n: usize, k: usize, cycles: u64) -> CaseResult {
    kex_obs::reset();
    std::thread::scope(|s| {
        for p in 0..n {
            let runner = &case.runner;
            s.spawn(move || {
                for _ in 0..cycles {
                    (runner)(p);
                }
            });
        }
    });
    let snap = kex_obs::snapshot();

    let pairs = n as u64 * cycles;
    let entry = snap.section_totals(Section::Entry);
    let exit = snap.section_totals(Section::Exit);
    let cc_total = entry.cc_remote + exit.cc_remote;
    let dsm_total = entry.dsm_remote + exit.dsm_remote;
    let cc_mean = cc_total as f64 / pairs as f64;
    let dsm_mean = dsm_total as f64 / pairs as f64;
    let target_mean = match case.target_model {
        "dsm" => dsm_mean,
        _ => cc_mean,
    };
    let within_bound = case.bound.is_none_or(|b| target_mean <= b as f64);

    let occupancy_max = snap.occupancy.max;
    // Baselines with k() == 1 (MCS, Yang–Anderson) still run with the
    // sweep's k in scope; their own bound is 1.
    let k_eff = match case.name {
        "mcs" | "yang-anderson" => 1,
        _ => k,
    };
    let occupancy_ok = occupancy_max <= k_eff as i64 && snap.occupancy.current == 0;

    // Entry-section latency, merged across pids.
    let mut entry_hist = std::collections::BTreeMap::new();
    for p in snap.per_pid.iter().filter(|p| p.pid.is_some()) {
        for &(floor, count) in &p.hists[Section::Entry as usize].buckets {
            *entry_hist.entry(floor).or_insert(0u64) += count;
        }
    }
    let merged = kex_obs::HistSnapshot {
        buckets: entry_hist.into_iter().collect(),
    };

    // Per-site traffic for the cross-layer drift audit (`kex-lint`):
    // every native-layer location the instrumented backend recorded for
    // this case, sorted for a stable committed document, plus whether
    // the fixed-capacity site table overflowed — a truncated inventory
    // must be reported as such, never mistaken for a clean one.
    let sites_truncated = snap.sites.iter().any(|s| s.location == "<overflow>");
    let mut native_sites: Vec<&kex_obs::SiteSnapshot> = snap
        .sites
        .iter()
        .filter(|s| s.location.contains("src/native/"))
        .collect();
    native_sites.sort_by(|a, b| a.location.cmp(&b.location));
    let site_docs: Vec<Json> = native_sites
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("location", s.location.as_str().into()),
                ("loads", s.loads.into()),
                ("stores", s.stores.into()),
                ("rmws", s.rmws.into()),
            ])
        })
        .collect();

    let json = Json::obj(vec![
        ("name", case.name.into()),
        ("target_model", case.target_model.into()),
        ("theorem", case.theorem.into()),
        ("pairs", pairs.into()),
        (
            "cc",
            Json::obj(vec![
                ("total_remote", cc_total.into()),
                ("mean_remote_per_pair", cc_mean.into()),
            ]),
        ),
        (
            "dsm",
            Json::obj(vec![
                ("total_remote", dsm_total.into()),
                ("mean_remote_per_pair", dsm_mean.into()),
            ]),
        ),
        (
            "ops_per_pair",
            ((entry.ops() + exit.ops()) as f64 / pairs as f64).into(),
        ),
        ("entry_spins_total", entry.spins.into()),
        (
            "entry_latency",
            Json::obj(vec![
                (
                    "p50_ns_floor",
                    merged.quantile_floor(0.50).map_or(Json::Null, Json::U64),
                ),
                (
                    "p99_ns_floor",
                    merged.quantile_floor(0.99).map_or(Json::Null, Json::U64),
                ),
            ]),
        ),
        ("occupancy_max", Json::I64(occupancy_max)),
        ("occupancy_ok", occupancy_ok.into()),
        ("bound_per_pair", case.bound.map_or(Json::Null, Json::U64)),
        ("mean_remote_per_pair_target", target_mean.into()),
        ("within_bound", within_bound.into()),
        ("sites", Json::arr(site_docs)),
        ("sites_truncated", sites_truncated.into()),
    ]);

    println!(
        "{:<16} {:>6} | cc {:>8.2} dsm {:>8.2} | bound {:>5} ({:<6}) {:>4} | occ {}/{} {}",
        case.name,
        case.target_model,
        cc_mean,
        dsm_mean,
        case.bound.map_or_else(|| "-".to_owned(), |b| b.to_string()),
        case.theorem,
        if case.bound.is_none() {
            "-"
        } else if within_bound {
            "ok"
        } else {
            "OVER"
        },
        occupancy_max,
        k_eff,
        if occupancy_ok { "ok" } else { "BAD" },
    );

    CaseResult {
        json,
        ok: within_bound && occupancy_ok,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut sink = JsonSink::from_args();
    if !sink.enabled() {
        // This binary always writes its document — it exists to produce
        // the committed BENCH_native.json.
        sink = JsonSink::from_args_or_default("BENCH_native.json");
    }

    let (configs, cycles): (&[(usize, usize)], u64) = if quick {
        (&[(8, 2)], 50)
    } else {
        (&[(8, 2), (16, 4)], 200)
    };

    let mut all_ok = true;
    let mut config_docs = Vec::new();
    for &(n, k) in configs {
        println!("=== native estimates: N = {n}, k = {k}, {cycles} cycles/thread ===");
        println!(
            "{:<16} {:>6} | {:>11} {:>12} | {:>20} {:>6} | occupancy",
            "algorithm", "model", "cc mean", "dsm mean", "bound (theorem)", ""
        );
        let mut algo_docs = Vec::new();
        for case in cases(n, k) {
            let result = run_case(&case, n, k, cycles);
            all_ok &= result.ok;
            algo_docs.push(result.json);
        }
        println!();
        config_docs.push(Json::obj(vec![
            ("n", n.into()),
            ("k", k.into()),
            ("cycles_per_thread", cycles.into()),
            ("algorithms", Json::arr(algo_docs)),
        ]));
    }

    sink.put("schema", "kex-bench/native_obs/v1".into());
    sink.put("quick", quick.into());
    sink.put(
        "note",
        "mean estimated remote references per entry+exit pair from the \
         instrumented atomics backend, vs the paper's worst-case formulas \
         under each algorithm's target model"
            .into(),
    );
    sink.put("configs", Json::arr(config_docs));
    sink.finish();

    if !all_ok {
        eprintln!("FAIL: a bound or occupancy check was violated (see rows above)");
        std::process::exit(1);
    }
    println!("all bounds respected; occupancy never exceeded k");
}

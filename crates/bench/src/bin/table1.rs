//! E1/E8 — regenerate **Table 1** of the paper: remote-reference
//! complexity of k-exclusion algorithms, with and without contention.
//!
//! The paper's table is analytical; we print, for each algorithm row,
//! the *measured* worst-case remote references per entry+exit pair under
//! its target memory model, side by side with the paper's complexity
//! expression evaluated for the same `(N, k)`. Algorithms whose paper
//! column is "infinity with contention" (the non-local-spin baselines)
//! are measured at two critical-section dwell times to exhibit the
//! divergence.
//!
//! Run: `cargo run --release -p kex-bench --bin table1`
//! (add `--json <path>` for a machine-readable copy)

use kex_bench::report::measurement_json;
use kex_bench::{measure, JsonSink, Workload};
use kex_core::sim::{tree_depth, Algorithm};
use kex_obs::json::Json;
use kex_sim::memmodel::MemoryModel;

struct Row {
    algo: Algorithm,
    paper_with: &'static str,
    paper_without: &'static str,
    bound_with: fn(usize, usize) -> Option<u64>,
    instructions: &'static str,
}

fn no_bound(_: usize, _: usize) -> Option<u64> {
    None
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            algo: Algorithm::QueueFig1,
            paper_with: "unbounded ([9,10]: large atomic sections)",
            paper_without: "O(1)",
            bound_with: no_bound,
            instructions: "large critical sections",
        },
        Row {
            algo: Algorithm::GlobalSpin,
            paper_with: "unbounded ([8]/[1]-style remote spinning)",
            paper_without: "O(1)",
            bound_with: no_bound,
            instructions: "fetch&increment",
        },
        Row {
            algo: Algorithm::CcChain,
            paper_with: "7(N-k)  [Thm 1]",
            paper_without: "O(N-k)",
            bound_with: |n, k| Some(7 * (n as u64 - k as u64)),
            instructions: "read, write, fetch&increment",
        },
        Row {
            algo: Algorithm::CcTree,
            paper_with: "7k*log2(N/k)  [Thm 2]",
            paper_without: "O(k log(N/k))",
            bound_with: |n, k| Some(7 * k as u64 * tree_depth(n, k) as u64),
            instructions: "read, write, fetch&increment",
        },
        Row {
            algo: Algorithm::CcFastPath,
            paper_with: "O(k log(N/k))  [Thm 3]",
            paper_without: "O(k)",
            bound_with: |n, k| Some(7 * k as u64 * (tree_depth(n, k) as u64 + 1) + 2),
            instructions: "read, write, fetch&increment",
        },
        Row {
            algo: Algorithm::CcGraceful,
            paper_with: "O(ceil(c/k)*k)  [Thm 4]",
            paper_without: "O(k)",
            bound_with: no_bound,
            instructions: "read, write, fetch&increment",
        },
        Row {
            algo: Algorithm::DsmUnboundedChain,
            paper_with: "O(N-k)  [Fig 5: unbounded space]",
            paper_without: "O(N-k)",
            bound_with: |n, k| Some(8 * (n as u64 - k as u64)),
            instructions: "above + compare&swap",
        },
        Row {
            algo: Algorithm::DsmChain,
            paper_with: "14(N-k)  [Thm 5]",
            paper_without: "O(N-k)",
            bound_with: |n, k| Some(14 * (n as u64 - k as u64)),
            instructions: "above + compare&swap",
        },
        Row {
            algo: Algorithm::DsmTree,
            paper_with: "14k*log2(N/k)  [Thm 6]",
            paper_without: "O(k log(N/k))",
            bound_with: |n, k| Some(14 * k as u64 * tree_depth(n, k) as u64),
            instructions: "above + compare&swap",
        },
        Row {
            algo: Algorithm::DsmFastPath,
            paper_with: "O(k log(N/k))  [Thm 7]",
            paper_without: "O(k)",
            bound_with: |n, k| Some(14 * k as u64 * (tree_depth(n, k) as u64 + 1) + 2),
            instructions: "above + compare&swap",
        },
        Row {
            algo: Algorithm::DsmGraceful,
            paper_with: "O(ceil(c/k)*k)  [Thm 8]",
            paper_without: "O(k)",
            bound_with: no_bound,
            instructions: "above + compare&swap",
        },
        Row {
            algo: Algorithm::AssignmentCc,
            paper_with: "O(k log(N/k)) + k  [Thm 9]",
            paper_without: "O(k)",
            bound_with: |n, k| {
                Some(7 * k as u64 * (tree_depth(n, k) as u64 + 1) + 2 + k as u64 + 1)
            },
            instructions: "above + test&set",
        },
        Row {
            algo: Algorithm::AssignmentDsm,
            paper_with: "O(k log(N/k)) + k  [Thm 10]",
            paper_without: "O(k)",
            bound_with: |n, k| {
                Some(14 * k as u64 * (tree_depth(n, k) as u64 + 1) + 2 + k as u64 + 1)
            },
            instructions: "above + test&set",
        },
    ]
}

fn main() {
    let mut sink = JsonSink::from_args();
    let mut config_docs = Vec::new();
    let configs = [(8usize, 2usize), (16, 2), (16, 4), (32, 4)];
    for (n, k) in configs {
        let mut row_docs = Vec::new();
        println!("==============================================================================");
        println!("TABLE 1 reproduction: N = {n}, k = {k} (worst RMRs per entry+exit pair)");
        println!("==============================================================================");
        println!(
            "{:<24} {:>5} | {:>9} {:>9} | {:>9} {:>8} | paper: w/ contention",
            "algorithm", "model", "meas c<=k", "meas c=N", "bound", "ok"
        );
        println!("{}", "-".repeat(110));
        for row in rows() {
            let low = measure(&Workload::full(row.algo, n, k).contention(k));
            let high = measure(&Workload::full(row.algo, n, k));
            let bound = (row.bound_with)(n, k);
            let ok = match bound {
                Some(b) => {
                    if high.worst_pair <= b {
                        "yes"
                    } else {
                        "NO!"
                    }
                }
                None => "-",
            };
            println!(
                "{:<24} {:>5} | {:>9} {:>9} | {:>9} {:>8} | {}",
                row.algo.label(),
                row.algo.model().label(),
                low.worst_pair,
                high.worst_pair,
                bound.map_or_else(|| "-".to_owned(), |b| b.to_string()),
                ok,
                row.paper_with,
            );
            if sink.enabled() {
                row_docs.push(Json::obj(vec![
                    ("algorithm", row.algo.label().into()),
                    ("model", row.algo.model().label().into()),
                    ("paper_with_contention", row.paper_with.into()),
                    ("paper_without_contention", row.paper_without.into()),
                    ("low_contention", measurement_json(&low)),
                    ("full_contention", measurement_json(&high)),
                    ("bound", bound.map_or(Json::Null, Json::U64)),
                    ("within_bound", Json::Bool(ok != "NO!")),
                ]));
            }
        }
        println!();
        if sink.enabled() {
            config_docs.push(Json::obj(vec![
                ("n", n.into()),
                ("k", k.into()),
                ("rows", Json::arr(row_docs)),
            ]));
        }
    }

    println!("paper's w/o-contention column and instruction sets:");
    for row in rows() {
        println!(
            "  {:<24} {:<16} {}",
            row.algo.label(),
            row.paper_without,
            row.instructions
        );
    }
    println!();

    // The "infinity with contention" rows of Table 1: while a waiter
    // spins on *shared, written* state, its remote-reference count grows
    // with how long it waits. Under the DSM model (no caches) every spin
    // read is remote, so the baselines diverge linearly with the winners'
    // dwell time; the local-spin Figure-6 chain stays flat.
    println!("==============================================================================");
    println!("Table 1's infinity column: worst pair vs CS dwell, DSM accounting (N=8, k=2)");
    println!("==============================================================================");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "algorithm", "cs=2", "cs=20", "cs=200", "cs=2000"
    );
    println!("{}", "-".repeat(70));
    let mut sweep_docs = Vec::new();
    for algo in [
        Algorithm::GlobalSpin,
        Algorithm::QueueFig1,
        Algorithm::DsmChain,
        Algorithm::DsmFastPath,
    ] {
        let mut cells = Vec::new();
        for cs in [2u32, 20, 200, 2000] {
            let m = measure(
                &Workload::full(algo, 8, 2)
                    .dwell(1, cs)
                    .cycles(8)
                    .model(MemoryModel::Dsm),
            );
            cells.push(m.worst_pair);
        }
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>10}",
            algo.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        if sink.enabled() {
            sweep_docs.push(Json::obj(vec![
                ("algorithm", algo.label().into()),
                (
                    "worst_pair_by_cs_dwell",
                    Json::obj(vec![
                        ("2", cells[0].into()),
                        ("20", cells[1].into()),
                        ("200", cells[2].into()),
                        ("2000", cells[3].into()),
                    ]),
                ),
            ]));
        }
    }
    println!();
    println!("reading: the two baselines' cost grows without bound as winners dwell");
    println!("longer; the paper's local-spin algorithms are flat — the whole point.");

    sink.put("schema", "kex-bench/table1/v1".into());
    sink.put("configs", Json::arr(config_docs));
    sink.put("dsm_dwell_sweep_n8_k2", Json::arr(sweep_docs));
    sink.finish();
}

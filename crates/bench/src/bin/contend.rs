//! E12: wall-clock contention benchmark over the native algorithms.
//!
//! For each native algorithm this spawns T ∈ {1, 2, 4, k, 2k,
//! oversubscribed} threads doing closed-loop acquire→CS→release cycles
//! and reports throughput, sampled latency percentiles, and per-thread
//! fairness. Always writes a JSON document (default
//! `BENCH_contend.json`) via the shared report writer.
//!
//! ```text
//! contend [--smoke] [--json <path>] [--duration-ms <n>]
//!         [--threads <a,b,c>] [--algo <name,...>]
//!         [--baseline <seqcst.json>] [--backoff]
//! ```
//!
//! * `--smoke` — CI mode: 2 threads, short window, schema self-check.
//! * `--baseline` — a document produced by the `--features seqcst`
//!   build of this binary; per-algorithm throughput deltas between the
//!   SeqCst and relaxed-ordering builds are recorded under
//!   `relaxation` (the tentpole's before/after evidence).
//! * `--backoff` — additionally sweep `BackoffCfg` thresholds on three
//!   representative algorithms (justifies the library defaults).
//!
//! Methodology caveats live in `EXPERIMENTS.md` E12.

use std::time::Duration;

use kex_bench::contend::{run_contended, RunConfig, RunStats};
use kex_bench::JsonSink;
use kex_core::native::{
    CcChainKex, DsmChainKex, FastPathKex, KAssignment, McsLock, QueueKex, RawKex, Resilient,
    SemaphoreKex, TreeKex, YangAndersonLock,
};
use kex_obs::json::{self, Json};
use kex_util::{set_global_backoff, BackoffCfg};
use kex_waitfree::{SlotCounter, WfQueue};

/// The resiliency/admission knob for the k > 1 algorithms.
const K: usize = 4;

/// One benchmarked algorithm: name, its `k`, and an operation factory
/// (fresh instance per thread count, so no state leaks across runs).
struct Algo {
    name: &'static str,
    k: usize,
    make: fn(threads: usize) -> Box<dyn Fn(usize) + Sync>,
}

/// Universe size for a `k`-slot algorithm driven by `threads` threads
/// (pids are thread indices; the paper's algorithms need `k < n`).
fn universe(threads: usize, k: usize) -> usize {
    threads.max(k + 1)
}

fn kex_op<L: RawKex + 'static>(lock: L) -> Box<dyn Fn(usize) + Sync> {
    Box::new(move |p| {
        lock.acquire(p);
        std::hint::black_box(p);
        lock.release(p);
    })
}

fn algorithms() -> Vec<Algo> {
    vec![
        Algo {
            name: "fig2",
            k: K,
            make: |t| kex_op(CcChainKex::new(universe(t, K), K)),
        },
        Algo {
            name: "fig6",
            k: K,
            make: |t| kex_op(DsmChainKex::new(universe(t, K), K)),
        },
        Algo {
            name: "tree",
            k: K,
            make: |t| kex_op(TreeKex::cc(universe(t, K), K)),
        },
        Algo {
            name: "fast_path",
            k: K,
            make: |t| kex_op(FastPathKex::new(universe(t, K), K)),
        },
        Algo {
            name: "fig1",
            k: K,
            make: |t| kex_op(QueueKex::new(universe(t, K), K)),
        },
        Algo {
            name: "semaphore",
            k: K,
            make: |t| kex_op(SemaphoreKex::new(universe(t, K), K)),
        },
        Algo {
            name: "mcs",
            k: 1,
            make: |t| kex_op(McsLock::new(t.max(2))),
        },
        Algo {
            name: "yang_anderson",
            k: 1,
            make: |t| kex_op(YangAndersonLock::new(t.max(2))),
        },
        Algo {
            name: "assignment",
            k: K,
            make: |t| {
                let pool = KAssignment::new(universe(t, K), K);
                Box::new(move |p| {
                    let guard = pool.enter(p);
                    std::hint::black_box(guard.name());
                })
            },
        },
        Algo {
            name: "resilient_counter",
            k: K,
            make: |t| {
                let obj = Resilient::new(universe(t, K), K, SlotCounter::new(K));
                Box::new(move |p| {
                    obj.with(p, |counter, name| counter.add(name, 1));
                })
            },
        },
        Algo {
            name: "resilient_queue",
            k: K,
            make: |t| {
                let obj = Resilient::new(universe(t, K), K, WfQueue::<u64>::new(K));
                Box::new(move |p| {
                    obj.with(p, |queue, name| {
                        queue.enqueue(name, p as u64);
                        std::hint::black_box(queue.dequeue(name));
                    });
                })
            },
        },
    ]
}

#[derive(Debug)]
struct Options {
    smoke: bool,
    backoff_sweep: bool,
    duration: Duration,
    threads: Vec<usize>,
    algos: Option<Vec<String>>,
    baseline: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        backoff_sweep: false,
        duration: Duration::from_millis(300),
        // 1, 2, 4, k, 2k, oversubscribed (the host is allowed to have
        // fewer cores than 16 — oversubscription is part of the design).
        threads: vec![1, 2, 4, K, 2 * K, 16],
        algos: None,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--backoff" => opts.backoff_sweep = true,
            "--json" => {
                args.next(); // consumed by JsonSink::from_args
            }
            "--duration-ms" => {
                let ms = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| usage("--duration-ms needs an integer"));
                opts.duration = Duration::from_millis(ms);
            }
            "--threads" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a list"));
                opts.threads = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t >= 1)
                            .unwrap_or_else(|| usage("--threads entries must be positive"))
                    })
                    .collect();
            }
            "--algo" => {
                let list = args.next().unwrap_or_else(|| usage("--algo needs a list"));
                opts.algos = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--baseline" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| usage("--baseline needs a path"));
                opts.baseline = Some(path.into());
            }
            other if other.starts_with("--json=") => {}
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if opts.smoke {
        opts.threads = vec![2];
        opts.duration = Duration::from_millis(60);
    }
    opts.threads.sort_unstable();
    opts.threads.dedup();
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("contend: {msg}");
    eprintln!(
        "usage: contend [--smoke] [--json <path>] [--duration-ms <n>] \
         [--threads <a,b,c>] [--algo <names>] [--baseline <json>] [--backoff]"
    );
    std::process::exit(2);
}

fn ordering_build() -> &'static str {
    if cfg!(feature = "seqcst") {
        "seqcst"
    } else {
        "relaxed"
    }
}

fn stats_json(s: &RunStats) -> Json {
    Json::obj(vec![
        ("threads", s.threads.into()),
        ("total_ops", s.total_ops.into()),
        ("elapsed_ms", (s.elapsed.as_secs_f64() * 1e3).into()),
        ("ops_per_sec", s.ops_per_sec().into()),
        ("p50_ns", s.p50_ns.into()),
        ("p90_ns", s.p90_ns.into()),
        ("p99_ns", s.p99_ns.into()),
        ("p999_ns", s.p999_ns.into()),
        ("latency_samples", s.samples.into()),
        ("min_thread_ops", s.min_thread_ops.into()),
        ("max_thread_ops", s.max_thread_ops.into()),
    ])
}

/// Pull `algorithms[name].runs[threads].ops_per_sec` out of a baseline
/// document produced by the `--features seqcst` build.
fn baseline_throughput(doc: &Json, algo: &str, threads: usize) -> Option<f64> {
    doc.get("algorithms")?
        .as_arr()?
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some(algo))?
        .get("runs")?
        .as_arr()?
        .iter()
        .find(|r| r.get("threads").and_then(Json::as_u64) == Some(threads as u64))?
        .get("ops_per_sec")?
        .as_f64()
}

fn main() {
    let opts = parse_args();
    let mut sink = JsonSink::from_args_or_default("BENCH_contend.json");
    let cfg = RunConfig::with_duration(opts.duration);
    let cases: Vec<Algo> = algorithms()
        .into_iter()
        .filter(|a| {
            opts.algos
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == a.name))
        })
        .collect();
    if cases.is_empty() {
        usage("--algo matched no algorithm");
    }

    let baseline_doc = opts.baseline.as_ref().map(|path| {
        let doc = json::read_file(path).unwrap_or_else(|e| {
            eprintln!("contend: {e}");
            std::process::exit(2);
        });
        let build = doc.get("ordering_build").and_then(Json::as_str);
        if build != Some("seqcst") {
            eprintln!(
                "contend: --baseline document has ordering_build {build:?}, expected \"seqcst\""
            );
            std::process::exit(2);
        }
        doc
    });

    println!(
        "contend: build={} threads={:?} window={:?} cpus={}",
        ordering_build(),
        opts.threads,
        opts.duration,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );

    let mut failures = 0u32;
    let mut algo_docs = Vec::new();
    let mut deltas: Vec<(String, usize, f64, f64, f64)> = Vec::new();
    // Median of several measured windows per cell: on a small host the
    // scheduler adds several percent of run-to-run noise, which single
    // windows cannot separate from the ordering deltas we record.
    let windows: usize = if opts.smoke { 1 } else { 3 };
    for case in &cases {
        let mut runs = Vec::new();
        for &threads in &opts.threads {
            let op = (case.make)(threads);
            let mut samples: Vec<_> = (0..windows)
                .map(|_| run_contended(threads, &cfg, &op))
                .collect();
            samples.sort_by(|a, z| a.ops_per_sec().total_cmp(&z.ops_per_sec()));
            let stats = samples[samples.len() / 2];
            println!(
                "  {:>17} T={:<2} {:>12.0} ops/s  p50={:>7} p90={:>7} p99={:>7} p999={:>8} ns  ops/thread={}..{}",
                case.name,
                threads,
                stats.ops_per_sec(),
                stats.p50_ns,
                stats.p90_ns,
                stats.p99_ns,
                stats.p999_ns,
                stats.min_thread_ops,
                stats.max_thread_ops,
            );
            if stats.total_ops == 0 || stats.samples == 0 {
                eprintln!("  FAIL: {} T={threads} made no progress", case.name);
                failures += 1;
            }
            if let Some(doc) = &baseline_doc {
                if threads > 1 {
                    if let Some(base) = baseline_throughput(doc, case.name, threads) {
                        let relaxed = stats.ops_per_sec();
                        let pct = (relaxed - base) / base * 100.0;
                        deltas.push((case.name.to_string(), threads, base, relaxed, pct));
                    }
                }
            }
            runs.push(stats_json(&stats));
        }
        algo_docs.push(Json::obj(vec![
            ("name", case.name.into()),
            ("k", case.k.into()),
            ("runs", Json::arr(runs)),
        ]));
    }

    let mut backoff_docs = Vec::new();
    if opts.backoff_sweep {
        println!("\n  backoff sweep (T=8):");
        let grid = [(0u32, 4u32), (2, 6), (4, 8), (6, 10), (8, 12), (10, 14)];
        for &(spin_limit, yield_limit) in &grid {
            set_global_backoff(BackoffCfg {
                spin_limit,
                yield_limit,
            });
            for name in ["fig2", "fast_path", "mcs"] {
                let case = algorithms().into_iter().find(|a| a.name == name).unwrap();
                let threads = if opts.smoke { 2 } else { 8 };
                let op = (case.make)(threads);
                let mut samples: Vec<_> = (0..windows)
                    .map(|_| run_contended(threads, &cfg, &op))
                    .collect();
                samples.sort_by(|a, z| a.ops_per_sec().total_cmp(&z.ops_per_sec()));
                let stats = samples[samples.len() / 2];
                println!(
                    "    spin={spin_limit:<2} yield={yield_limit:<2} {name:>9}: {:>12.0} ops/s",
                    stats.ops_per_sec()
                );
                backoff_docs.push(Json::obj(vec![
                    ("spin_limit", u64::from(spin_limit).into()),
                    ("yield_limit", u64::from(yield_limit).into()),
                    ("algo", name.into()),
                    ("threads", threads.into()),
                    ("ops_per_sec", stats.ops_per_sec().into()),
                ]));
            }
        }
        set_global_backoff(BackoffCfg::DEFAULT);
    }

    sink.put("schema", "kex-bench/contend/v1".into());
    sink.put("ordering_build", ordering_build().into());
    sink.put(
        "cpus",
        std::thread::available_parallelism()
            .map_or(0usize, |n| n.get())
            .into(),
    );
    sink.put("k", K.into());
    sink.put("duration_ms", (opts.duration.as_millis() as u64).into());
    sink.put("warmup_ms", (cfg.warmup.as_millis() as u64).into());
    sink.put("latency_sample_every", cfg.sample_every.into());
    sink.put("windows_per_cell", windows.into());
    sink.put(
        "thread_counts",
        Json::arr(opts.threads.iter().map(|&t| t.into()).collect()),
    );
    sink.put("algorithms", Json::arr(algo_docs));
    if !backoff_docs.is_empty() {
        sink.put("backoff_sweep", Json::arr(backoff_docs));
    }

    if let Some(doc) = &baseline_doc {
        sink.put(
            "baseline",
            Json::obj(vec![
                (
                    "source",
                    opts.baseline.as_ref().unwrap().display().to_string().into(),
                ),
                ("ordering_build", "seqcst".into()),
                (
                    "duration_ms",
                    doc.get("duration_ms").cloned().unwrap_or(Json::Null),
                ),
            ]),
        );
        deltas.sort_by(|a, z| z.4.total_cmp(&a.4));
        let per_algo: Vec<Json> = deltas
            .iter()
            .map(|(name, threads, base, relaxed, pct)| {
                Json::obj(vec![
                    ("algo", name.as_str().into()),
                    ("threads", (*threads).into()),
                    ("seqcst_ops_per_sec", (*base).into()),
                    ("relaxed_ops_per_sec", (*relaxed).into()),
                    ("improvement_pct", (*pct).into()),
                ])
            })
            .collect();
        if let Some((name, threads, base, relaxed, pct)) = deltas.first() {
            println!(
                "\n  best relaxation delta: {name} T={threads}: {base:.0} -> {relaxed:.0} ops/s ({pct:+.1}%)"
            );
            sink.put(
                "relaxation",
                Json::obj(vec![
                    (
                        "best",
                        Json::obj(vec![
                            ("algo", name.as_str().into()),
                            ("threads", (*threads).into()),
                            ("seqcst_ops_per_sec", (*base).into()),
                            ("relaxed_ops_per_sec", (*relaxed).into()),
                            ("improvement_pct", (*pct).into()),
                        ]),
                    ),
                    ("per_run", Json::arr(per_algo)),
                ]),
            );
        }
    }

    sink.finish();

    if failures > 0 {
        eprintln!("contend: {failures} run(s) made no progress");
        std::process::exit(1);
    }
    if opts.smoke {
        println!("SMOKE OK: every algorithm made progress at T=2");
    }
}

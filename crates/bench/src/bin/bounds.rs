//! E2–E6 — regenerate the theorem-bound curves: measured worst-case
//! remote references vs. the paper's formulas, across parameter sweeps.
//!
//! Usage: `cargo run --release -p kex-bench --bin bounds -- [thm1|thm2|thm3|thm4|thm5|thm6|thm7|thm8|thm9|all]`
//! (add `--json <path>` for a machine-readable copy of the curves run)

use kex_bench::{measure, JsonSink, Workload};
use kex_core::sim::{tree_depth, Algorithm};
use kex_obs::json::Json;

fn header(title: &str) {
    println!("==============================================================================");
    println!("{title}");
    println!("==============================================================================");
}

fn check(measured: u64, bound: u64) -> &'static str {
    if measured <= bound {
        "ok"
    } else {
        "VIOLATED"
    }
}

/// E2 — Theorems 1 and 5: the inductive chains, cost linear in `N - k`.
fn thm_chains() -> Json {
    header("E2 / Theorems 1 & 5: inductive chains — worst pair vs N (k = 2)");
    println!(
        "{:>4} | {:>8} {:>8} {:>5} | {:>8} {:>8} {:>5}",
        "N", "cc meas", "7(N-k)", "", "dsm meas", "14(N-k)", ""
    );
    let mut rows = Vec::new();
    for n in [3usize, 4, 6, 8, 12, 16] {
        let k = 2.min(n - 1);
        let cc = measure(&Workload::full(Algorithm::CcChain, n, k));
        let dsm = measure(&Workload::full(Algorithm::DsmChain, n, k));
        let b_cc = 7 * (n as u64 - k as u64);
        let b_dsm = 14 * (n as u64 - k as u64);
        println!(
            "{:>4} | {:>8} {:>8} {:>5} | {:>8} {:>8} {:>5}",
            n,
            cc.worst_pair,
            b_cc,
            check(cc.worst_pair, b_cc),
            dsm.worst_pair,
            b_dsm,
            check(dsm.worst_pair, b_dsm),
        );
        rows.push(Json::obj(vec![
            ("n", n.into()),
            ("k", k.into()),
            ("cc_worst_pair", cc.worst_pair.into()),
            ("cc_bound", b_cc.into()),
            ("dsm_worst_pair", dsm.worst_pair.into()),
            ("dsm_bound", b_dsm.into()),
            (
                "within_bound",
                (cc.worst_pair <= b_cc && dsm.worst_pair <= b_dsm).into(),
            ),
        ]));
    }
    println!("expected shape: linear growth in N, DSM constant about 2x the CC constant\n");
    Json::arr(rows)
}

/// E3 — Theorems 2 and 6: trees, cost logarithmic in `N/k`.
fn thm_trees() -> Json {
    header("E3 / Theorems 2 & 6: trees — worst pair vs N (k = 2)");
    println!(
        "{:>4} {:>6} | {:>8} {:>9} {:>5} | {:>8} {:>9} {:>5} | {:>9}",
        "N", "depth", "cc meas", "7k*depth", "", "dsm meas", "14k*depth", "", "chain 7(N-k)"
    );
    let mut rows = Vec::new();
    for n in [4usize, 8, 16, 32] {
        let k = 2;
        let depth = tree_depth(n, k) as u64;
        let cc = measure(&Workload::full(Algorithm::CcTree, n, k));
        let dsm = measure(&Workload::full(Algorithm::DsmTree, n, k));
        let b_cc = 7 * k as u64 * depth;
        let b_dsm = 14 * k as u64 * depth;
        println!(
            "{:>4} {:>6} | {:>8} {:>9} {:>5} | {:>8} {:>9} {:>5} | {:>9}",
            n,
            depth,
            cc.worst_pair,
            b_cc,
            check(cc.worst_pair, b_cc),
            dsm.worst_pair,
            b_dsm,
            check(dsm.worst_pair, b_dsm),
            7 * (n as u64 - k as u64),
        );
        rows.push(Json::obj(vec![
            ("n", n.into()),
            ("k", k.into()),
            ("depth", depth.into()),
            ("cc_worst_pair", cc.worst_pair.into()),
            ("cc_bound", b_cc.into()),
            ("dsm_worst_pair", dsm.worst_pair.into()),
            ("dsm_bound", b_dsm.into()),
            (
                "within_bound",
                (cc.worst_pair <= b_cc && dsm.worst_pair <= b_dsm).into(),
            ),
        ]));
    }
    println!("expected shape: logarithmic growth — the crossover vs the chain is at small N\n");
    Json::arr(rows)
}

/// E4 — Theorems 3 and 7: fast path; contention sweep shows the `k`
/// plateau and the crossover once contention exceeds `k`.
fn thm_fast_path() -> Json {
    header("E4 / Theorems 3 & 7: fast path — worst pair vs contention (N = 16, k = 4)");
    let (n, k) = (16usize, 4usize);
    println!(
        "{:>10} | {:>8} {:>8} | {:>8} {:>8}",
        "contention", "cc meas", "cc mean", "dsm meas", "dsm mean"
    );
    let mut sweep = Vec::new();
    for c in [1usize, 2, 4, 6, 8, 12, 16] {
        let cc = measure(&Workload::full(Algorithm::CcFastPath, n, k).contention(c));
        let dsm = measure(&Workload::full(Algorithm::DsmFastPath, n, k).contention(c));
        println!(
            "{:>10} | {:>8} {:>8.1} | {:>8} {:>8.1}",
            c, cc.worst_pair, cc.mean_pair, dsm.worst_pair, dsm.mean_pair
        );
        sweep.push(Json::obj(vec![
            ("contention", c.into()),
            ("cc_worst_pair", cc.worst_pair.into()),
            ("cc_mean_pair", cc.mean_pair.into()),
            ("dsm_worst_pair", dsm.worst_pair.into()),
            ("dsm_mean_pair", dsm.mean_pair.into()),
        ]));
    }
    println!("expected shape: flat O(k) plateau through contention <= k = 4, then a step up\n");

    header("E4b / Theorem 3: fast-path low-contention cost is independent of N (k = 2, c = 2)");
    println!("{:>4} | {:>8} {:>8}", "N", "cc meas", "dsm meas");
    let mut n_sweep = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let cc = measure(&Workload::full(Algorithm::CcFastPath, n, 2).contention(2));
        let dsm = measure(&Workload::full(Algorithm::DsmFastPath, n, 2).contention(2));
        println!("{:>4} | {:>8} {:>8}", n, cc.worst_pair, dsm.worst_pair);
        n_sweep.push(Json::obj(vec![
            ("n", n.into()),
            ("cc_worst_pair", cc.worst_pair.into()),
            ("dsm_worst_pair", dsm.worst_pair.into()),
        ]));
    }
    println!("expected shape: constant rows — N does not appear at low contention\n");
    Json::obj(vec![
        ("contention_sweep_n16_k4", Json::arr(sweep)),
        ("n_sweep_k2_c2", Json::arr(n_sweep)),
    ])
}

/// E5 — Theorems 4 and 8: graceful degradation, cost proportional to
/// `⌈c/k⌉` rather than stepping to the worst case.
fn thm_graceful() -> Json {
    header("E5 / Theorems 4 & 8: graceful degradation — worst pair vs contention (N = 24, k = 2)");
    let (n, k) = (24usize, 2usize);
    println!(
        "{:>10} {:>9} | {:>8} {:>8} | {:>8} {:>8} | {:>13}",
        "contention", "ceil(c/k)", "cc meas", "cc mean", "dsm meas", "dsm mean", "fastpath meas"
    );
    let mut rows = Vec::new();
    for c in [1usize, 2, 4, 8, 12, 16, 20, 24] {
        let cc = measure(&Workload::full(Algorithm::CcGraceful, n, k).contention(c));
        let dsm = measure(&Workload::full(Algorithm::DsmGraceful, n, k).contention(c));
        let fp = measure(&Workload::full(Algorithm::CcFastPath, n, k).contention(c));
        println!(
            "{:>10} {:>9} | {:>8} {:>8.1} | {:>8} {:>8.1} | {:>13}",
            c,
            c.div_ceil(k),
            cc.worst_pair,
            cc.mean_pair,
            dsm.worst_pair,
            dsm.mean_pair,
            fp.worst_pair,
        );
        rows.push(Json::obj(vec![
            ("contention", c.into()),
            ("ceil_c_over_k", c.div_ceil(k).into()),
            ("cc_worst_pair", cc.worst_pair.into()),
            ("cc_mean_pair", cc.mean_pair.into()),
            ("dsm_worst_pair", dsm.worst_pair.into()),
            ("dsm_mean_pair", dsm.mean_pair.into()),
            ("fastpath_worst_pair", fp.worst_pair.into()),
        ]));
    }
    println!("expected shape: graceful cost climbs smoothly with ceil(c/k); the plain fast");
    println!("path jumps to its full slow-path cost as soon as contention exceeds k\n");
    Json::arr(rows)
}

/// E6 — Theorems 9 and 10: k-assignment adds at most ~k to the
/// k-exclusion cost, with a name space of exactly k.
fn thm_assignment() -> Json {
    header("E6 / Theorems 9 & 10: k-assignment overhead (N = 16)");
    println!(
        "{:>3} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9}",
        "k", "cc kex", "cc assign", "overhead", "dsm kex", "dsm assign", "overhead"
    );
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 6] {
        let n = 16;
        let cc_kex = measure(&Workload::full(Algorithm::CcFastPath, n, k));
        let cc_asn = measure(&Workload::full(Algorithm::AssignmentCc, n, k));
        let dsm_kex = measure(&Workload::full(Algorithm::DsmFastPath, n, k));
        let dsm_asn = measure(&Workload::full(Algorithm::AssignmentDsm, n, k));
        println!(
            "{:>3} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9}",
            k,
            cc_kex.worst_pair,
            cc_asn.worst_pair,
            cc_asn.worst_pair as i64 - cc_kex.worst_pair as i64,
            dsm_kex.worst_pair,
            dsm_asn.worst_pair,
            dsm_asn.worst_pair as i64 - dsm_kex.worst_pair as i64,
        );
        rows.push(Json::obj(vec![
            ("n", n.into()),
            ("k", k.into()),
            ("cc_kex_worst_pair", cc_kex.worst_pair.into()),
            ("cc_assignment_worst_pair", cc_asn.worst_pair.into()),
            ("dsm_kex_worst_pair", dsm_kex.worst_pair.into()),
            ("dsm_assignment_worst_pair", dsm_asn.worst_pair.into()),
        ]));
    }
    println!("expected shape: overhead bounded by about k+1 (the Figure-7 TAS walk)\n");
    Json::arr(rows)
}

/// Figure 5 vs Figure 6: the price of bounding the spin-location space.
fn fig5_vs_fig6() -> Json {
    header("ablation / Figures 5 vs 6: unbounded vs bounded spin locations (DSM chains)");
    println!(
        "{:>4} | {:>10} {:>10} | {:>12}",
        "N", "fig5 meas", "fig6 meas", "fig6 - fig5"
    );
    let mut rows = Vec::new();
    for n in [3usize, 4, 6, 8] {
        let k = 2.min(n - 1);
        let f5 = measure(&Workload::full(Algorithm::DsmUnboundedChain, n, k));
        let f6 = measure(&Workload::full(Algorithm::DsmChain, n, k));
        println!(
            "{:>4} | {:>10} {:>10} | {:>12}",
            n,
            f5.worst_pair,
            f6.worst_pair,
            f6.worst_pair as i64 - f5.worst_pair as i64
        );
        rows.push(Json::obj(vec![
            ("n", n.into()),
            ("k", k.into()),
            ("fig5_worst_pair", f5.worst_pair.into()),
            ("fig6_worst_pair", f6.worst_pair.into()),
        ]));
    }
    println!("expected shape: fig6 costs ~6 more per stage (the R[] handshake), buying");
    println!("bounded space (k+2 locations/process) instead of an unbounded supply\n");
    Json::arr(rows)
}

/// Tree-arity ablation: the paper's Figure 3(a) merges two children per
/// level. Higher arity means a shallower tree but `(arity*k, k)` blocks
/// whose chains cost `7(arity-1)k` each — measure where the optimum sits.
fn arity_ablation() -> Json {
    use kex_core::sim::fig2_chain;
    use kex_core::sim::tree::{tree_depth_with_arity, tree_with_arity};
    use kex_sim::prelude::*;

    header("ablation / tree arity: worst pair vs arity (N = 32, k = 2, CC)");
    println!(
        "{:>6} {:>6} | {:>8} {:>20}",
        "arity", "depth", "meas", "7(a-1)k*depth bound"
    );
    let (n, k) = (32usize, 2usize);
    let mut rows = Vec::new();
    for arity in [2usize, 4, 8, 16] {
        let mut b = ProtocolBuilder::new(n);
        let root = tree_with_arity(&mut b, n, k, arity, &mut |b, m, k| fig2_chain(b, m, k));
        let proto = b.finish(root, k);
        let mut worst = 0;
        for seed in 0..8 {
            let mut sim = Sim::new(proto.clone(), MemoryModel::CacheCoherent)
                .cycles(15)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(100_000_000);
            report.assert_safe();
            worst = worst.max(report.stats.worst_pair());
        }
        let depth = tree_depth_with_arity(n, k, arity) as u64;
        let bound = 7 * (arity as u64 - 1) * k as u64 * depth;
        println!("{:>6} {:>6} | {:>8} {:>20}", arity, depth, worst, bound);
        rows.push(Json::obj(vec![
            ("arity", arity.into()),
            ("depth", depth.into()),
            ("worst_pair", worst.into()),
            ("bound", bound.into()),
        ]));
    }
    println!("expected shape: binary is at or near the optimum — doubling arity halves");
    println!("depth at best but multiplies per-level block cost by (arity-1)\n");
    Json::arr(rows)
}

/// §5's aspiration: how close do the `(N, 1)` instances come to the MCS
/// queue lock (the paper's \[12\]), the classic O(1)-RMR spin lock?
fn k1_vs_mcs() -> Json {
    use kex_core::sim::{mcs, yang_anderson};
    use kex_sim::prelude::*;
    use kex_sim::types::NodeId;

    let measure_root = |make: &dyn Fn(&mut ProtocolBuilder) -> NodeId, n: usize| {
        let mut b = ProtocolBuilder::new(n);
        let root = make(&mut b);
        let proto = b.finish(root, 1);
        let mut worst = 0;
        for seed in 0..8 {
            let mut sim = Sim::new(proto.clone(), MemoryModel::CacheCoherent)
                .cycles(15)
                .scheduler(RandomSched::new(seed))
                .timing(Timing {
                    ncs_steps: 1,
                    cs_steps: 2,
                })
                .build();
            let report = sim.run(100_000_000);
            report.assert_safe();
            worst = worst.max(report.stats.worst_pair());
        }
        worst
    };

    header("§5 aspiration: (N,1)-exclusion vs the reference spin locks — worst RMR pair");
    println!(
        "{:>4} | {:>9} {:>9} | {:>8} {:>8} {:>10} {:>10}",
        "N", "mcs[12]", "ya[14]", "chain", "tree", "fastpath", "graceful"
    );
    let mut rows = Vec::new();
    for n in [4usize, 8, 16, 32] {
        let mcs_worst = measure_root(&|b| mcs(b), n);
        let ya_worst = measure_root(&|b| yang_anderson(b), n);
        let chain = measure(&Workload::full(Algorithm::CcChain, n, 1));
        let tree = measure(&Workload::full(Algorithm::CcTree, n, 1));
        let fp = measure(&Workload::full(Algorithm::CcFastPath, n, 1));
        let gr = measure(&Workload::full(Algorithm::CcGraceful, n, 1));
        println!(
            "{:>4} | {:>9} {:>9} | {:>8} {:>8} {:>10} {:>10}",
            n, mcs_worst, ya_worst, chain.worst_pair, tree.worst_pair, fp.worst_pair, gr.worst_pair
        );
        rows.push(Json::obj(vec![
            ("n", n.into()),
            ("mcs_worst_pair", mcs_worst.into()),
            ("yang_anderson_worst_pair", ya_worst.into()),
            ("chain_worst_pair", chain.worst_pair.into()),
            ("tree_worst_pair", tree.worst_pair.into()),
            ("fastpath_worst_pair", fp.worst_pair.into()),
            ("graceful_worst_pair", gr.worst_pair.into()),
        ]));
    }
    println!("expected shape: MCS (swap+CAS) is O(1) and flat; Yang-Anderson (read/");
    println!("write only) and the paper's k = 1 instances (fetch&inc) grow with log N.");
    println!("the reference locks pay with zero crash resilience, which is the");
    println!("paper's whole subject.\n");
    Json::arr(rows)
}

/// Waiting-time fairness: the RMR measure deliberately ignores local
/// spinning, so an algorithm can be RMR-cheap yet keep individual
/// processes waiting long. Compare worst entry-section waiting (own
/// steps) across algorithms at full contention.
fn fairness() -> Json {
    header("ablation / fairness: entry-section waiting (own steps), N = 12, k = 3");
    println!(
        "{:<24} {:>10} {:>10} {:>12}",
        "algorithm", "p99 wait", "worst wait", "worst RMR"
    );
    let mut rows = Vec::new();
    for algo in [
        Algorithm::QueueFig1,
        Algorithm::CcChain,
        Algorithm::CcTree,
        Algorithm::CcFastPath,
        Algorithm::CcGraceful,
        Algorithm::DsmChain,
    ] {
        let m = measure(&Workload::full(algo, 12, 3).dwell(1, 4));
        println!(
            "{:<24} {:>10} {:>10} {:>12}",
            algo.label(),
            m.p99_wait_steps,
            m.worst_wait_steps,
            m.worst_pair
        );
        rows.push(Json::obj(vec![
            ("algorithm", algo.label().into()),
            ("p99_wait_steps", m.p99_wait_steps.into()),
            ("worst_wait_steps", m.worst_wait_steps.into()),
            ("worst_pair", m.worst_pair.into()),
        ]));
    }
    println!("reading: the FIFO queue has the tightest waiting spread but the worst");
    println!("implementability; the local-spin algorithms trade some waiting-time");
    println!("variance for bounded RMRs (starvation-freedom is still guaranteed and");
    println!("verified by the model checker)\n");
    Json::arr(rows)
}

fn main() {
    let mut sink = JsonSink::from_args();
    // First non-flag argument selects the experiment (`--json <path>` is
    // consumed by the sink but skipped here).
    let mut arg = "all".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            args.next();
        } else if !a.starts_with("--") {
            arg = a;
            break;
        }
    }
    type Experiment = (&'static str, fn() -> Json);
    let experiments: &[Experiment] = &[
        ("chains", thm_chains),
        ("trees", thm_trees),
        ("fast_path", thm_fast_path),
        ("graceful", thm_graceful),
        ("assignment", thm_assignment),
        ("fig5_vs_fig6", fig5_vs_fig6),
        ("fairness", fairness),
        ("arity", arity_ablation),
        ("k1_vs_mcs", k1_vs_mcs),
    ];
    let selected: &[&str] = match arg.as_str() {
        "thm1" | "thm5" => &["chains"],
        "thm2" | "thm6" => &["trees"],
        "thm3" | "thm7" => &["fast_path"],
        "thm4" | "thm8" => &["graceful"],
        "thm9" | "thm10" => &["assignment"],
        "fig5" => &["fig5_vs_fig6"],
        "fairness" => &["fairness"],
        "arity" => &["arity"],
        "mcs" => &["k1_vs_mcs"],
        "all" => &[
            "chains",
            "trees",
            "fast_path",
            "graceful",
            "assignment",
            "fig5_vs_fig6",
            "fairness",
            "arity",
            "k1_vs_mcs",
        ],
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("usage: bounds -- [thm1|thm2|thm3|thm4|thm9|fig5|fairness|arity|mcs|all] [--json <path>]");
            std::process::exit(2);
        }
    };
    sink.put("schema", "kex-bench/bounds/v1".into());
    for (name, run) in experiments {
        if selected.contains(name) {
            let doc = run();
            sink.put(name, doc);
        }
    }
    sink.finish();
}

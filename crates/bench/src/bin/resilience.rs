//! E7 — the resiliency experiment: inject `f = 0 .. k` crash failures
//! (inside the critical section — the worst case) and measure whether
//! survivors keep completing acquisitions.
//!
//! Expected shape (the §1 claim): the paper's algorithms make full
//! progress for every `f <= k-1` and wedge at `f = k`; the Figure-1
//! queue baseline wedges at `f = 1` when the victim dies *waiting*.
//!
//! Run: `cargo run --release -p kex-bench --bin resilience`
//! (add `--json <path>` for a machine-readable copy)

use kex_bench::JsonSink;
use kex_core::sim::Algorithm;
use kex_obs::json::Json;
use kex_sim::prelude::*;

const N: usize = 10;
const K: usize = 3;
const CYCLES: u64 = 12;
const STEP_BUDGET: u64 = 30_000_000;

/// Crash `f` processes in their critical sections; return
/// `(survivors_done, survivors_total, wedged)`.
fn run(algo: Algorithm, f: usize, seed: u64, crash_waiting: bool) -> (usize, usize, bool) {
    let proto = algo.build(N, K, 4096);
    let mut plan = FailurePlan::new();
    for pid in 0..f {
        plan.push(FailureSpec {
            pid,
            when: if crash_waiting {
                FailWhen::WhileContending { after_own_steps: 3 }
            } else {
                FailWhen::InCriticalSection
            },
        });
    }
    let mut sim = Sim::new(proto, algo.model())
        .cycles(CYCLES)
        .scheduler(RandomSched::new(seed))
        .failures(plan)
        .timing(Timing {
            ncs_steps: 1,
            cs_steps: 3,
        })
        .build();
    let report = sim.run(STEP_BUDGET);
    report.assert_safe();
    let done = report.completed[f..]
        .iter()
        .filter(|&&c| c == CYCLES)
        .count();
    (done, N - f, report.stop == StopReason::StepBudget)
}

fn cell_json(done: usize, total: usize, wedged: bool) -> Json {
    Json::obj(vec![
        ("survivors_done", done.into()),
        ("survivors", total.into()),
        ("wedged", wedged.into()),
    ])
}

fn main() {
    let mut sink = JsonSink::from_args();
    println!("E7: resiliency — {N} processes, k = {K}, crashes inside the CS");
    println!(
        "(paper claim: (k-1)-resilient, i.e. full progress for f <= {})\n",
        K - 1
    );
    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>9}",
        "algorithm", "f=0", "f=1", "f=2", "f=3 (=k)"
    );
    println!("{}", "-".repeat(60));
    let algos = [
        Algorithm::CcChain,
        Algorithm::CcTree,
        Algorithm::CcFastPath,
        Algorithm::CcGraceful,
        Algorithm::DsmChain,
        Algorithm::DsmFastPath,
        Algorithm::AssignmentCc,
        Algorithm::AssignmentDsm,
        Algorithm::QueueFig1,
        Algorithm::GlobalSpin,
    ];
    let mut cs_docs = Vec::new();
    for algo in algos {
        let mut cells = Vec::new();
        let mut f_docs = Vec::new();
        for f in 0..=K {
            let (done, total, wedged) = run(algo, f, 7, false);
            cells.push(if done == total {
                format!("{done}/{total}")
            } else if wedged {
                format!("{done}/{total}*")
            } else {
                format!("{done}/{total}?")
            });
            if sink.enabled() {
                f_docs.push(cell_json(done, total, wedged));
            }
        }
        println!(
            "{:<24} {:>7} {:>7} {:>7} {:>9}",
            algo.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        if sink.enabled() {
            cs_docs.push(Json::obj(vec![
                ("algorithm", algo.label().into()),
                ("by_failures", Json::arr(f_docs)),
            ]));
        }
    }
    println!("\ncells: survivors-finished / survivors; '*' = run wedged (step budget hit)");
    println!(
        "expected: every paper algorithm reads 7/7 up to f = {}, wedges at f = {K};",
        K - 1
    );
    println!("(global-spin also survives CS crashes of f < k but is not starvation-free)\n");

    println!("crashes while WAITING (after the entry decrement), f = 1 .. k:");
    println!(
        "{:<24} {:>7} {:>7} {:>9}",
        "algorithm", "f=1", "f=2", "f=3 (=k)"
    );
    println!("{}", "-".repeat(52));
    let mut waiting_docs = Vec::new();
    for algo in [
        Algorithm::QueueFig1,
        Algorithm::CcChain,
        Algorithm::DsmChain,
    ] {
        let mut cells = Vec::new();
        let mut f_docs = Vec::new();
        for f in 1..=K {
            let (done, total, wedged) = run(algo, f, 7, true);
            cells.push(if done == total {
                format!("{done}/{total}")
            } else if wedged {
                format!("{done}/{total}*")
            } else {
                format!("{done}/{total}?")
            });
            if sink.enabled() {
                f_docs.push(cell_json(done, total, wedged));
            }
        }
        println!(
            "{:<24} {:>7} {:>7} {:>9}",
            algo.label(),
            cells[0],
            cells[1],
            cells[2]
        );
        if sink.enabled() {
            waiting_docs.push(Json::obj(vec![
                ("algorithm", algo.label().into()),
                ("by_failures_from_1", Json::arr(f_docs)),
            ]));
        }
    }
    println!("\nexpected: each waiting crash permanently consumes one slot in every");
    println!("counting algorithm (atomic Figure 1 included); all survive f <= k-1 and");
    println!("wedge at f = k. Figure 1's actual defect — that its multi-word atomic");
    println!("sections cannot be built from realistic primitives — is demonstrated by");
    println!("the `fig1_nonatomic` negative control in the test suite, where the model");
    println!("checker finds a k-exclusion violation after the brackets are removed.");

    sink.put("schema", "kex-bench/resilience/v1".into());
    sink.put("n", N.into());
    sink.put("k", K.into());
    sink.put("cycles", CYCLES.into());
    sink.put("crash_in_cs", Json::arr(cs_docs));
    sink.put("crash_while_waiting", Json::arr(waiting_docs));
    sink.finish();
}

//! Multi-threaded contention measurement machinery for the `contend`
//! binary (EXPERIMENTS.md E12).
//!
//! [`run_contended`] spawns `T` OS threads that hammer one shared
//! operation (an acquire→critical-section→release cycle) for a fixed
//! wall-clock window after a warmup, and reports throughput, per-op
//! latency percentiles, and per-thread fairness. Latency is *sampled*
//! (every [`RunConfig::sample_every`]-th operation is timed) so the
//! `Instant::now` overhead does not dominate short critical sections,
//! and recorded into a log-linear [`LatencyHist`] whose buckets bound
//! the relative error to ~6% — plenty for the shapes these benches
//! chart, in the same spirit as the [`crate::microbench`] runner's
//! median-only reporting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Number of log-linear sub-bucket bits (16 sub-buckets per power of 2).
const SUB_BITS: u32 = 4;
/// Sub-buckets per major (power-of-two) bucket.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: 64 majors × 16 subs.
const BUCKETS: usize = 64 * SUBS;

/// A log-linear latency histogram over nanoseconds: the major bucket is
/// `floor(log2 ns)`, subdivided into 16 linear sub-buckets, so any
/// recorded value lands in a bucket whose width is at most 1/16th of the
/// value (≈6% worst-case relative error), using a fixed 8 KiB table.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    fn index(ns: u64) -> usize {
        let v = ns.max(1);
        let major = 63 - v.leading_zeros();
        if major <= SUB_BITS {
            // Values below 2^(SUB_BITS+1) index directly: exact.
            v as usize
        } else {
            let sub = ((v >> (major - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
            (major as usize) * SUBS + sub
        }
    }

    /// A representative (midpoint) value for bucket `idx`.
    fn midpoint(idx: usize) -> u64 {
        if idx < 2 * SUBS {
            return idx as u64;
        }
        let major = (idx / SUBS) as u32;
        let sub = (idx % SUBS) as u64;
        let low = (1u64 << major) + (sub << (major - SUB_BITS));
        low + (1u64 << (major - SUB_BITS)) / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// The latency (ns) at quantile `q` in `[0, 1]`; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::midpoint(idx);
            }
        }
        Self::midpoint(BUCKETS - 1)
    }
}

/// Timing parameters for one [`run_contended`] call.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Measured window.
    pub duration: Duration,
    /// Un-measured ramp-up before the window opens (threads already
    /// running, caches and backoff states warm).
    pub warmup: Duration,
    /// Time every Nth operation for the latency histogram.
    pub sample_every: u64,
}

impl RunConfig {
    /// A config with the given measured window and proportionate warmup.
    pub fn with_duration(duration: Duration) -> Self {
        RunConfig {
            duration,
            warmup: (duration / 4).min(Duration::from_millis(100)),
            sample_every: 8,
        }
    }
}

/// What one [`run_contended`] call measured.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Thread count of the run.
    pub threads: usize,
    /// Actual measured-window length.
    pub elapsed: Duration,
    /// Operations completed inside the window, all threads.
    pub total_ops: u64,
    /// Fewest operations any single thread completed (fairness floor).
    pub min_thread_ops: u64,
    /// Most operations any single thread completed (fairness ceiling).
    pub max_thread_ops: u64,
    /// Median sampled latency, ns.
    pub p50_ns: u64,
    /// 90th-percentile sampled latency, ns.
    pub p90_ns: u64,
    /// 99th-percentile sampled latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile sampled latency, ns.
    pub p999_ns: u64,
    /// Latency samples taken.
    pub samples: u64,
}

impl RunStats {
    /// Aggregate operations per second over the measured window.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `op(thread_index)` in a closed loop on `threads` OS threads and
/// measures the window after `cfg.warmup`. `op` must be one complete
/// acquire→work→release cycle (it is called back-to-back with no think
/// time, the maximum-contention regime).
pub fn run_contended<F>(threads: usize, cfg: &RunConfig, op: F) -> RunStats
where
    F: Fn(usize) + Sync,
{
    assert!(threads >= 1);
    let start_line = Barrier::new(threads + 1);
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut elapsed = Duration::ZERO;

    let per_thread: Vec<(u64, LatencyHist)> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (op, start_line, measuring, stop) = (&op, &start_line, &measuring, &stop);
            handles.push(s.spawn(move || {
                let mut ops: u64 = 0;
                let mut cycle: u64 = 0;
                let mut hist = LatencyHist::new();
                start_line.wait();
                while !stop.load(Ordering::Relaxed) {
                    cycle += 1;
                    if measuring.load(Ordering::Relaxed) {
                        if cycle.is_multiple_of(cfg.sample_every) {
                            let begin = Instant::now();
                            op(t);
                            hist.record(begin.elapsed().as_nanos() as u64);
                        } else {
                            op(t);
                        }
                        ops += 1;
                    } else {
                        op(t);
                        ops = 0; // warmup ops don't count
                    }
                }
                (ops, hist)
            }));
        }
        start_line.wait();
        std::thread::sleep(cfg.warmup);
        let window = Instant::now();
        measuring.store(true, Ordering::Relaxed);
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        elapsed = window.elapsed();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut hist = LatencyHist::new();
    let mut total_ops = 0;
    let mut min_thread_ops = u64::MAX;
    let mut max_thread_ops = 0;
    for (ops, thread_hist) in &per_thread {
        total_ops += ops;
        min_thread_ops = min_thread_ops.min(*ops);
        max_thread_ops = max_thread_ops.max(*ops);
        hist.merge(thread_hist);
    }
    RunStats {
        threads,
        elapsed,
        total_ops,
        min_thread_ops,
        max_thread_ops,
        p50_ns: hist.percentile(0.50),
        p90_ns: hist.percentile(0.90),
        p99_ns: hist.percentile(0.99),
        p999_ns: hist.percentile(0.999),
        samples: hist.samples(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_bound_relative_error() {
        let mut h = LatencyHist::new();
        for v in [1u64, 7, 100, 1_000, 55_555, 9_999_999] {
            h.record(v);
            let back = LatencyHist::midpoint(LatencyHist::index(v));
            let err = (back as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.07, "value {v} came back as {back} ({err:.3})");
        }
        assert_eq!(h.samples(), 6);
    }

    #[test]
    fn percentiles_are_ordered_and_merge_adds_up() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for i in 1..=1000u64 {
            a.record(i);
        }
        // Five outliers: >0.1% of the mass, so they own the p999 rank
        // (ceil(0.999 * 1005) = 1004 > 1000) but not the p99 one.
        for _ in 0..5 {
            b.record(1_000_000);
        }
        a.merge(&b);
        assert_eq!(a.samples(), 1005);
        let (p50, p90, p99, p999) = (
            a.percentile(0.50),
            a.percentile(0.90),
            a.percentile(0.99),
            a.percentile(0.999),
        );
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        // The single outlier should only surface at the very tail.
        assert!(p99 < 2000, "p99 = {p99}");
        assert!(p999 >= 900_000, "p999 = {p999}");
        assert_eq!(LatencyHist::new().percentile(0.5), 0);
    }

    #[test]
    fn run_contended_counts_real_work() {
        use std::sync::atomic::AtomicU64;
        let counter = AtomicU64::new(0);
        let cfg = RunConfig {
            duration: Duration::from_millis(30),
            warmup: Duration::from_millis(5),
            sample_every: 4,
        };
        let stats = run_contended(2, &cfg, |_t| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.threads, 2);
        assert!(stats.total_ops > 0);
        assert!(stats.samples > 0);
        assert!(stats.min_thread_ops <= stats.max_thread_ops);
        assert!(stats.total_ops <= counter.load(Ordering::Relaxed));
        assert!(stats.ops_per_sec() > 0.0);
        assert!(stats.elapsed >= cfg.duration);
    }
}

//! Structured output for the experiment binaries.
//!
//! Every binary accepts `--json <path>`: alongside its human-readable
//! tables it then writes one machine-readable JSON document, so recorded
//! results (e.g. the committed `BENCH_native.json`) can be regenerated
//! and diffed instead of eyeballed. The value model and writer come from
//! `kex_obs::json` — no external serialization dependency.

use std::path::PathBuf;

use kex_obs::json::Json;

use crate::Measurement;

/// Collects a JSON document and writes it on [`JsonSink::finish`] if the
/// command line asked for one.
#[derive(Debug)]
pub struct JsonSink {
    path: Option<PathBuf>,
    fields: Vec<(String, Json)>,
}

impl JsonSink {
    /// Build a sink from the process arguments: `--json <path>` (or
    /// `--json=<path>`) enables it. Unknown arguments are left for the
    /// caller to interpret.
    pub fn from_args() -> Self {
        let mut path = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--json" {
                path = args.next().map(PathBuf::from);
                if path.is_none() {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            } else if let Some(rest) = arg.strip_prefix("--json=") {
                path = Some(PathBuf::from(rest));
            }
        }
        JsonSink {
            path,
            fields: Vec::new(),
        }
    }

    /// Like [`JsonSink::from_args`], but falls back to `default_path`
    /// when the command line gave no `--json` — for binaries that always
    /// write their document (e.g. `native_obs`).
    pub fn from_args_or_default(default_path: &str) -> Self {
        let mut sink = Self::from_args();
        if sink.path.is_none() {
            sink.path = Some(PathBuf::from(default_path));
        }
        sink
    }

    /// Whether a `--json` path was given (callers can skip building
    /// expensive structures otherwise).
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Add a top-level field to the document.
    pub fn put(&mut self, key: &str, value: Json) {
        self.fields.push((key.to_owned(), value));
    }

    /// Write the document if enabled. Call last; exits with an error
    /// message on I/O failure (experiments should not silently lose
    /// their recorded output).
    pub fn finish(self) {
        if let Some(path) = self.path {
            let doc = Json::Obj(self.fields);
            match kex_obs::json::write_pretty(&path, &doc) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}

/// A [`Measurement`] as a JSON object (field names match the struct).
pub fn measurement_json(m: &Measurement) -> Json {
    Json::obj(vec![
        ("worst_pair", m.worst_pair.into()),
        ("mean_pair", m.mean_pair.into()),
        ("worst_entry", m.worst_entry.into()),
        ("worst_wait_steps", m.worst_wait_steps.into()),
        ("p99_wait_steps", m.p99_wait_steps.into()),
        ("acquisitions", m.acquisitions.into()),
        ("peak_contention", m.peak_contention.into()),
    ])
}

//! Self-tests for the vendored model checker: it must (a) pass correct
//! code, (b) find classic races, deadlocks and lost wakeups, and (c)
//! explore spin loops without hanging. These run under the normal
//! tier-1 `cargo test` (no `--cfg loom` needed — that cfg only selects
//! the facade re-exports in `kex-util`).

use std::sync::Arc;

use kex_loom::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use kex_loom::sync::{Condvar, Mutex};
use kex_loom::{thread, Builder};

#[test]
fn atomic_increment_is_clean() {
    let stats = kex_loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, SeqCst);
        });
        x.fetch_add(1, SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(SeqCst), 2);
    });
    assert!(stats.executions > 1, "must explore >1 interleaving");
}

#[test]
fn load_store_increment_race_is_found() {
    let msg = kex_loom::check_expecting_failure(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            let v = x2.load(SeqCst);
            x2.store(v + 1, SeqCst);
        });
        let v = x.load(SeqCst);
        x.store(v + 1, SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

#[test]
fn mutex_serializes_critical_sections() {
    kex_loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                let inside = Arc::clone(&inside);
                thread::spawn(move || {
                    let mut g = m.lock();
                    assert_eq!(inside.fetch_add(1, SeqCst), 0, "two threads in CS");
                    *g += 1;
                    inside.fetch_sub(1, SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2);
    });
}

#[test]
fn ab_ba_deadlock_is_found() {
    let msg = kex_loom::check_expecting_failure(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn condvar_handshake_has_no_lost_wakeup() {
    kex_loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    });
}

#[test]
fn unsynchronized_predicate_loses_wakeup() {
    // The flag is written outside the mutex, so the notify can land
    // between the waiter's predicate check and its wait — the textbook
    // lost wakeup. The checker must find the schedule where the waiter
    // sleeps forever.
    let msg = kex_loom::check_expecting_failure(|| {
        let m = Arc::new(Mutex::new(())); // does not protect `flag`
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (m2, cv2, flag2) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&flag));
        let t = thread::spawn(move || {
            let mut g = m2.lock();
            while !flag2.load(SeqCst) {
                cv2.wait(&mut g);
            }
        });
        flag.store(true, SeqCst);
        cv.notify_one();
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn spin_loop_is_explorable_and_terminates() {
    kex_loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            while !flag2.load(SeqCst) {
                kex_loom::hint::spin_loop();
            }
        });
        flag.store(true, SeqCst);
        t.join().unwrap();
    });
}

#[test]
fn stuck_spinner_is_reported_as_deadlock() {
    let msg = kex_loom::check_expecting_failure(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        // Nobody ever sets the flag: once the main thread finishes, the
        // spinner can never be woken by a write.
        let t = thread::spawn(move || {
            while !flag2.load(SeqCst) {
                kex_loom::hint::spin_loop();
            }
        });
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn join_returns_the_thread_value() {
    kex_loom::model(|| {
        let t = thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
}

#[test]
fn preemption_bound_shrinks_the_search() {
    let run = |bound: Option<u32>| {
        let mut b = Builder::new();
        if let Some(p) = bound {
            b = b.max_preemptions(p);
        }
        b.check(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        x.fetch_add(1, SeqCst);
                        x.fetch_add(1, SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(x.load(SeqCst), 4);
        })
    };
    if std::env::var_os("LOOM_MAX_PREEMPTIONS").is_some() {
        return; // env override would equalize the two runs
    }
    let exhaustive = run(None);
    let bounded = run(Some(0));
    assert!(
        bounded.executions < exhaustive.executions,
        "bound {} !< exhaustive {}",
        bounded.executions,
        exhaustive.executions
    );
}

#[test]
fn yield_demotion_still_finds_races_after_spin() {
    // A race *after* a spin-wait must still be detected: the demotion
    // reduction must not prune real post-wakeup interleavings.
    let msg = kex_loom::check_expecting_failure(|| {
        let gate = Arc::new(AtomicBool::new(false));
        let x = Arc::new(AtomicUsize::new(0));
        let (gate2, x2) = (Arc::clone(&gate), Arc::clone(&x));
        let t = thread::spawn(move || {
            while !gate2.load(SeqCst) {
                kex_loom::hint::spin_loop();
            }
            let v = x2.load(SeqCst);
            x2.store(v + 1, SeqCst);
        });
        gate.store(true, SeqCst);
        let v = x.load(SeqCst);
        x.store(v + 1, SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

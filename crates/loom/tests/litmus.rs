//! Litmus self-tests for the weak-memory backend.
//!
//! Each test runs a classic litmus shape (SB, MP, LB, IRIW) under
//! `Builder::weak_memory(true)` and pins which outcomes the backend must
//! *produce* (allowed under the declared orderings) and which it must
//! *never* produce (forbidden — the property the kex algorithms rely
//! on). Observed-outcome tests collect results across all executions
//! and check the set afterwards; forbidden-outcome tests assert inside
//! the model so any schedule/read-from combination producing the
//! outcome fails with its schedule.
//!
//! LB is pinned *forbidden* even under Relaxed: the operational
//! semantics never produces load-buffering cycles (a documented
//! under-approximation, safe for checking that forbidden outcomes stay
//! forbidden — see the crate docs).

use std::collections::HashSet;
use std::sync::{Arc, Mutex as StdMutex};

use kex_loom::atomic::{AtomicU64, AtomicUsize, Ordering};
use kex_loom::{thread, Builder};

fn weak() -> Builder {
    Builder::new().weak_memory(true)
}

/// True when the environment forces weak memory on, which makes
/// default-SC regression tests meaningless (the env overrides the
/// builder, by design, so CI can flip every model at once).
fn env_forces_weak() -> bool {
    matches!(
        std::env::var("LOOM_WEAK_MEMORY").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on") | Ok("yes")
    )
}

// ---------------------------------------------------------------------
// SB (store buffering): Dekker's core.
//
//   t1: x = 1; r1 = y        t2: y = 1; r2 = x
//
// Relaxed: (r1, r2) = (0, 0) is allowed and must be observed.
// SeqCst:  (0, 0) is forbidden — this is exactly why the Dekker sites
// in the manifest are pinned SeqCst.
// ---------------------------------------------------------------------

fn sb_outcomes(order: Ordering, b: Builder) -> HashSet<(u64, u64)> {
    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    b.check(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            y2.store(1, order);
            x2.load(order)
        });
        x.store(1, order);
        let r1 = y.load(order);
        let r2 = t.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    });
    Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap()
}

#[test]
fn sb_relaxed_allows_both_zero() {
    let seen = sb_outcomes(Ordering::Relaxed, weak());
    assert!(
        seen.contains(&(0, 0)),
        "weak backend must produce the store-buffering outcome under \
         Relaxed; saw {seen:?}"
    );
}

#[test]
fn sb_seqcst_forbids_both_zero() {
    let seen = sb_outcomes(Ordering::SeqCst, weak());
    assert!(
        !seen.contains(&(0, 0)),
        "SeqCst store buffering must never read (0, 0); saw {seen:?}"
    );
    // Sanity: the other outcomes still occur.
    assert!(seen.contains(&(1, 1)) || seen.contains(&(0, 1)) || seen.contains(&(1, 0)));
}

// ---------------------------------------------------------------------
// MP (message passing): the publish pattern behind every
// Release-store / Acquire-load pair in the manifest.
//
//   writer: data = 42; flag = 1       reader: if flag == 1 { r = data }
//
// Relaxed/Relaxed: stale read (flag seen 1, data seen 0) is allowed
// and must be observed.
// Release/Acquire: the stale read is forbidden.
// ---------------------------------------------------------------------

#[test]
fn mp_relaxed_allows_stale_read() {
    let stale = Arc::new(StdMutex::new(false));
    let sink = Arc::clone(&stale);
    weak().check(move || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 && data.load(Ordering::Relaxed) == 0 {
            *sink.lock().unwrap() = true;
        }
        t.join().unwrap();
    });
    assert!(
        *stale.lock().unwrap(),
        "weak backend must produce the stale message-passing read under Relaxed"
    );
}

#[test]
fn mp_release_acquire_forbids_stale_read() {
    weak().check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire load of flag=1 must see the data published before \
                 the release store"
            );
        }
        t.join().unwrap();
    });
}

/// The checker has teeth: the *same* stale-read assertion, with the
/// publish edge weakened to Relaxed, must produce a counterexample.
#[test]
fn mp_weakened_publish_is_caught() {
    let msg = weak().check_expecting_failure(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed); // weakened publish edge
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(
        msg.contains("assert"),
        "failure should be the in-model assertion, got:\n{msg}"
    );
}

// ---------------------------------------------------------------------
// LB (load buffering):
//
//   t1: r1 = x; y = 1         t2: r2 = y; x = 1
//
// C11 allows (1, 1) under Relaxed; the operational backend never
// produces it (each load reads an already-executed store). Pinned
// forbidden to document the under-approximation — if the backend ever
// starts producing it, this test flags the semantics change.
// ---------------------------------------------------------------------

#[test]
fn lb_relaxed_never_produces_cycle() {
    weak().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            let r2 = y2.load(Ordering::Relaxed);
            x2.store(1, Ordering::Relaxed);
            r2
        });
        let r1 = x.load(Ordering::Relaxed);
        y.store(1, Ordering::Relaxed);
        let r2 = t.join().unwrap();
        assert!(
            !(r1 == 1 && r2 == 1),
            "operational backend produced a load-buffering cycle"
        );
    });
}

// ---------------------------------------------------------------------
// IRIW (independent reads of independent writes):
//
//   w1: x = 1    w2: y = 1
//   r1: a = x; b = y          r2: c = y; d = x
//
// Release/Acquire: the split outcome (a,b,c,d) = (1,0,1,0) — the two
// readers disagreeing on the write order — is allowed and must be
// observed. SeqCst: forbidden (the single SC order the gate handshakes
// rely on).
// ---------------------------------------------------------------------

fn iriw_outcomes(store: Ordering, load: Ordering) -> HashSet<(u64, u64, u64, u64)> {
    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    weak().check(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (xw, yw) = (Arc::clone(&x), Arc::clone(&y));
        let (xr1, yr1) = (Arc::clone(&x), Arc::clone(&y));
        let w1 = thread::spawn(move || xw.store(1, store));
        let w2 = thread::spawn(move || yw.store(1, store));
        let r1 = thread::spawn(move || {
            let a = xr1.load(load);
            let b = yr1.load(load);
            (a, b)
        });
        let c = y.load(load);
        let d = x.load(load);
        w1.join().unwrap();
        w2.join().unwrap();
        let (a, b) = r1.join().unwrap();
        sink.lock().unwrap().insert((a, b, c, d));
    });
    Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap()
}

#[test]
fn iriw_release_acquire_allows_split() {
    let seen = iriw_outcomes(Ordering::Release, Ordering::Acquire);
    assert!(
        seen.contains(&(1, 0, 1, 0)),
        "release/acquire IRIW must allow the readers to disagree on the \
         write order; saw {} outcomes",
        seen.len()
    );
}

#[test]
fn iriw_seqcst_forbids_split() {
    let seen = iriw_outcomes(Ordering::SeqCst, Ordering::SeqCst);
    assert!(
        !seen.contains(&(1, 0, 1, 0)),
        "SeqCst IRIW must agree on a single write order; saw {seen:?}"
    );
}

// ---------------------------------------------------------------------
// Supporting semantics: release sequences, coherence, spin progress.
// ---------------------------------------------------------------------

/// A Relaxed RMW continues a release sequence headed by a Release
/// store: an Acquire load reading the RMW's value still synchronizes
/// with the original release.
#[test]
fn release_sequence_through_relaxed_rmw() {
    weak().check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
            f2.fetch_add(1, Ordering::Relaxed); // continues the sequence
        });
        if flag.load(Ordering::Acquire) == 2 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire of the RMW-continued release sequence must see \
                 the published data"
            );
        }
        t.join().unwrap();
    });
}

/// Per-location coherence: two Relaxed loads of the same location never
/// observe its modification order backwards.
#[test]
fn coherence_read_read() {
    weak().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let r1 = x.load(Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        assert!(
            !(r1 == 2 && r2 == 1),
            "coherence violation: loads observed mo backwards ({r1}, {r2})"
        );
        t.join().unwrap();
    });
}

/// A spin loop on an Acquire load terminates once the Release store
/// lands: the re-scheduled spinner reads the newest store (the weak
/// analogue of yield demotion), so exploration converges.
#[test]
fn spin_loop_terminates() {
    let stats = weak().check(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            kex_loom::hint::spin_loop();
        }
        t.join().unwrap();
    });
    assert!(stats.executions > 0);
}

// ---------------------------------------------------------------------
// Default-mode regression: without the opt-in, every ordering is
// promoted to SC (the pre-existing behaviour rung 4 relies on).
// ---------------------------------------------------------------------

#[test]
fn default_sc_promotes_relaxed() {
    if env_forces_weak() {
        // LOOM_WEAK_MEMORY overrides the builder by design; the SC
        // default is exercised by every other CI job.
        return;
    }
    let seen = sb_outcomes(Ordering::Relaxed, Builder::new());
    assert!(
        !seen.contains(&(0, 0)),
        "default (SC) mode must not produce weak outcomes; saw {seen:?}"
    );
}

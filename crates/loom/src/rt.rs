//! The execution engine behind [`crate::model`]: every model thread is a
//! real OS thread, but exactly one runs at a time. Each synchronization
//! primitive calls into [`Execution::switch`] *before* it acts; that call
//! is a *schedule point* where the engine records (or replays) a
//! scheduling decision. A depth-first search over those decisions
//! enumerates interleavings; see [`crate::model`] for the driver loop.
//!
//! ## Scheduling policy
//!
//! * **Serialization** — only the `active` thread executes model code;
//!   everyone else is parked on the execution's condvar. Hand-off through
//!   the std mutex provides the happens-before edges that make the
//!   (sequentially consistent) simulated memory physically coherent.
//! * **Preemption bounding** — switching away from a thread that could
//!   have kept running consumes one unit of the preemption budget
//!   (`LOOM_MAX_PREEMPTIONS`); once spent, the active thread runs until
//!   it blocks, yields, or finishes. Voluntary switches are free. This is
//!   the CHESS bound: most bugs need very few preemptions.
//! * **Yield demotion** — a thread that executes a spin hint
//!   ([`crate::hint::spin_loop`] / [`crate::thread::yield_now`]) is
//!   *yielded*: it becomes schedulable again only after some other thread
//!   performs a write. Re-running a pure spin re-read with no intervening
//!   write would stutter (same loads, same state), so pruning it is a
//!   sound reduction — and it makes busy-wait loops explorable without
//!   artificial iteration bounds.
//! * **Deadlock/livelock detection** — if no thread is schedulable while
//!   unfinished threads remain (everyone blocked, or every spinner waits
//!   on a write that no live thread can perform), the execution aborts
//!   and the schedule is reported: this is how lost wakeups surface.
//!
//! ## Weak memory (opt-in)
//!
//! With [`Config::weak`] set, atomics are additionally tracked under an
//! operational C11 fragment instead of being promoted to SC:
//!
//! * every location carries a **modification order** — the append order
//!   of its stores, each paired with the *message view* it released;
//! * every thread carries an **acquired view**: per location, the oldest
//!   modification-order timestamp it may still read. A load picks its
//!   store from the (bounded) suffix of the modification order at or
//!   after the view — each such choice is a [`Decision`] explored by the
//!   same DFS that explores schedules;
//! * acquire-class loads join the chosen store's message view; release-
//!   class stores deposit the storing thread's view as their message; an
//!   RMW's message also carries forward the message of the store it read
//!   (release sequences survive intervening relaxed RMWs);
//! * `SeqCst` accesses additionally synchronize through a single global
//!   `sc_view`, which is what forbids the store-buffering and IRIW
//!   splits that plain release/acquire allows;
//! * `Mutex`/`Condvar` hand-offs and `spawn`/`join` contribute their
//!   happens-before edges through per-primitive release views.
//!
//! A spinner re-scheduled after a write reads the modification-order
//! maximum on its next load (the `fresh` flag): pruning the still-stale
//! re-reads is the weak-memory analogue of yield demotion, and keeps
//! spin loops from diverging into unboundedly many stale branches.
//!
//! Deliberate under-approximations (documented in the crate docs): no
//! fences (the workspace uses none), bounded read-from enumeration,
//! load-buffering outcomes requiring cycles are never produced, and a
//! location's history is keyed by address (reusing a freed atomic's
//! address within one execution would splice histories).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::panic::Location;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// Model-thread id; `0` is the thread running the model closure.
pub(crate) type Tid = usize;

/// What a blocked thread is waiting for. Mutexes and condvars are keyed
/// by address (unique while the object is alive, which spans the whole
/// execution); a stale match only causes a spurious wake followed by a
/// re-check, never a lost one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitTarget {
    /// Waiting for a mutex at this address to be unlocked.
    Mutex(usize),
    /// Waiting for a notification on the condvar at this address.
    Condvar(usize),
    /// Waiting for the thread to finish.
    Join(Tid),
}

/// Schedulability of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Spinning: schedulable only once `write_seq` exceeds `since_write`.
    Yielded {
        since_write: u64,
    },
    Blocked(WaitTarget),
    Finished,
}

/// The kind of schedule point the active thread hit.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Point {
    /// An operation about to execute; `write` marks ops whose effect can
    /// wake spinners (stores, RMWs, unlocks, notifies).
    Op { write: bool },
    /// A spin hint: demote until someone writes.
    Yield,
    /// The op cannot proceed; park until the target wakes us.
    Block(WaitTarget),
    /// The thread's closure returned.
    Finish,
}

struct ThreadState {
    status: Status,
    /// Set when this thread's *previous* schedule point announced a
    /// write; the bump to `write_seq` is applied at the *next* point,
    /// i.e. once the write has physically happened.
    pending_write: bool,
    last_op: &'static str,
    last_site: &'static Location<'static>,
}

/// One recorded decision: which option, out of which set. The DFS
/// driver treats thread choices and (weak-memory) read-from choices
/// uniformly — both are branches of the same exploration tree.
#[derive(Debug)]
pub(crate) struct Decision {
    options: Opts,
    index: usize,
}

/// The option set a [`Decision`] ranges over.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Opts {
    /// Schedulable threads at a schedule point.
    Threads(Vec<Tid>),
    /// Candidate modification-order timestamps for a weak-memory load,
    /// newest first (index 0 = the SC-like choice).
    ReadFrom(Vec<usize>),
}

impl Opts {
    fn len(&self) -> usize {
        match self {
            Opts::Threads(v) => v.len(),
            Opts::ReadFrom(v) => v.len(),
        }
    }
}

/// What a trace line records was picked.
enum Choice {
    Thread(Tid),
    ReadFrom { ts: usize, latest: usize },
}

struct TraceEntry {
    tid: Tid,
    op: &'static str,
    site: &'static Location<'static>,
    chosen: Choice,
}

/// A view: per location, the latest modification-order timestamp known.
/// Used both as a thread's acquired view and as a store's message.
type View = BTreeMap<usize, usize>;

/// Pointwise maximum: `dst` learns everything `src` knows.
fn join_view(dst: &mut View, src: &View) {
    for (&addr, &ts) in src {
        let e = dst.entry(addr).or_insert(0);
        *e = (*e).max(ts);
    }
}

/// One store in a location's modification order.
struct StoreEvent {
    /// The stored value, as raw bits.
    val: u64,
    /// The release view an acquire-class load of this store joins.
    msg: View,
}

/// Weak-memory state for one execution (present iff `Config::weak`).
struct WeakMem {
    /// Per-location modification order; index = timestamp. Entry 0 is
    /// seeded from the std atomic's value at the location's first
    /// tracked access.
    history: HashMap<usize, Vec<StoreEvent>>,
    /// Per-thread acquired views.
    views: Vec<View>,
    /// The view every `SeqCst` access synchronizes through; joining it
    /// forward (stores) and backward (loads) realizes the single total
    /// order S of C11 §32.4 closely enough to forbid SB/IRIW splits.
    sc_view: View,
    /// Release views deposited by Mutex/Condvar hand-offs, keyed by
    /// primitive address.
    sync_views: HashMap<usize, View>,
    /// Per-thread flag set when a yielded spinner is re-scheduled after
    /// a write: its next load reads the modification-order maximum
    /// (stale re-reads of a spin word are pruned, mirroring yield
    /// demotion).
    fresh: Vec<bool>,
    /// Per-thread flag: the thread's last weak load chose a non-latest
    /// store. A spinner stranded by such a read (every other thread
    /// done) is promoted once with `fresh` set instead of being
    /// reported stuck — modelling eventual value propagation.
    stale: Vec<bool>,
    /// Maximum read-from candidates enumerated per load.
    bound: usize,
}

struct ExecInner {
    threads: Vec<ThreadState>,
    active: Tid,
    write_seq: u64,
    preemptions: u32,
    steps: u64,
    decisions: Vec<Decision>,
    depth: usize,
    trace: Vec<TraceEntry>,
    abort: Option<String>,
    /// Model threads not yet `Finished`.
    live: usize,
    /// OS worker jobs that have not yet returned.
    workers: usize,
    /// Weak-memory tracking, when enabled.
    weak: Option<WeakMem>,
}

/// Configuration knobs, resolved by [`crate::Builder`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Config {
    pub(crate) max_preemptions: Option<u32>,
    pub(crate) max_steps: u64,
    /// `Some(bound)` enables the weak-memory backend with this many
    /// read-from candidates per load; `None` keeps every atomic SC.
    pub(crate) weak: Option<usize>,
}

/// One execution (a single schedule) of the model closure.
pub(crate) struct Execution {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
    config: Config,
}

/// Panic payload used to unwind parked threads after an abort. Never
/// reported: the first (real) failure wins.
struct AbortSignal;

/// What the driver gets back from one execution.
pub(crate) struct RunOutcome {
    pub(crate) decisions: Vec<Decision>,
    pub(crate) failure: Option<String>,
    pub(crate) schedule_points: u64,
}

const INIT_SITE: &Location<'static> = Location::caller();

impl Execution {
    pub(crate) fn new(config: Config, decisions: Vec<Decision>) -> Arc<Self> {
        Arc::new(Execution {
            inner: StdMutex::new(ExecInner {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    pending_write: false,
                    last_op: "start",
                    last_site: INIT_SITE,
                }],
                active: 0,
                write_seq: 0,
                preemptions: 0,
                steps: 0,
                decisions,
                depth: 0,
                trace: Vec::new(),
                abort: None,
                live: 1,
                workers: 1,
                weak: config.weak.map(|bound| WeakMem {
                    history: HashMap::new(),
                    views: vec![View::new()],
                    sc_view: View::new(),
                    sync_views: HashMap::new(),
                    fresh: vec![false],
                    stale: vec![false],
                    bound: bound.max(1),
                }),
            }),
            cv: StdCondvar::new(),
            config,
        })
    }

    /// Run one execution of `f` as thread 0 and wait for every model
    /// thread to finish (or for an abort to drain them).
    pub(crate) fn run(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) -> RunOutcome {
        launch_thread(self, 0, Box::new(move || f()));
        let mut g = self.inner.lock().unwrap();
        while g.workers > 0 {
            g = self.cv.wait(g).unwrap();
        }
        RunOutcome {
            decisions: std::mem::take(&mut g.decisions),
            failure: g.abort.take().map(|msg| {
                let mut out = msg;
                let _ = write!(out, "\n{}", render_trace(&g.trace));
                out
            }),
            schedule_points: g.steps,
        }
    }

    /// The heart of the engine: a schedule point hit by `tid`.
    fn switch(
        self: &Arc<Self>,
        tid: Tid,
        point: Point,
        op: &'static str,
        site: &'static Location<'static>,
    ) {
        let mut g = self.inner.lock().unwrap();
        if g.abort.is_some() {
            // Teardown: drop glue running during an unwind must pass
            // through without scheduling (the execution is already dead).
            return;
        }
        debug_assert_eq!(g.active, tid, "schedule point from a non-active thread");
        g.steps += 1;
        if g.steps > self.config.max_steps {
            let msg = format!(
                "execution exceeded {} schedule points — livelock, or raise max_steps",
                self.config.max_steps
            );
            self.abort_locked(&mut g, msg);
            drop(g);
            std::panic::panic_any(AbortSignal);
        }
        // Apply the previous point's write (it has executed by now).
        if g.threads[tid].pending_write {
            g.threads[tid].pending_write = false;
            g.write_seq += 1;
        }
        g.threads[tid].last_op = op;
        g.threads[tid].last_site = site;
        g.threads[tid].status = match point {
            Point::Op { write } => {
                g.threads[tid].pending_write = write;
                Status::Runnable
            }
            Point::Yield => Status::Yielded {
                since_write: g.write_seq,
            },
            Point::Block(t) => Status::Blocked(t),
            Point::Finish => Status::Finished,
        };
        if matches!(point, Point::Finish) {
            g.live -= 1;
            g.write_seq += 1;
            for i in 0..g.threads.len() {
                if g.threads[i].status == Status::Blocked(WaitTarget::Join(tid)) {
                    g.threads[i].status = Status::Runnable;
                }
            }
            if g.live == 0 {
                self.cv.notify_all();
                return;
            }
        }
        // Schedulable set: runnable threads plus spinners someone has
        // written past.
        let ws = g.write_seq;
        let mut options: Vec<Tid> = g
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::Runnable => Some(i),
                Status::Yielded { since_write } if ws > since_write => Some(i),
                _ => None,
            })
            .collect();
        if options.is_empty() {
            // A weak-memory spinner can strand itself on a stale read
            // with no writer left to promote it; on real hardware the
            // final store eventually propagates. Promote such threads
            // once with `fresh` set (the next load reads the mo
            // maximum) — a spin that is stuck even on the latest value
            // still deadlocks on the next pass.
            if g.weak.is_some() {
                for i in 0..g.threads.len() {
                    let yielded = matches!(g.threads[i].status, Status::Yielded { .. });
                    let w = g.weak.as_mut().unwrap();
                    if yielded && w.stale[i] {
                        w.stale[i] = false;
                        w.fresh[i] = true;
                        g.threads[i].status = Status::Runnable;
                        options.push(i);
                    }
                }
            }
        }
        if options.is_empty() {
            let msg = format!(
                "deadlock: no schedulable thread ({} alive)\n{}",
                g.live,
                describe_threads(&g.threads)
            );
            self.abort_locked(&mut g, msg);
            drop(g);
            std::panic::panic_any(AbortSignal);
        }
        // Preemption bounding (CHESS): once the budget is spent, a thread
        // that could continue must continue.
        let voluntary = !matches!(point, Point::Op { .. });
        if !voluntary {
            if let Some(maxp) = self.config.max_preemptions {
                if g.preemptions >= maxp && options.contains(&tid) {
                    options = vec![tid];
                }
            }
        }
        let chosen = if g.depth < g.decisions.len() {
            let d = &g.decisions[g.depth];
            assert_eq!(
                d.options,
                Opts::Threads(options),
                "nondeterministic model: replay diverged at depth {}",
                g.depth
            );
            match &d.options {
                Opts::Threads(opts) => opts[d.index],
                Opts::ReadFrom(_) => unreachable!("asserted equal above"),
            }
        } else {
            let first = options[0];
            g.decisions.push(Decision {
                options: Opts::Threads(options),
                index: 0,
            });
            first
        };
        g.depth += 1;
        g.trace.push(TraceEntry {
            tid,
            op,
            site,
            chosen: Choice::Thread(chosen),
        });
        if !voluntary && chosen != tid {
            g.preemptions += 1;
        }
        if let Status::Yielded { .. } = g.threads[chosen].status {
            g.threads[chosen].status = Status::Runnable;
            // A promoted spinner was woken by a write: its next weak
            // load must observe it (stale re-reads are pruned).
            if let Some(w) = &mut g.weak {
                w.fresh[chosen] = true;
            }
        }
        g.active = chosen;
        self.cv.notify_all();
        if matches!(point, Point::Finish) || chosen == tid {
            return;
        }
        self.park(g, tid);
    }

    /// Park until this thread is scheduled again (or the execution dies).
    fn park(self: &Arc<Self>, mut g: std::sync::MutexGuard<'_, ExecInner>, tid: Tid) {
        loop {
            if g.abort.is_some() {
                drop(g);
                std::panic::panic_any(AbortSignal);
            }
            if g.active == tid && g.threads[tid].status == Status::Runnable {
                return;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    fn abort_locked(&self, g: &mut ExecInner, msg: String) {
        if g.abort.is_none() {
            g.abort = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Register a freshly spawned model thread (caller is active).
    fn register_thread(&self) -> Tid {
        let mut g = self.inner.lock().unwrap();
        let tid = g.threads.len();
        g.threads.push(ThreadState {
            status: Status::Runnable,
            pending_write: false,
            last_op: "spawned",
            last_site: INIT_SITE,
        });
        g.live += 1;
        g.workers += 1;
        // spawn happens-before the child's first step: the child starts
        // with everything its parent has acquired.
        let parent = g.active;
        if let Some(w) = &mut g.weak {
            let v = w.views[parent].clone();
            w.views.push(v);
            w.fresh.push(false);
            w.stale.push(false);
        }
        tid
    }

    /// Wake every thread blocked on `target` (they re-check and may
    /// re-block; wakes are never lost because block decisions are made
    /// while serialized).
    fn wake_all(&self, target: WaitTarget) {
        let mut g = self.inner.lock().unwrap();
        for t in &mut g.threads {
            if t.status == Status::Blocked(target) {
                t.status = Status::Runnable;
            }
        }
    }

    /// Wake the lowest-tid thread blocked on `target`; returns whether a
    /// waiter existed.
    fn wake_one(&self, target: WaitTarget) -> bool {
        let mut g = self.inner.lock().unwrap();
        for t in &mut g.threads {
            if t.status == Status::Blocked(target) {
                t.status = Status::Runnable;
                return true;
            }
        }
        false
    }

    fn is_finished(&self, tid: Tid) -> bool {
        let mut g = self.inner.lock().unwrap();
        let done = g.threads[tid].status == Status::Finished;
        if done {
            // join: everything the finished thread did happens-before
            // the joiner's continuation.
            let joiner = g.active;
            if let Some(w) = &mut g.weak {
                let child = w.views[tid].clone();
                join_view(&mut w.views[joiner], &child);
            }
        }
        done
    }

    /// A worker's job ended (normally or by panic).
    fn worker_done(&self) {
        let mut g = self.inner.lock().unwrap();
        g.workers -= 1;
        if g.workers == 0 {
            self.cv.notify_all();
        }
    }

    // -- weak memory ------------------------------------------------------

    /// Weak-memory load: pick (replay or branch) which store in `addr`'s
    /// modification order to read. `None` when weak memory is off or the
    /// execution is tearing down — the caller falls back to the SC path.
    fn weak_load(
        self: &Arc<Self>,
        tid: Tid,
        addr: usize,
        init: u64,
        class: OrdClass,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> Option<u64> {
        let mut g = self.inner.lock().unwrap();
        if g.abort.is_some() || g.weak.is_none() {
            return None;
        }
        let w = g.weak.as_mut().unwrap();
        seed(&mut w.history, addr, init);
        if class == OrdClass::SeqCst {
            // An SC load reads no store older than the last SC store to
            // this location: joining the SC view raises the floor first.
            let sc = w.sc_view.clone();
            join_view(&mut w.views[tid], &sc);
        }
        let latest = w.history[&addr].len() - 1;
        let floor = if std::mem::take(&mut w.fresh[tid]) {
            latest
        } else {
            w.views[tid].get(&addr).copied().unwrap_or(0)
        };
        let lo = floor.max((latest + 1).saturating_sub(w.bound));
        let candidates: Vec<usize> = (lo..=latest).rev().collect();
        let ts = if candidates.len() == 1 {
            candidates[0]
        } else {
            let idx = if g.depth < g.decisions.len() {
                let d = &g.decisions[g.depth];
                assert_eq!(
                    d.options,
                    Opts::ReadFrom(candidates.clone()),
                    "nondeterministic model: replay diverged at depth {}",
                    g.depth
                );
                d.index
            } else {
                g.decisions.push(Decision {
                    options: Opts::ReadFrom(candidates.clone()),
                    index: 0,
                });
                0
            };
            g.depth += 1;
            let ts = candidates[idx];
            g.trace.push(TraceEntry {
                tid,
                op,
                site,
                chosen: Choice::ReadFrom { ts, latest },
            });
            ts
        };
        let w = g.weak.as_mut().unwrap();
        w.stale[tid] = ts < latest;
        if class.acquires() {
            let msg = w.history[&addr][ts].msg.clone();
            join_view(&mut w.views[tid], &msg);
        }
        let e = w.views[tid].entry(addr).or_insert(0);
        *e = (*e).max(ts);
        Some(w.history[&addr][ts].val)
    }

    /// Weak-memory store: append to `addr`'s modification order. Returns
    /// whether the store was tracked; either way the caller performs the
    /// std write-through, so the physical value stays the mo-maximum.
    fn weak_store(&self, tid: Tid, addr: usize, init: u64, val: u64, class: OrdClass) -> bool {
        let mut g = self.inner.lock().unwrap();
        if g.abort.is_some() || g.weak.is_none() {
            return false;
        }
        let w = g.weak.as_mut().unwrap();
        seed(&mut w.history, addr, init);
        if class == OrdClass::SeqCst {
            let sc = w.sc_view.clone();
            join_view(&mut w.views[tid], &sc);
        }
        let ts = w.history[&addr].len();
        let mut msg = if class.releases() {
            w.views[tid].clone()
        } else {
            View::new()
        };
        msg.insert(addr, ts);
        w.history
            .get_mut(&addr)
            .unwrap()
            .push(StoreEvent { val, msg });
        w.views[tid].insert(addr, ts);
        if class == OrdClass::SeqCst {
            let v = w.views[tid].clone();
            join_view(&mut w.sc_view, &v);
        }
        true
    }

    /// Weak-memory RMW bookkeeping. The caller has already performed the
    /// std operation (serialized, and the physical value equals the
    /// modification-order maximum), passing the observed `old` bits and
    /// the stored bits — `None` for a failed compare-exchange, which is
    /// a load with the failure ordering.
    fn weak_rmw(
        &self,
        tid: Tid,
        addr: usize,
        old: u64,
        new: Option<u64>,
        success: OrdClass,
        failure: OrdClass,
    ) -> bool {
        let mut g = self.inner.lock().unwrap();
        if g.abort.is_some() || g.weak.is_none() {
            return false;
        }
        let w = g.weak.as_mut().unwrap();
        seed(&mut w.history, addr, old);
        let class = if new.is_some() { success } else { failure };
        let ts_old = w.history[&addr].len() - 1;
        // An RMW (even a failed CAS) reads the mo maximum: stores write
        // through, so the serialized std value is always the newest.
        w.stale[tid] = false;
        if class == OrdClass::SeqCst {
            let sc = w.sc_view.clone();
            join_view(&mut w.views[tid], &sc);
        }
        if class.acquires() {
            let msg = w.history[&addr][ts_old].msg.clone();
            join_view(&mut w.views[tid], &msg);
        }
        {
            let e = w.views[tid].entry(addr).or_insert(0);
            *e = (*e).max(ts_old);
        }
        if let Some(val) = new {
            let ts = ts_old + 1;
            // An RMW extends the release sequence of the store it read:
            // its message carries that store's message forward even when
            // the RMW itself is relaxed.
            let mut msg = w.history[&addr][ts_old].msg.clone();
            if class.releases() {
                let v = w.views[tid].clone();
                join_view(&mut msg, &v);
            }
            msg.insert(addr, ts);
            w.history
                .get_mut(&addr)
                .unwrap()
                .push(StoreEvent { val, msg });
            w.views[tid].insert(addr, ts);
            if class == OrdClass::SeqCst {
                let v = w.views[tid].clone();
                join_view(&mut w.sc_view, &v);
            }
        }
        true
    }

    /// The calling thread acquired the sync primitive at `addr`: join
    /// the release view its last holder deposited.
    fn sync_acquire_at(&self, tid: Tid, addr: usize) {
        let mut g = self.inner.lock().unwrap();
        if let Some(w) = &mut g.weak {
            if let Some(v) = w.sync_views.get(&addr) {
                let v = v.clone();
                join_view(&mut w.views[tid], &v);
            }
        }
    }

    /// The calling thread is releasing the sync primitive at `addr`:
    /// deposit everything it has acquired for the next holder.
    fn sync_release_at(&self, tid: Tid, addr: usize) {
        let mut g = self.inner.lock().unwrap();
        if let Some(w) = &mut g.weak {
            let v = w.views[tid].clone();
            join_view(w.sync_views.entry(addr).or_default(), &v);
        }
    }

    /// Record a panic that escaped a model thread.
    fn abort_from_panic(&self, tid: Tid, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<AbortSignal>().is_some() {
            return; // secondary unwind caused by the original abort
        }
        let text = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        let mut g = self.inner.lock().unwrap();
        let msg = format!("thread t{tid} panicked: {text}");
        if g.abort.is_none() {
            g.abort = Some(msg);
        }
        self.cv.notify_all();
    }
}

/// Seed a location's modification order from the std atomic's current
/// value at its first tracked access.
fn seed(history: &mut HashMap<usize, Vec<StoreEvent>>, addr: usize, init: u64) {
    history.entry(addr).or_insert_with(|| {
        vec![StoreEvent {
            val: init,
            msg: View::new(),
        }]
    });
}

/// Memory-ordering class of a weak-memory access, mapped from
/// `std::sync::atomic::Ordering` by the facade types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrdClass {
    /// No synchronization; only coherence.
    Relaxed,
    /// Load side of a synchronizes-with edge.
    Acquire,
    /// Store side of a synchronizes-with edge.
    Release,
    /// Both sides (RMWs).
    AcqRel,
    /// Additionally ordered by the single SC total order.
    SeqCst,
}

impl OrdClass {
    fn acquires(self) -> bool {
        matches!(
            self,
            OrdClass::Acquire | OrdClass::AcqRel | OrdClass::SeqCst
        )
    }

    fn releases(self) -> bool {
        matches!(
            self,
            OrdClass::Release | OrdClass::AcqRel | OrdClass::SeqCst
        )
    }
}

/// Map a std `Ordering` to its class. `Ordering` is `#[non_exhaustive]`;
/// anything unrecognized is treated as `SeqCst` (the safe direction).
pub(crate) fn ord_class(order: std::sync::atomic::Ordering) -> OrdClass {
    use std::sync::atomic::Ordering as O;
    match order {
        O::Relaxed => OrdClass::Relaxed,
        O::Acquire => OrdClass::Acquire,
        O::Release => OrdClass::Release,
        O::AcqRel => OrdClass::AcqRel,
        _ => OrdClass::SeqCst,
    }
}

fn describe_threads(threads: &[ThreadState]) -> String {
    let mut out = String::new();
    for (i, t) in threads.iter().enumerate() {
        let _ = writeln!(
            out,
            "  t{i}: {:?} — last {} at {}:{}",
            t.status,
            t.last_op,
            t.last_site.file(),
            t.last_site.line()
        );
    }
    out
}

fn render_trace(trace: &[TraceEntry]) -> String {
    const SHOWN: usize = 400;
    let skip = trace.len().saturating_sub(SHOWN);
    let mut out = format!(
        "schedule ({} points{}):\n",
        trace.len(),
        if skip > 0 {
            format!(", last {SHOWN} shown")
        } else {
            String::new()
        }
    );
    for e in &trace[skip..] {
        let chosen = match e.chosen {
            Choice::Thread(t) => format!("t{t}"),
            Choice::ReadFrom { ts, latest } => format!("reads mo#{ts}/{latest}"),
        };
        let _ = writeln!(
            out,
            "  t{} {:<24} {}:{} -> {}",
            e.tid,
            e.op,
            e.site.file(),
            e.site.line(),
            chosen
        );
    }
    out
}

/// Advance the decision stack to the next unexplored schedule; `false`
/// when the space is exhausted.
pub(crate) fn advance(decisions: &mut Vec<Decision>) -> bool {
    while let Some(d) = decisions.last_mut() {
        if d.index + 1 < d.options.len() {
            d.index += 1;
            return true;
        }
        decisions.pop();
    }
    false
}

// ---------------------------------------------------------------------------
// Thread-local model context and the public-ish hooks the primitives use.

#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    tid: Tid,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// A schedule point for an operation about to execute. A no-op outside
/// a model, so the facade's types stay usable for construction, `Debug`
/// printing, and single-threaded setup code.
pub(crate) fn schedule(op: &'static str, write: bool, site: &'static Location<'static>) {
    if let Some(c) = ctx() {
        c.exec.switch(c.tid, Point::Op { write }, op, site);
    }
}

/// A spin hint: demote this thread until another thread writes. No-op
/// outside a model.
pub(crate) fn yield_point(op: &'static str, site: &'static Location<'static>) {
    if let Some(c) = ctx() {
        c.exec.switch(c.tid, Point::Yield, op, site);
    }
}

/// Park on `target`; returns when some thread wakes it (re-check and
/// re-block if the condition is still false). Blocking is meaningless
/// outside a model — the caller must check [`in_model`] first.
pub(crate) fn block_on(target: WaitTarget, op: &'static str, site: &'static Location<'static>) {
    let c = ctx().expect("kex-loom blocking primitive used outside of kex_loom::model()");
    c.exec.switch(c.tid, Point::Block(target), op, site);
}

/// Wake every thread blocked on `target`. No-op outside a model.
pub(crate) fn wake_all(target: WaitTarget) {
    if let Some(c) = ctx() {
        c.exec.wake_all(target);
    }
}

/// Wake one thread blocked on `target`. No-op outside a model.
pub(crate) fn wake_one(target: WaitTarget) {
    if let Some(c) = ctx() {
        c.exec.wake_one(target);
    }
}

/// Weak-memory load of the atomic at `addr`, whose std value is `init`.
/// `None` outside a model or when weak memory is off — the caller falls
/// back to the SC std path.
pub(crate) fn weak_load(
    addr: usize,
    init: u64,
    class: OrdClass,
    op: &'static str,
    site: &'static Location<'static>,
) -> Option<u64> {
    let c = ctx()?;
    c.exec.weak_load(c.tid, addr, init, class, op, site)
}

/// Weak-memory store tracking; see [`Execution::weak_store`]. The caller
/// always performs the std write-through afterwards.
pub(crate) fn weak_store(addr: usize, init: u64, val: u64, class: OrdClass) -> bool {
    match ctx() {
        Some(c) => c.exec.weak_store(c.tid, addr, init, val, class),
        None => false,
    }
}

/// Weak-memory RMW tracking; see [`Execution::weak_rmw`]. The caller has
/// already performed the std operation.
pub(crate) fn weak_rmw(
    addr: usize,
    old: u64,
    new: Option<u64>,
    success: OrdClass,
    failure: OrdClass,
) -> bool {
    match ctx() {
        Some(c) => c.exec.weak_rmw(c.tid, addr, old, new, success, failure),
        None => false,
    }
}

/// Happens-before edge into the calling thread from the last release of
/// the sync primitive at `addr` (mutex acquisition, condvar re-lock).
pub(crate) fn sync_acquire(addr: usize) {
    if let Some(c) = ctx() {
        c.exec.sync_acquire_at(c.tid, addr);
    }
}

/// Happens-before edge out of the calling thread through the sync
/// primitive at `addr` (mutex release, condvar wait-release).
pub(crate) fn sync_release(addr: usize) {
    if let Some(c) = ctx() {
        c.exec.sync_release_at(c.tid, addr);
    }
}

/// Register and launch a new model thread running `body`.
pub(crate) fn spawn_model_thread(body: Box<dyn FnOnce() + Send>) -> Tid {
    let c = ctx().expect("kex_loom::thread::spawn used outside of kex_loom::model()");
    let tid = c.exec.register_thread();
    launch_thread(&c.exec, tid, body);
    tid
}

/// Whether model thread `tid` has finished (for join loops).
pub(crate) fn thread_finished(tid: Tid) -> bool {
    ctx()
        .expect("JoinHandle::join used outside of kex_loom::model()")
        .exec
        .is_finished(tid)
}

// ---------------------------------------------------------------------------
// Worker pool: model threads are real OS threads, reused across the
// (possibly hundreds of thousands of) executions in one exploration.

type Job = Box<dyn FnOnce() + Send + 'static>;

static POOL: OnceLock<StdMutex<Vec<Sender<Job>>>> = OnceLock::new();

fn pool() -> &'static StdMutex<Vec<Sender<Job>>> {
    POOL.get_or_init(|| StdMutex::new(Vec::new()))
}

fn spawn_in_pool(job: Job) {
    let idle = pool().lock().unwrap().pop();
    match idle {
        Some(tx) => match tx.send(job) {
            Ok(()) => {}
            Err(e) => spawn_worker(e.0), // worker died; replace it
        },
        None => spawn_worker(job),
    }
}

fn spawn_worker(first: Job) {
    let (tx, rx) = channel::<Job>();
    tx.send(first).expect("fresh channel");
    std::thread::Builder::new()
        .name("kex-loom-worker".into())
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                job();
                pool().lock().unwrap().push(tx.clone());
            }
        })
        .expect("spawn kex-loom worker");
}

fn launch_thread(exec: &Arc<Execution>, tid: Tid, body: Job) {
    let exec = exec.clone();
    spawn_in_pool(Box::new(move || {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                exec: exec.clone(),
                tid,
            })
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Wait to be scheduled for the first time.
            {
                let g = exec.inner.lock().unwrap();
                exec.park(g, tid);
            }
            body();
            let c = CTX.with(|c| c.borrow().clone()).expect("ctx set above");
            c.exec
                .switch(tid, Point::Finish, "finish", Location::caller());
        }));
        CTX.with(|c| *c.borrow_mut() = None);
        if let Err(payload) = result {
            exec.abort_from_panic(tid, payload);
        }
        exec.worker_done();
    }));
}

/// Read an unsigned env knob, ignoring unset/garbage.
pub(crate) fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// True if the calling OS thread currently hosts a model thread. Used by
/// the atomics to decide whether to schedule (outside a model, the
/// facade's types behave like plain `SeqCst` std atomics so `Debug`
/// printing and construction stay usable).
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

//! Model-checked drop-in replacements for `std::sync::atomic` types.
//!
//! Every operation is a schedule point: the checker may switch threads
//! immediately *before* the operation executes, which is exactly the
//! granularity at which sequentially consistent interleavings differ.
//! The `Ordering` argument is accepted for API compatibility but the
//! simulated memory model is SC regardless (see the crate docs); the
//! wrapped std atomic is always accessed with `SeqCst`, so the memory
//! backing the model is physically coherent too.
//!
//! Outside [`crate::model`] the types degrade to plain `SeqCst` std
//! atomics (no scheduling), keeping construction and `Debug` usable.

pub use std::sync::atomic::Ordering;

use std::panic::Location;
use std::sync::atomic::Ordering::SeqCst;

use crate::rt;

macro_rules! atomic_common {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-checked counterpart of the same-named `std::sync::atomic` type.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic holding `v`.
            pub const fn new(v: $ty) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            /// Consumes the atomic, returning the contained value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            /// Mutable access without synchronization.
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// Loads the value (schedule point; read).
            #[track_caller]
            pub fn load(&self, _order: Ordering) -> $ty {
                rt::schedule(
                    concat!(stringify!($name), "::load"),
                    false,
                    Location::caller(),
                );
                self.inner.load(SeqCst)
            }

            /// Stores `v` (schedule point; write).
            #[track_caller]
            pub fn store(&self, v: $ty, _order: Ordering) {
                rt::schedule(
                    concat!(stringify!($name), "::store"),
                    true,
                    Location::caller(),
                );
                self.inner.store(v, SeqCst)
            }

            /// Swaps in `v`, returning the previous value (schedule
            /// point; write).
            #[track_caller]
            pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                rt::schedule(
                    concat!(stringify!($name), "::swap"),
                    true,
                    Location::caller(),
                );
                self.inner.swap(v, SeqCst)
            }

            /// Compare-and-exchange (schedule point; write — even a
            /// failed CAS is an RMW-slot access in the SC model).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                rt::schedule(
                    concat!(stringify!($name), "::compare_exchange"),
                    true,
                    Location::caller(),
                );
                self.inner.compare_exchange(current, new, SeqCst, SeqCst)
            }

            /// Weak compare-and-exchange; never fails spuriously in the
            /// model (spurious failure would only add schedules already
            /// covered by a plain retry loop).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Fetch-and-update loop as a single atomic RMW (schedule
            /// point; write).
            #[track_caller]
            pub fn fetch_update<F>(
                &self,
                _set_order: Ordering,
                _fetch_order: Ordering,
                f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                rt::schedule(
                    concat!(stringify!($name), "::fetch_update"),
                    true,
                    Location::caller(),
                );
                self.inner.fetch_update(SeqCst, SeqCst, f)
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                $name::new(v)
            }
        }
    };
}

macro_rules! atomic_int_ops {
    ($name:ident, $ty:ty, [$($op:ident),* $(,)?]) => {
        impl $name {
            $(
                #[doc = concat!("`", stringify!($op), "` (schedule point; write).")]
                #[track_caller]
                pub fn $op(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::schedule(
                        concat!(stringify!($name), "::", stringify!($op)),
                        true,
                        Location::caller(),
                    );
                    self.inner.$op(v, SeqCst)
                }
            )*
        }
    };
}

atomic_common!(AtomicBool, AtomicBool, bool);
atomic_common!(AtomicU8, AtomicU8, u8);
atomic_common!(AtomicU32, AtomicU32, u32);
atomic_common!(AtomicU64, AtomicU64, u64);
atomic_common!(AtomicI64, AtomicI64, i64);
atomic_common!(AtomicUsize, AtomicUsize, usize);
atomic_common!(AtomicIsize, AtomicIsize, isize);

atomic_int_ops!(
    AtomicU8,
    u8,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicU32,
    u32,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicU64,
    u64,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicUsize,
    usize,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicIsize,
    isize,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);

atomic_int_ops!(
    AtomicI64,
    i64,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);

atomic_int_ops!(AtomicBool, bool, [fetch_and, fetch_or, fetch_xor]);

/// Model-checked counterpart of `std::sync::atomic::AtomicPtr`.
///
/// Generic, so the `atomic_common!` macro (which names concrete std
/// types) does not apply; the operations and scheduling discipline are
/// identical.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer holding `p`.
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    /// Consumes the atomic, returning the contained pointer.
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    /// Mutable access without synchronization.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    /// Loads the pointer (schedule point; read).
    #[track_caller]
    pub fn load(&self, _order: Ordering) -> *mut T {
        rt::schedule("AtomicPtr::load", false, Location::caller());
        self.inner.load(SeqCst)
    }

    /// Stores `p` (schedule point; write).
    #[track_caller]
    pub fn store(&self, p: *mut T, _order: Ordering) {
        rt::schedule("AtomicPtr::store", true, Location::caller());
        self.inner.store(p, SeqCst)
    }

    /// Swaps in `p`, returning the previous pointer (schedule point;
    /// write).
    #[track_caller]
    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        rt::schedule("AtomicPtr::swap", true, Location::caller());
        self.inner.swap(p, SeqCst)
    }

    /// Compare-and-exchange (schedule point; write — even a failed CAS
    /// is an RMW-slot access in the SC model).
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        rt::schedule("AtomicPtr::compare_exchange", true, Location::caller());
        self.inner.compare_exchange(current, new, SeqCst, SeqCst)
    }

    /// Weak compare-and-exchange; never fails spuriously in the model.
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Fetch-and-update as a single atomic RMW (schedule point; write).
    #[track_caller]
    pub fn fetch_update<F>(
        &self,
        _set_order: Ordering,
        _fetch_order: Ordering,
        f: F,
    ) -> Result<*mut T, *mut T>
    where
        F: FnMut(*mut T) -> Option<*mut T>,
    {
        rt::schedule("AtomicPtr::fetch_update", true, Location::caller());
        self.inner.fetch_update(SeqCst, SeqCst, f)
    }
}

impl<T> From<*mut T> for AtomicPtr<T> {
    fn from(p: *mut T) -> Self {
        AtomicPtr::new(p)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

//! Model-checked drop-in replacements for `std::sync::atomic` types.
//!
//! Every operation is a schedule point: the checker may switch threads
//! immediately *before* the operation executes, which is exactly the
//! granularity at which sequentially consistent interleavings differ.
//!
//! By default the simulated memory model is SC regardless of the
//! `Ordering` argument (see the crate docs); the wrapped std atomic is
//! always accessed with `SeqCst`, so the memory backing the model is
//! physically coherent too. With the weak-memory backend enabled
//! ([`crate::Builder::weak_memory`] / `LOOM_WEAK_MEMORY=1`), the
//! `Ordering` argument becomes real: each operation reports its ordering
//! class to the runtime, loads may read older entries of the location's
//! modification order, and the std atomic keeps holding the
//! modification-order maximum (every store writes through with
//! `SeqCst`), so raw memory stays coherent either way.
//!
//! Outside [`crate::model`] the types degrade to plain `SeqCst` std
//! atomics (no scheduling), keeping construction and `Debug` usable.

pub use std::sync::atomic::Ordering;

use std::panic::Location;
use std::sync::atomic::Ordering::SeqCst;

use crate::rt;

/// Raw-bits conversion funnelling every atomic value type through the
/// weak-memory runtime's single `u64` representation.
trait Bits: Copy {
    fn to_bits(self) -> u64;
    fn from_bits(bits: u64) -> Self;
}

macro_rules! bits_int {
    ($($ty:ty),*) => {
        $(impl Bits for $ty {
            fn to_bits(self) -> u64 {
                self as u64
            }
            fn from_bits(bits: u64) -> Self {
                bits as $ty
            }
        })*
    };
}

bits_int!(u8, u32, u64, usize, i64, isize);

impl Bits for bool {
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

macro_rules! atomic_common {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-checked counterpart of the same-named `std::sync::atomic` type.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic holding `v`.
            pub const fn new(v: $ty) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            /// Consumes the atomic, returning the contained value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            /// Mutable access without synchronization.
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// The location key the weak-memory runtime tracks this
            /// atomic under (stable while the object is alive).
            fn addr(&self) -> usize {
                &self.inner as *const _ as usize
            }

            /// Loads the value (schedule point; read). Under weak
            /// memory, may read an older modification-order entry as the
            /// declared ordering permits.
            #[track_caller]
            pub fn load(&self, order: Ordering) -> $ty {
                rt::schedule(
                    concat!(stringify!($name), "::load"),
                    false,
                    Location::caller(),
                );
                let init = self.inner.load(SeqCst);
                match rt::weak_load(
                    self.addr(),
                    init.to_bits(),
                    rt::ord_class(order),
                    concat!(stringify!($name), "::load"),
                    Location::caller(),
                ) {
                    Some(bits) => <$ty as Bits>::from_bits(bits),
                    None => init,
                }
            }

            /// Stores `v` (schedule point; write).
            #[track_caller]
            pub fn store(&self, v: $ty, order: Ordering) {
                rt::schedule(
                    concat!(stringify!($name), "::store"),
                    true,
                    Location::caller(),
                );
                let init = self.inner.load(SeqCst);
                rt::weak_store(
                    self.addr(),
                    init.to_bits(),
                    v.to_bits(),
                    rt::ord_class(order),
                );
                self.inner.store(v, SeqCst)
            }

            /// Swaps in `v`, returning the previous value (schedule
            /// point; write).
            #[track_caller]
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                rt::schedule(
                    concat!(stringify!($name), "::swap"),
                    true,
                    Location::caller(),
                );
                let old = self.inner.swap(v, SeqCst);
                let class = rt::ord_class(order);
                rt::weak_rmw(self.addr(), old.to_bits(), Some(v.to_bits()), class, class);
                old
            }

            /// Compare-and-exchange (schedule point; write — even a
            /// failed CAS is an RMW-slot access in the SC model; under
            /// weak memory a failed CAS is a load with `failure`).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                rt::schedule(
                    concat!(stringify!($name), "::compare_exchange"),
                    true,
                    Location::caller(),
                );
                let r = self.inner.compare_exchange(current, new, SeqCst, SeqCst);
                let (old, stored) = match r {
                    Ok(old) => (old, Some(new.to_bits())),
                    Err(old) => (old, None),
                };
                rt::weak_rmw(
                    self.addr(),
                    old.to_bits(),
                    stored,
                    rt::ord_class(success),
                    rt::ord_class(failure),
                );
                r
            }

            /// Weak compare-and-exchange; never fails spuriously in the
            /// model (spurious failure would only add schedules already
            /// covered by a plain retry loop).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Fetch-and-update loop as a single atomic RMW (schedule
            /// point; write).
            #[track_caller]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                rt::schedule(
                    concat!(stringify!($name), "::fetch_update"),
                    true,
                    Location::caller(),
                );
                let r = self.inner.fetch_update(SeqCst, SeqCst, f);
                let (old, stored) = match r {
                    Ok(old) => (old, Some(self.inner.load(SeqCst).to_bits())),
                    Err(old) => (old, None),
                };
                rt::weak_rmw(
                    self.addr(),
                    old.to_bits(),
                    stored,
                    rt::ord_class(set_order),
                    rt::ord_class(fetch_order),
                );
                r
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                $name::new(v)
            }
        }
    };
}

macro_rules! atomic_int_ops {
    ($name:ident, $ty:ty, [$($op:ident),* $(,)?]) => {
        impl $name {
            $(
                #[doc = concat!("`", stringify!($op), "` (schedule point; write).")]
                #[track_caller]
                pub fn $op(&self, v: $ty, order: Ordering) -> $ty {
                    rt::schedule(
                        concat!(stringify!($name), "::", stringify!($op)),
                        true,
                        Location::caller(),
                    );
                    let old = self.inner.$op(v, SeqCst);
                    let new = self.inner.load(SeqCst);
                    let class = rt::ord_class(order);
                    rt::weak_rmw(self.addr(), old.to_bits(), Some(new.to_bits()), class, class);
                    old
                }
            )*
        }
    };
}

atomic_common!(AtomicBool, AtomicBool, bool);
atomic_common!(AtomicU8, AtomicU8, u8);
atomic_common!(AtomicU32, AtomicU32, u32);
atomic_common!(AtomicU64, AtomicU64, u64);
atomic_common!(AtomicI64, AtomicI64, i64);
atomic_common!(AtomicUsize, AtomicUsize, usize);
atomic_common!(AtomicIsize, AtomicIsize, isize);

atomic_int_ops!(
    AtomicU8,
    u8,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicU32,
    u32,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicU64,
    u64,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicUsize,
    usize,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
atomic_int_ops!(
    AtomicIsize,
    isize,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);

atomic_int_ops!(
    AtomicI64,
    i64,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);

atomic_int_ops!(AtomicBool, bool, [fetch_and, fetch_or, fetch_xor]);

/// Model-checked counterpart of `std::sync::atomic::AtomicPtr`.
///
/// Generic, so the `atomic_common!` macro (which names concrete std
/// types) does not apply; the operations and scheduling discipline are
/// identical. Pointers round-trip through the weak-memory runtime as
/// their address bits.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer holding `p`.
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    /// Consumes the atomic, returning the contained pointer.
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    /// Mutable access without synchronization.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    fn addr(&self) -> usize {
        &self.inner as *const _ as usize
    }

    /// Loads the pointer (schedule point; read).
    #[track_caller]
    pub fn load(&self, order: Ordering) -> *mut T {
        rt::schedule("AtomicPtr::load", false, Location::caller());
        let init = self.inner.load(SeqCst);
        match rt::weak_load(
            self.addr(),
            init as u64,
            rt::ord_class(order),
            "AtomicPtr::load",
            Location::caller(),
        ) {
            Some(bits) => bits as usize as *mut T,
            None => init,
        }
    }

    /// Stores `p` (schedule point; write).
    #[track_caller]
    pub fn store(&self, p: *mut T, order: Ordering) {
        rt::schedule("AtomicPtr::store", true, Location::caller());
        let init = self.inner.load(SeqCst);
        rt::weak_store(self.addr(), init as u64, p as u64, rt::ord_class(order));
        self.inner.store(p, SeqCst)
    }

    /// Swaps in `p`, returning the previous pointer (schedule point;
    /// write).
    #[track_caller]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        rt::schedule("AtomicPtr::swap", true, Location::caller());
        let old = self.inner.swap(p, SeqCst);
        let class = rt::ord_class(order);
        rt::weak_rmw(self.addr(), old as u64, Some(p as u64), class, class);
        old
    }

    /// Compare-and-exchange (schedule point; write — even a failed CAS
    /// is an RMW-slot access in the SC model).
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        rt::schedule("AtomicPtr::compare_exchange", true, Location::caller());
        let r = self.inner.compare_exchange(current, new, SeqCst, SeqCst);
        let (old, stored) = match r {
            Ok(old) => (old, Some(new as u64)),
            Err(old) => (old, None),
        };
        rt::weak_rmw(
            self.addr(),
            old as u64,
            stored,
            rt::ord_class(success),
            rt::ord_class(failure),
        );
        r
    }

    /// Weak compare-and-exchange; never fails spuriously in the model.
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Fetch-and-update as a single atomic RMW (schedule point; write).
    #[track_caller]
    pub fn fetch_update<F>(
        &self,
        set_order: Ordering,
        fetch_order: Ordering,
        f: F,
    ) -> Result<*mut T, *mut T>
    where
        F: FnMut(*mut T) -> Option<*mut T>,
    {
        rt::schedule("AtomicPtr::fetch_update", true, Location::caller());
        let r = self.inner.fetch_update(SeqCst, SeqCst, f);
        let (old, stored) = match r {
            Ok(old) => (old, Some(self.inner.load(SeqCst) as u64)),
            Err(old) => (old, None),
        };
        rt::weak_rmw(
            self.addr(),
            old as u64,
            stored,
            rt::ord_class(set_order),
            rt::ord_class(fetch_order),
        );
        r
    }
}

impl<T> From<*mut T> for AtomicPtr<T> {
    fn from(p: *mut T) -> Self {
        AtomicPtr::new(p)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

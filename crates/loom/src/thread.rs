//! Model-checked thread spawn/join, mirroring the bits of
//! `std::thread` the native test harnesses use.

use std::panic::Location;
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::{self, WaitTarget};

/// Handle to a spawned model thread; [`JoinHandle::join`] blocks
/// (cooperatively) until it finishes.
pub struct JoinHandle<T> {
    tid: rt::Tid,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawns a new model thread. The scheduler interleaves it with every
/// other thread at each synchronization point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn_model_thread(Box::new(move || {
        let value = f();
        *slot.lock().unwrap() = Some(value);
    }));
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. The `Err`
    /// arm exists for std signature compatibility; a panicking model
    /// thread aborts the whole execution before any join completes.
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        let site = Location::caller();
        loop {
            rt::schedule("JoinHandle::join", false, site);
            if rt::thread_finished(self.tid) {
                break;
            }
            rt::block_on(WaitTarget::Join(self.tid), "JoinHandle::join", site);
        }
        match self.result.lock().unwrap().take() {
            Some(v) => Ok(v),
            None => Err(Box::new(
                "model thread terminated without a value".to_string(),
            )),
        }
    }
}

/// A voluntary yield: demotes the calling thread until another thread
/// performs a write (the spin-pruning reduction described in the crate
/// docs).
#[track_caller]
pub fn yield_now() {
    rt::yield_point("thread::yield_now", Location::caller());
}

//! A vendored, loom-style systematic concurrency model checker.
//!
//! [`model`] runs a closure repeatedly, once per distinct thread
//! interleaving, with every interleaving chosen deterministically by a
//! depth-first search over scheduling decisions. Model code uses the
//! drop-in primitives from [`atomic`], [`sync`], [`thread`] and
//! [`hint`] — the same surface `kex-util::sync` re-exports under
//! `cfg(loom)` — so the *production* algorithms in `kex-core` run
//! unmodified under the checker.
//!
//! ```
//! use kex_loom::atomic::{AtomicUsize, Ordering::SeqCst};
//! use std::sync::Arc;
//!
//! kex_loom::model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = Arc::clone(&x);
//!     let t = kex_loom::thread::spawn(move || x2.fetch_add(1, SeqCst));
//!     x.fetch_add(1, SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(x.load(SeqCst), 2);
//! });
//! ```
//!
//! # Model and guarantees
//!
//! * **Memory model**: sequential consistency *by default*. Every
//!   atomic executes at a serialization point, and with weak memory off
//!   the `Ordering` argument is ignored — exact for all-`SeqCst` code
//!   but blind to relaxed-ordering bugs. Enabling
//!   [`Builder::weak_memory`] (or setting `LOOM_WEAK_MEMORY=1`) switches
//!   the atomics to an operational C11 fragment: per-location
//!   modification orders, per-thread acquired views, release sequences,
//!   and an SC order for `SeqCst` accesses, with each load's read-from
//!   choice explored as a decision (bounded by
//!   [`Builder::weak_history`]). Known under-approximations, all in the
//!   safe direction for checking that *forbidden* outcomes stay
//!   forbidden: no fence modelling (the workspace uses none),
//!   load-buffering cycles are never produced, read-from enumeration is
//!   bounded to the newest `weak_history` stores, and a re-scheduled
//!   spinner reads the newest store (the weak analogue of yield
//!   demotion).
//! * **Exhaustiveness**: with no preemption bound the search visits
//!   every interleaving of schedule points, modulo one sound reduction —
//!   a thread that executed a spin hint is re-scheduled only after
//!   another thread performs a write (re-running a pure re-read with
//!   nothing changed would revisit an identical state).
//! * **Preemption bounding**: [`Builder::max_preemptions`] (or the
//!   `LOOM_MAX_PREEMPTIONS` env var) caps *involuntary* context switches
//!   per execution, the CHESS heuristic: most concurrency bugs manifest
//!   with very few preemptions, and the bound turns exponential searches
//!   polynomial.
//! * **Failures**: an assertion failure inside the model, a deadlock
//!   (all threads blocked), or a stuck spinner (no writer can ever wake
//!   it — i.e. a lost wakeup) aborts the search and panics with the
//!   failing schedule.

#![warn(missing_docs)]

pub mod atomic;
pub mod hint;
mod rt;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of distinct schedules (executions) explored.
    pub executions: u64,
    /// Total schedule points across all executions.
    pub schedule_points: u64,
}

/// Configures an exploration; `check` runs it.
///
/// ```
/// kex_loom::Builder::new().max_preemptions(2).check(|| { /* model */ });
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Cap on involuntary preemptions per execution; `None` explores
    /// exhaustively. Overridden by the `LOOM_MAX_PREEMPTIONS` env var
    /// when set (so CI can tighten or loosen every model at once).
    pub max_preemptions: Option<u32>,
    /// Abort an execution that exceeds this many schedule points
    /// (livelock guard).
    pub max_steps: u64,
    /// Panic if the exploration exceeds this many executions instead of
    /// silently truncating coverage.
    pub max_branches: u64,
    /// Explore atomics under the weak-memory (C11 fragment) backend
    /// instead of promoting every ordering to SC. Overridden by the
    /// `LOOM_WEAK_MEMORY` env var (`1`/`true` on, `0`/`false` off).
    pub weak_memory: bool,
    /// With weak memory on: how many of the newest stores in a
    /// location's modification order a load may read from (the
    /// read-from enumeration bound). Overridden by `LOOM_WEAK_HISTORY`.
    pub weak_history: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: None,
            max_steps: 100_000,
            max_branches: 2_000_000,
            weak_memory: false,
            weak_history: 4,
        }
    }
}

impl Builder {
    /// A builder with default limits and exhaustive exploration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound (see [`Builder::max_preemptions`]).
    pub fn max_preemptions(mut self, n: u32) -> Self {
        self.max_preemptions = Some(n);
        self
    }

    /// Sets the per-execution schedule-point cap.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the total execution cap.
    pub fn max_branches(mut self, n: u64) -> Self {
        self.max_branches = n;
        self
    }

    /// Enables or disables the weak-memory backend (see
    /// [`Builder::weak_memory`]).
    pub fn weak_memory(mut self, on: bool) -> Self {
        self.weak_memory = on;
        self
    }

    /// Sets the read-from enumeration bound (see
    /// [`Builder::weak_history`]).
    pub fn weak_history(mut self, n: usize) -> Self {
        self.weak_history = n;
        self
    }

    fn resolved(&self) -> Builder {
        let mut cfg = *self;
        if let Some(envp) = rt::env_u64("LOOM_MAX_PREEMPTIONS") {
            cfg.max_preemptions = Some(envp as u32);
        }
        if let Some(envb) = rt::env_u64("LOOM_MAX_BRANCHES") {
            cfg.max_branches = envb;
        }
        if let Ok(v) = std::env::var("LOOM_WEAK_MEMORY") {
            cfg.weak_memory = matches!(v.trim(), "1" | "true" | "on" | "yes");
        }
        if let Some(envh) = rt::env_u64("LOOM_WEAK_HISTORY") {
            cfg.weak_history = (envh as usize).max(1);
        }
        cfg
    }

    /// Explores every schedule of `f`; panics with the failing schedule
    /// if any execution fails. Returns exploration statistics.
    pub fn check<F>(self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.resolved().explore(Arc::new(f)) {
            Ok(stats) => stats,
            Err(msg) => panic!("model check failed\n{msg}"),
        }
    }

    /// Like [`Builder::check`] but *expects* a failure: returns the
    /// failure message, panicking if every schedule passes. Used to
    /// prove the checker actually detects an injected bug.
    pub fn check_expecting_failure<F>(self, f: F) -> String
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.resolved().explore(Arc::new(f)) {
            Ok(stats) => panic!(
                "expected the model to fail, but all {} executions passed",
                stats.executions
            ),
            Err(msg) => msg,
        }
    }

    fn explore(self, f: Arc<dyn Fn() + Send + Sync>) -> Result<Stats, String> {
        let cfg = rt::Config {
            max_preemptions: self.max_preemptions,
            max_steps: self.max_steps,
            weak: self.weak_memory.then_some(self.weak_history.max(1)),
        };
        let mut decisions = Vec::new();
        let mut executions = 0u64;
        let mut schedule_points = 0u64;
        loop {
            let exec = rt::Execution::new(cfg, decisions);
            let outcome = exec.run(f.clone());
            executions += 1;
            schedule_points += outcome.schedule_points;
            if let Some(msg) = outcome.failure {
                return Err(format!("execution {executions}: {msg}"));
            }
            if executions >= self.max_branches {
                panic!(
                    "exploration exceeded {} executions without converging; \
                     shrink the model or set a preemption bound",
                    self.max_branches
                );
            }
            decisions = outcome.decisions;
            if !rt::advance(&mut decisions) {
                return Ok(Stats {
                    executions,
                    schedule_points,
                });
            }
        }
    }
}

/// Exhaustively model-checks `f` (honouring `LOOM_MAX_PREEMPTIONS`),
/// panicking with the failing schedule on any violation.
pub fn model<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Model-checks `f` expecting at least one schedule to fail; returns
/// the failure message. See [`Builder::check_expecting_failure`].
pub fn check_expecting_failure<F>(f: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check_expecting_failure(f)
}

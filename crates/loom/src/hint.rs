//! Spin-hint shim: the facade's replacement for `std::hint::spin_loop`.

use std::panic::Location;

use crate::rt;

/// Inside a model: a yield point that demotes the spinner until another
/// thread performs a write, which both prunes stutter schedules and
/// makes unbounded busy-wait loops explorable (iterations are bounded
/// by the total number of writes). Outside a model: a no-op.
#[track_caller]
pub fn spin_loop() {
    rt::yield_point("hint::spin_loop", Location::caller());
}

//! Model-checked [`Mutex`] and [`Condvar`] matching the non-poisoning
//! `kex-util::sync` API surface, so `kex-util` can re-export these
//! under `cfg(loom)` with no call-site changes.
//!
//! Blocking is cooperative: a thread that cannot acquire parks with a
//! `rt::WaitTarget` keyed by the primitive's address, and the releasing
//! /notifying thread marks it runnable again. Because every block
//! decision happens while the blocker is the only running thread, there
//! is no window in which a wakeup can be lost — if the model itself
//! loses one (e.g. a notify before the matching wait), the checker
//! reports the resulting deadlock with the schedule that produced it.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering::SeqCst};
use std::time::Duration;

use crate::rt::{self, WaitTarget};

/// A model-checked mutual-exclusion lock (non-poisoning).
pub struct Mutex<T: ?Sized> {
    locked: StdAtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as std::sync::Mutex — the lock protocol (checked
// by the model scheduler) guarantees exclusive access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            locked: StdAtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires the lock, blocking (cooperatively) until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        loop {
            rt::schedule("Mutex::lock", true, site);
            if self
                .locked
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                rt::sync_acquire(self.addr());
                return MutexGuard { lock: self };
            }
            if !rt::in_model() {
                // Outside a model there is no scheduler to wake us;
                // uncontended use (setup/teardown) never reaches here
                // with the lock held by another thread for long.
                std::hint::spin_loop();
                continue;
            }
            rt::block_on(
                WaitTarget::Mutex(self.addr()),
                "Mutex::lock (blocked)",
                site,
            );
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        rt::schedule("Mutex::try_lock", true, Location::caller());
        if self
            .locked
            .compare_exchange(false, true, SeqCst, SeqCst)
            .is_ok()
        {
            rt::sync_acquire(self.addr());
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.locked.load(SeqCst) {
            f.write_str("Mutex(<locked>)")
        } else {
            // SAFETY: unlocked at the moment of the check; Debug output
            // is inherently racy and only used outside models.
            unsafe { write!(f, "Mutex({:?})", &*self.data.get()) }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::schedule("Mutex::unlock", true, Location::caller());
        rt::sync_release(self.lock.addr());
        self.lock.locked.store(false, SeqCst);
        rt::wake_all(WaitTarget::Mutex(self.lock.addr()));
    }
}

/// A model-checked condition variable paired with [`Mutex`].
pub struct Condvar {
    // Gives the condvar a unique address to key waiters on (a ZST could
    // share addresses with a sibling field).
    _addr: u8,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Condvar { _addr: 0 }
    }

    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Atomically releases the guard's lock and waits; re-acquires
    /// before returning. Spurious wakeups are possible, as with std.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let site = Location::caller();
        let mutex = guard.lock;
        // Release the lock; because no other thread runs between the
        // store and the block below, the wait is atomic w.r.t. the
        // scheduler and no notification can slip through unseen.
        rt::schedule("Condvar::wait (release)", true, site);
        rt::sync_release(mutex.addr());
        mutex.locked.store(false, SeqCst);
        rt::wake_all(WaitTarget::Mutex(mutex.addr()));
        rt::block_on(WaitTarget::Condvar(self.addr()), "Condvar::wait", site);
        // Re-acquire before returning.
        loop {
            rt::schedule("Condvar::wait (relock)", true, site);
            if mutex
                .locked
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                rt::sync_acquire(mutex.addr());
                return;
            }
            rt::block_on(
                WaitTarget::Mutex(mutex.addr()),
                "Condvar::wait (relock)",
                site,
            );
        }
    }

    /// Timed-wait shim: the model has no clock, so this waits like
    /// [`Condvar::wait`] and reports `false` (never timed out). Code
    /// relying on a timeout for *progress* (not just latency) will show
    /// up as a deadlock — which is the bug the timeout was masking.
    #[track_caller]
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, _timeout: Duration) -> bool {
        self.wait(guard);
        false
    }

    /// Wakes one waiter (the lowest-tid one; sufficient because waiter
    /// identity is symmetric in the modelled algorithms).
    #[track_caller]
    pub fn notify_one(&self) {
        rt::schedule("Condvar::notify_one", true, Location::caller());
        rt::wake_one(WaitTarget::Condvar(self.addr()));
    }

    /// Wakes all waiters.
    #[track_caller]
    pub fn notify_all(&self) {
        rt::schedule("Condvar::notify_all", true, Location::caller());
        rt::wake_all(WaitTarget::Condvar(self.addr()));
    }
}

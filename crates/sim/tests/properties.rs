//! Property-style tests of the simulator substrate itself: state
//! encode/decode round-trips, deterministic replay, scheduler fairness,
//! and memory-model accounting laws.
//!
//! Each test sweeps a deterministic family of seeded cases (a fixed
//! PRNG stream drives the "random" inputs), so failures reproduce
//! exactly without an external property-testing runtime.

use std::sync::Arc;

use kex_util::rng::SmallRng;

use kex_sim::mem::MemCtx;
use kex_sim::node::Node;
use kex_sim::prelude::*;

/// A little algorithm with enough state to stress the encoder: a ticket
/// dispenser with a per-process scratch slot and a nested skip call.
struct Ticketish {
    counter: VarId,
    slots: VarId,
    child: NodeId,
}

impl Node for Ticketish {
    fn name(&self) -> String {
        "ticketish".into()
    }

    fn locals_len(&self) -> usize {
        2
    }

    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
        let p = mem.pid();
        match (sec, pc) {
            (Section::Entry, 0) => {
                locals[0] = mem.fetch_and_increment(self.counter, 1);
                Step::Goto(1)
            }
            (Section::Entry, 1) => Step::Call {
                child: self.child,
                section: Section::Entry,
                ret: 2,
            },
            (Section::Entry, 2) => {
                mem.write(kex_sim::vars::at(self.slots, p), locals[0] % 7);
                Step::Return
            }
            (Section::Exit, 0) => {
                locals[1] = mem.read(kex_sim::vars::at(self.slots, p));
                Step::Return
            }
            _ => unreachable!(),
        }
    }
}

fn ticketish_protocol(n: usize) -> Arc<Protocol> {
    let mut b = ProtocolBuilder::new(n);
    let counter = b.vars.alloc("counter", 0);
    let slots = b.vars.alloc_array("slot", n, 0);
    let child = b.add(SkipNode);
    let root = b.add(Ticketish {
        counter,
        slots,
        child,
    });
    b.finish(root, n - 1)
}

/// decode(encode(w)) re-encodes identically at every point of a random
/// execution.
#[test]
fn encode_decode_round_trips_anywhere() {
    let mut gen = SmallRng::seed_from_u64(0xE5C0DE);
    for _ in 0..64 {
        let n = gen.gen_range(2..6);
        let steps = gen.gen_range(0..200);
        let seed = gen.next_u64();
        let proto = ticketish_protocol(n);
        let timing = Timing {
            ncs_steps: 1,
            cs_steps: 1,
        };
        let mut w = World::new(proto.clone(), MemoryModel::CacheCoherent, timing, None);
        let mut sched = RandomSched::new(seed);
        for _ in 0..steps {
            let runnable = w.runnable();
            if runnable.is_empty() {
                break;
            }
            let p = sched.next(&runnable);
            w.step(p);
        }
        let enc = w.encode();
        let w2 = World::decode(proto, MemoryModel::CacheCoherent, timing, &enc);
        assert_eq!(w2.encode(), enc, "n={n} steps={steps} seed={seed}");
    }
}

/// The same seed yields the same execution, RMR counts included.
#[test]
fn seeded_runs_are_deterministic() {
    let mut gen = SmallRng::seed_from_u64(0xDE7E12);
    for _ in 0..32 {
        let n = gen.gen_range(2..6);
        let seed = gen.next_u64();
        let run = || {
            let mut sim = Sim::new(ticketish_protocol(n), MemoryModel::Dsm)
                .cycles(5)
                .scheduler(RandomSched::new(seed))
                .build();
            let report = sim.run(100_000);
            (
                report.steps,
                report.completed.clone(),
                report.stats.pair().total,
            )
        };
        assert_eq!(run(), run(), "n={n} seed={seed}");
    }
}

/// Round-robin never lets any runnable process fall more than one full
/// rotation behind.
#[test]
fn round_robin_gap_is_bounded() {
    let mut gen = SmallRng::seed_from_u64(0x90BB17);
    for _ in 0..64 {
        let n = gen.gen_range(2..8);
        let steps = gen.gen_range(10..300);
        let mut sched = RoundRobin::new();
        let runnable: Vec<Pid> = (0..n).collect();
        let mut last_seen = vec![0usize; n];
        for t in 1..=steps {
            let p = sched.next(&runnable);
            let gap = t - last_seen[p];
            assert!(gap <= n, "process {p} waited {gap} > {n} turns");
            last_seen[p] = t;
        }
    }
}

/// CC accounting law: between two writes by others, a process pays at
/// most one remote read on a variable, no matter how often it reads.
#[test]
fn cc_reads_are_cached_between_invalidations() {
    let mut gen = SmallRng::seed_from_u64(0xCAC4ED);
    for _ in 0..64 {
        let reads = gen.gen_range(1..50);
        let writers = gen.gen_range(1..5);
        let mut t = kex_sim::vars::VarTable::new();
        let v = t.alloc("v", 0);
        let mut m = kex_sim::mem::MemState::new(&t, 8);
        for round in 0..writers {
            {
                let mut ctx = m.ctx(&t, MemoryModel::CacheCoherent, 7);
                for _ in 0..reads {
                    ctx.read(v);
                }
            }
            let so_far = m.remote_refs(7);
            assert!(
                so_far as usize <= round + 1,
                "too many remote reads: {so_far} after round {round}"
            );
            // Another process writes, invalidating p7's copy.
            let mut ctx = m.ctx(&t, MemoryModel::CacheCoherent, round % 6);
            ctx.write(v, round as Word);
        }
    }
}

/// DSM accounting law: the owner never pays, others always pay.
#[test]
fn dsm_owner_access_is_free() {
    let mut gen = SmallRng::seed_from_u64(0xD53107);
    for _ in 0..64 {
        let accesses = gen.gen_range(1..60);
        let owner = gen.gen_range(0..4);
        let mut t = kex_sim::vars::VarTable::new();
        let v = t.alloc_local("v", owner, 0);
        let mut m = kex_sim::mem::MemState::new(&t, 4);
        for i in 0..accesses {
            let mut ctx = m.ctx(&t, MemoryModel::Dsm, owner);
            ctx.read(v);
            ctx.write(v, i as Word);
        }
        assert_eq!(m.remote_refs(owner), 0);
        let stranger = (owner + 1) % 4;
        {
            let mut ctx = m.ctx(&t, MemoryModel::Dsm, stranger);
            ctx.read(v);
            ctx.write(v, 0);
        }
        assert_eq!(m.remote_refs(stranger), 2);
    }
}

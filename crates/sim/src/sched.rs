//! Schedulers: who takes the next atomic step.
//!
//! The paper's processes are asynchronous: any interleaving of atomic
//! statements is possible, subject only to the fairness needed for
//! starvation-freedom (a nonfaulty process keeps taking steps). The
//! schedulers here produce useful families of interleavings:
//!
//! * [`RoundRobin`] — the most regular fair schedule; good for smoke tests
//!   and deterministic RMR measurements.
//! * [`RandomSched`] — uniformly random among runnable processes; seeded,
//!   so experiments are reproducible. Many seeds approximate an adversary
//!   when measuring worst-case RMR counts.
//! * [`SkewedSched`] — geometrically biased toward low pids, starving
//!   high pids for long stretches (still fair in the limit). Useful for
//!   stressing the release/hand-off paths.
//!
//! Exhaustive interleaving coverage for small instances is the job of the
//! model checker in [`crate::explore`], not of a scheduler.

use kex_util::rng::SmallRng;

use crate::types::Pid;

/// Picks the next process to step among the runnable ones.
pub trait Scheduler {
    /// Choose one element of `runnable` (guaranteed non-empty).
    fn next(&mut self, runnable: &[Pid]) -> Pid;
}

/// Strict rotation over runnable processes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    last: Pid,
}

impl RoundRobin {
    /// A round-robin scheduler starting from pid 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, runnable: &[Pid]) -> Pid {
        // Pick the first runnable pid strictly greater than `last`,
        // wrapping around.
        let p = runnable
            .iter()
            .copied()
            .find(|&p| p > self.last)
            .unwrap_or(runnable[0]);
        self.last = p;
        p
    }
}

/// Uniformly random fair scheduler with a fixed seed.
#[derive(Debug, Clone)]
pub struct RandomSched {
    rng: SmallRng,
}

impl RandomSched {
    /// A random scheduler with the given seed (reproducible).
    pub fn new(seed: u64) -> Self {
        RandomSched {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomSched {
    fn next(&mut self, runnable: &[Pid]) -> Pid {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Randomized scheduler biased toward low pids: each runnable process is
/// chosen over all higher-pid ones with probability `bias`.
///
/// With `bias` close to 1 the schedule lets low pids lap the others many
/// times before a high pid moves — a cheap approximation of an adversary
/// trying to maximize a victim's waiting (and hence its remote
/// references).
#[derive(Debug, Clone)]
pub struct SkewedSched {
    rng: SmallRng,
    bias: f64,
}

impl SkewedSched {
    /// A skewed scheduler. `bias` must be in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `bias` is not strictly between 0 and 1.
    pub fn new(seed: u64, bias: f64) -> Self {
        assert!(bias > 0.0 && bias < 1.0, "bias must be in (0,1)");
        SkewedSched {
            rng: SmallRng::seed_from_u64(seed),
            bias,
        }
    }
}

impl Scheduler for SkewedSched {
    fn next(&mut self, runnable: &[Pid]) -> Pid {
        for &p in &runnable[..runnable.len() - 1] {
            if self.rng.gen_bool(self.bias) {
                return p;
            }
        }
        *runnable.last().unwrap()
    }
}

/// The harshest *fair-in-the-limit* adversary against one process: the
/// victim is scheduled only when no other process is runnable... except
/// once every `relent` picks, which keeps the schedule strongly fair (the
/// victim steps infinitely often) while letting rivals lap it `relent`
/// times between its steps.
///
/// Against a starvation-free algorithm the victim still completes its
/// acquisitions (just slowly); against the global-spin baseline it burns
/// remote references proportional to `relent` without bound. Use it to
/// measure a victim's worst-case costs under maximal adversity.
#[derive(Debug, Clone)]
pub struct VictimSched {
    victim: Pid,
    relent: u64,
    ticks: u64,
    rr: RoundRobin,
}

impl VictimSched {
    /// An adversary against `victim`, letting it run once every `relent`
    /// scheduling decisions.
    ///
    /// # Panics
    /// Panics if `relent == 0`.
    pub fn new(victim: Pid, relent: u64) -> Self {
        assert!(relent > 0, "relent must be positive (fairness)");
        VictimSched {
            victim,
            relent,
            ticks: 0,
            rr: RoundRobin::new(),
        }
    }
}

impl Scheduler for VictimSched {
    fn next(&mut self, runnable: &[Pid]) -> Pid {
        self.ticks += 1;
        let others: Vec<Pid> = runnable
            .iter()
            .copied()
            .filter(|&p| p != self.victim)
            .collect();
        if (others.is_empty() || self.ticks.is_multiple_of(self.relent))
            && runnable.contains(&self.victim)
        {
            return self.victim;
        }
        if others.is_empty() {
            runnable[0]
        } else {
            self.rr.next(&others)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobin::new();
        let r = vec![0, 2, 5];
        assert_eq!(s.next(&r), 2); // first pid > 0
        assert_eq!(s.next(&r), 5);
        assert_eq!(s.next(&r), 0); // wraps
        assert_eq!(s.next(&r), 2);
    }

    #[test]
    fn round_robin_handles_shrinking_sets() {
        let mut s = RoundRobin::new();
        assert_eq!(s.next(&[0, 1, 2]), 1);
        // pid 2 left the runnable set:
        assert_eq!(s.next(&[0, 1]), 0);
    }

    #[test]
    fn random_sched_is_deterministic_per_seed() {
        let r: Vec<Pid> = (0..8).collect();
        let picks1: Vec<Pid> = {
            let mut s = RandomSched::new(42);
            (0..32).map(|_| s.next(&r)).collect()
        };
        let picks2: Vec<Pid> = {
            let mut s = RandomSched::new(42);
            (0..32).map(|_| s.next(&r)).collect()
        };
        assert_eq!(picks1, picks2);
    }

    #[test]
    fn skewed_sched_prefers_low_pids() {
        let r: Vec<Pid> = (0..4).collect();
        let mut s = SkewedSched::new(7, 0.9);
        let picks: Vec<Pid> = (0..1000).map(|_| s.next(&r)).collect();
        let low = picks.iter().filter(|&&p| p == 0).count();
        let high = picks.iter().filter(|&&p| p == 3).count();
        assert!(low > high * 10, "low={low}, high={high}");
        // ...but remains fair: every pid is eventually scheduled.
        for p in 0..4 {
            assert!(picks.contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "bias must be in (0,1)")]
    fn skewed_rejects_degenerate_bias() {
        let _ = SkewedSched::new(0, 1.0);
    }

    #[test]
    fn victim_sched_is_fair_but_brutal() {
        let r: Vec<Pid> = (0..4).collect();
        let mut s = VictimSched::new(2, 10);
        let picks: Vec<Pid> = (0..200).map(|_| s.next(&r)).collect();
        let victim_picks = picks.iter().filter(|&&p| p == 2).count();
        assert_eq!(victim_picks, 20, "victim runs exactly once per relent");
        // Rivals rotate fairly among themselves.
        for p in [0usize, 1, 3] {
            assert!(picks.iter().filter(|&&q| q == p).count() >= 50);
        }
    }

    #[test]
    fn victim_sched_handles_victim_only_sets() {
        let mut s = VictimSched::new(1, 5);
        assert_eq!(s.next(&[1]), 1);
    }
}

//! Structural self-description of algorithm nodes: the access-summary
//! IR that static analyses (the `kex-analyze` crate) consume.
//!
//! A [`NodeDesc`] mirrors a node's two sections as lists of
//! [`StmtDesc`]s — one per numbered atomic statement — each declaring:
//!
//! * the **shared-variable accesses** the statement performs
//!   ([`AccessDesc`]: which variable(s), read/write/RMW, and the
//!   worst-case repeat count inside the single atomic step);
//! * the **forward control-flow successors** ([`SuccDesc`]); and
//! * at most one **back edge** ([`BackEdge`]), classified as a busy-wait
//!   spin, a statically bounded retry loop, or an unbounded retry.
//!
//! Descriptions are *per process* ([`crate::node::Node::describe`] takes
//! a pid) because many algorithms index shared arrays by the caller's
//! pid — `P[p][..]`, `Spin[p]` — and locality under the DSM model
//! depends on exactly which element is touched.
//!
//! The contract an implementation must uphold (checked by the
//! analyzer's validator): statements are numbered densely from 0 in
//! order; every `Goto`/`Call` return target moves strictly forward
//! (loops are expressed only through the back edge); the back edge
//! targets a pc at or before its own statement. Removing back edges
//! therefore leaves a DAG, which is what makes worst-case path analysis
//! well defined.

use crate::types::{NodeId, Section, VarId};

/// How a statement touches a shared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain read.
    Read,
    /// Plain write.
    Write,
    /// Read-modify-write (`fetch&increment`, `swap`, `CAS`,
    /// `test&set`, ...).
    Rmw,
}

/// The variable(s) a single access may touch. Statements whose target
/// depends on runtime data (e.g. Figure 6's `P[u.pid][u.loc]`) declare
/// the full contiguous candidate range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarRef {
    /// Exactly this variable.
    One(VarId),
    /// Any element of the contiguous array `base .. base+len`.
    Range {
        /// First element (as returned by `VarTable::alloc_array`).
        base: VarId,
        /// Number of elements.
        len: usize,
    },
}

impl VarRef {
    /// Number of candidate variables.
    pub fn len(&self) -> usize {
        match self {
            VarRef::One(_) => 1,
            VarRef::Range { len, .. } => *len,
        }
    }

    /// Always false: an access names at least one variable.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over the candidate variable ids.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        let (base, len) = match self {
            VarRef::One(v) => (*v, 1),
            VarRef::Range { base, len } => (*base, *len),
        };
        (0..len).map(move |i| crate::vars::at(base, i))
    }
}

/// One declared shared-memory access within a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessDesc {
    /// Candidate target variable(s).
    pub var: VarRef,
    /// Read / write / RMW.
    pub kind: AccessKind,
    /// Worst-case number of times the access repeats inside this one
    /// atomic statement (1 for ordinary statements; `n`-ish for the
    /// Figure-1 queue scans — exactly what the atomic-section lint
    /// flags).
    pub multiplicity: usize,
}

impl AccessDesc {
    /// A single read of `v`.
    pub fn read(v: VarId) -> Self {
        AccessDesc {
            var: VarRef::One(v),
            kind: AccessKind::Read,
            multiplicity: 1,
        }
    }

    /// A single write of `v`.
    pub fn write(v: VarId) -> Self {
        AccessDesc {
            var: VarRef::One(v),
            kind: AccessKind::Write,
            multiplicity: 1,
        }
    }

    /// A single RMW of `v`.
    pub fn rmw(v: VarId) -> Self {
        AccessDesc {
            var: VarRef::One(v),
            kind: AccessKind::Rmw,
            multiplicity: 1,
        }
    }

    /// A read that may land anywhere in `base..base+len`.
    pub fn read_any(base: VarId, len: usize) -> Self {
        AccessDesc {
            var: VarRef::Range { base, len },
            kind: AccessKind::Read,
            multiplicity: 1,
        }
    }

    /// A write that may land anywhere in `base..base+len`.
    pub fn write_any(base: VarId, len: usize) -> Self {
        AccessDesc {
            var: VarRef::Range { base, len },
            kind: AccessKind::Write,
            multiplicity: 1,
        }
    }

    /// An RMW that may land anywhere in `base..base+len`.
    pub fn rmw_any(base: VarId, len: usize) -> Self {
        AccessDesc {
            var: VarRef::Range { base, len },
            kind: AccessKind::Rmw,
            multiplicity: 1,
        }
    }

    /// Repeat this access up to `m` times within the statement.
    pub fn times(mut self, m: usize) -> Self {
        self.multiplicity = m;
        self
    }
}

/// A forward control-flow successor of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuccDesc {
    /// Continue at this (strictly later) pc in the same section.
    Goto(u32),
    /// Invoke a child node's section, resuming at `ret` afterwards.
    Call {
        /// Child node invoked.
        child: NodeId,
        /// Which of the child's sections runs.
        section: Section,
        /// The (strictly later) pc execution resumes at.
        ret: u32,
    },
    /// The section completes.
    Return,
}

/// Classification of a statement's back edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackKind {
    /// A busy-wait: the statement repeats until *another process*
    /// changes the spin target. The local-spin audit examines exactly
    /// these.
    Spin,
    /// A retry loop that provably iterates at most this many times
    /// regardless of scheduling (e.g. Figure 7's walk over `k` name
    /// bits).
    Bounded(usize),
    /// A retry loop with no static bound that is *not* a simple wait —
    /// the shape that makes the global-spin baseline generate unbounded
    /// remote traffic.
    Unbounded,
}

/// One back edge leaving a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackEdge {
    /// Target pc, `<=` the statement's own pc (equal for self-loops).
    pub to: u32,
    /// What kind of repetition this is.
    pub kind: BackKind,
}

impl BackEdge {
    /// A self-loop busy-wait at `pc`.
    pub fn spin(pc: u32) -> Self {
        BackEdge {
            to: pc,
            kind: BackKind::Spin,
        }
    }

    /// A bounded retry back to `to`.
    pub fn bounded(to: u32, iters: usize) -> Self {
        BackEdge {
            to,
            kind: BackKind::Bounded(iters),
        }
    }

    /// An unbounded retry back to `to`.
    pub fn unbounded(to: u32) -> Self {
        BackEdge {
            to,
            kind: BackKind::Unbounded,
        }
    }
}

/// Description of one atomic statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtDesc {
    /// Statement number within its section (dense from 0).
    pub pc: u32,
    /// Human-readable rendering, e.g. `"x := f&i(X, -1)"`.
    pub label: &'static str,
    /// Shared accesses this statement performs.
    pub accesses: Vec<AccessDesc>,
    /// Forward successors (targets strictly greater than `pc`).
    pub succ: Vec<SuccDesc>,
    /// Back edges (the only way to express loops). A statement may
    /// carry several — e.g. the global-spin baseline's wait both
    /// self-loops (a spin) and retries from statement 0 (unbounded).
    pub back: Vec<BackEdge>,
}

impl StmtDesc {
    /// A statement with no accesses and a single forward successor.
    pub fn new(pc: u32, label: &'static str) -> Self {
        StmtDesc {
            pc,
            label,
            accesses: Vec::new(),
            succ: Vec::new(),
            back: Vec::new(),
        }
    }

    /// Add an access.
    pub fn access(mut self, a: AccessDesc) -> Self {
        self.accesses.push(a);
        self
    }

    /// Add a forward `Goto` successor.
    pub fn goto(mut self, pc: u32) -> Self {
        self.succ.push(SuccDesc::Goto(pc));
        self
    }

    /// Add a `Call` successor.
    pub fn call(mut self, child: NodeId, section: Section, ret: u32) -> Self {
        self.succ.push(SuccDesc::Call {
            child,
            section,
            ret,
        });
        self
    }

    /// Add a `Return` successor.
    pub fn returns(mut self) -> Self {
        self.succ.push(SuccDesc::Return);
        self
    }

    /// Add a back edge.
    pub fn back_edge(mut self, b: BackEdge) -> Self {
        self.back.push(b);
        self
    }
}

/// Declared spin-location space of a node, per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceClass {
    /// The node never busy-waits.
    NoSpin,
    /// The node spins on a statically bounded set of locations per
    /// process (count them from the IR).
    Bounded,
    /// The paper-true algorithm needs unboundedly many spin locations
    /// per process (Figure 5); the IR's finite range is a simulation
    /// artifact (`max_locs`).
    Unbounded,
}

/// Full structural self-description of a node, for one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDesc {
    /// The node's own exclusion parameter — the `k` of the paper figure
    /// this node instantiates (e.g. a Figure-6 stage admitting `j`
    /// processes declares `Some(j)`). `None` for combinators and
    /// non-exclusion nodes.
    pub exclusion: Option<usize>,
    /// Declared spin-space class (cross-checked against the IR by the
    /// bounded-space analysis).
    pub spin_space: SpaceClass,
    /// Entry-section statements.
    pub entry: Vec<StmtDesc>,
    /// Exit-section statements.
    pub exit: Vec<StmtDesc>,
}

impl NodeDesc {
    /// An empty description (no statements — both sections return
    /// immediately, like `skip`).
    pub fn empty() -> Self {
        NodeDesc {
            exclusion: None,
            spin_space: SpaceClass::NoSpin,
            entry: vec![StmtDesc::new(0, "skip").returns()],
            exit: vec![StmtDesc::new(0, "skip").returns()],
        }
    }

    /// The statements of `section`.
    pub fn section(&self, section: Section) -> &[StmtDesc] {
        match section {
            Section::Entry => &self.entry,
            Section::Exit => &self.exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VarId;

    fn v(i: u32) -> VarId {
        // Test-only: VarId is crate-private to construct; mirror the
        // allocator by building a table.
        let mut t = crate::vars::VarTable::new();
        let base = t.alloc("a", 0);
        for _ in 0..i {
            t.alloc("a", 0);
        }
        crate::vars::at(base, i as usize)
    }

    #[test]
    fn varref_iterates_contiguously() {
        let r = VarRef::Range { base: v(2), len: 3 };
        let ids: Vec<usize> = r.iter().map(|x| x.index()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(VarRef::One(v(0)).len(), 1);
    }

    #[test]
    fn builders_compose() {
        let s = StmtDesc::new(2, "x := f&i(X, -1)")
            .access(AccessDesc::rmw(v(0)))
            .access(AccessDesc::read(v(1)).times(4))
            .goto(3)
            .back_edge(BackEdge::bounded(1, 7));
        assert_eq!(s.pc, 2);
        assert_eq!(s.accesses.len(), 2);
        assert_eq!(s.accesses[1].multiplicity, 4);
        assert_eq!(s.succ, vec![SuccDesc::Goto(3)]);
        assert_eq!(s.back, vec![BackEdge::bounded(1, 7)]);
    }

    #[test]
    fn empty_desc_is_skip_shaped() {
        let d = NodeDesc::empty();
        assert_eq!(d.section(Section::Entry).len(), 1);
        assert_eq!(d.section(Section::Exit)[0].succ, vec![SuccDesc::Return]);
        assert_eq!(d.spin_space, SpaceClass::NoSpin);
    }
}

//! Crash-failure injection.
//!
//! The paper's fault model (§2): a process is *faulty* in a history if it
//! is not in its noncritical section and executes no statements after some
//! state. A `(k-1)`-resilient algorithm must guarantee progress to every
//! nonfaulty process provided at most `k-1` processes are faulty.
//!
//! A [`FailurePlan`] makes that adversary concrete: it declares, per
//! victim, the moment the victim permanently stops taking steps. Plans are
//! polled by the simulator after every step; once a trigger matches, the
//! victim is marked failed and never scheduled again. Failing *inside the
//! critical section* is the harshest case — the victim occupies one of the
//! `k` slots forever.

use crate::process::Phase;
use crate::types::Pid;
use crate::world::World;

/// When a victim stops taking steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailWhen {
    /// After the victim has executed this many of its own steps
    /// (wherever that lands it — possibly mid-entry-section).
    AfterOwnSteps(u64),
    /// The first time the victim is inside its critical section.
    InCriticalSection,
    /// The first time the victim is contending (outside its noncritical
    /// section) having taken at least `after_own_steps` steps.
    WhileContending {
        /// Minimum own-step count before the trigger can fire.
        after_own_steps: u64,
    },
}

/// One victim and its trigger.
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// The process to crash.
    pub pid: Pid,
    /// When to crash it.
    pub when: FailWhen,
}

/// A set of pending failures, polled against the world after every step.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    pending: Vec<FailureSpec>,
    fired: Vec<FailureSpec>,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan crashing each listed process the first time it is inside
    /// its critical section.
    pub fn crash_in_cs(pids: impl IntoIterator<Item = Pid>) -> Self {
        FailurePlan {
            pending: pids
                .into_iter()
                .map(|pid| FailureSpec {
                    pid,
                    when: FailWhen::InCriticalSection,
                })
                .collect(),
            fired: Vec::new(),
        }
    }

    /// Add a failure spec.
    pub fn push(&mut self, spec: FailureSpec) {
        self.pending.push(spec);
    }

    /// Number of failures injected so far.
    pub fn fired_count(&self) -> usize {
        self.fired.len()
    }

    /// The failures injected so far.
    pub fn fired(&self) -> &[FailureSpec] {
        &self.fired
    }

    /// `true` if no failures remain pending.
    pub fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    /// Check triggers against the current world state and crash any
    /// victims whose trigger fires. Returns the pids crashed this poll.
    pub fn poll(&mut self, world: &mut World) -> Vec<Pid> {
        let mut crashed = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            let spec = self.pending[i];
            let proc = &world.procs[spec.pid];
            let fire = !proc.failed
                && match spec.when {
                    FailWhen::AfterOwnSteps(s) => proc.steps >= s,
                    FailWhen::InCriticalSection => proc.phase.in_critical(),
                    FailWhen::WhileContending { after_own_steps } => {
                        proc.phase.is_contending() && proc.steps >= after_own_steps
                    }
                };
            if fire {
                world.fail(spec.pid);
                crashed.push(spec.pid);
                self.fired.push(spec);
                self.pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
        crashed
    }
}

/// Assert the paper's resilience precondition: at most `k - 1` failures.
///
/// Experiments that intentionally violate it (to show the `k`-th failure
/// blocks everyone) skip this check.
pub fn assert_resilience_precondition(plan: &FailurePlan, k: usize) {
    let total = plan.pending.len() + plan.fired.len();
    assert!(
        total < k,
        "failure plan injects {total} failures but only {} are tolerated (k = {k})",
        k - 1
    );
}

/// `true` if the process is faulty in the paper's sense *right now*: it
/// has failed while outside its noncritical section.
pub fn is_faulty(world: &World, p: Pid) -> bool {
    let proc = &world.procs[p];
    proc.failed && proc.phase != Phase::Done && proc.phase.is_contending()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmodel::MemoryModel;
    use crate::node::SkipNode;
    use crate::protocol::ProtocolBuilder;
    use crate::world::{Timing, World};

    fn world(n: usize) -> World {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(SkipNode);
        let p = b.finish(root, n - 1);
        World::new(
            p,
            MemoryModel::CacheCoherent,
            Timing {
                ncs_steps: 0,
                cs_steps: 2,
            },
            None,
        )
    }

    #[test]
    fn crash_in_cs_fires_exactly_when_critical() {
        let mut w = world(3);
        let mut plan = FailurePlan::crash_in_cs([1]);
        assert!(plan.poll(&mut w).is_empty());
        w.step(1); // begins entry
        assert!(plan.poll(&mut w).is_empty());
        w.step(1); // skip entry completes: now critical
        assert_eq!(plan.poll(&mut w), vec![1]);
        assert!(w.procs[1].failed);
        assert!(w.procs[1].phase.in_critical());
        assert!(is_faulty(&w, 1));
        assert!(plan.exhausted());
    }

    #[test]
    fn after_own_steps_counts_only_the_victims_steps() {
        let mut w = world(2);
        let mut plan = FailurePlan::new();
        plan.push(FailureSpec {
            pid: 0,
            when: FailWhen::AfterOwnSteps(3),
        });
        for _ in 0..10 {
            w.step(1); // other process's steps do not count
        }
        assert!(plan.poll(&mut w).is_empty());
        w.step(0);
        w.step(0);
        assert!(plan.poll(&mut w).is_empty());
        w.step(0);
        assert_eq!(plan.poll(&mut w), vec![0]);
    }

    #[test]
    #[should_panic(expected = "failure plan injects")]
    fn precondition_rejects_k_failures() {
        let plan = FailurePlan::crash_in_cs([0, 1]);
        assert_resilience_precondition(&plan, 2);
    }

    #[test]
    fn crash_fires_in_exit_section() {
        // A failure can land in the *exit* section: the victim is still
        // "contending" in the paper's sense (outside its noncritical
        // section), so it is faulty and may hold handshake state other
        // processes depend on.
        let mut w = world(2);
        let mut plan = FailurePlan::new();
        plan.push(FailureSpec {
            pid: 0,
            when: FailWhen::WhileContending { after_own_steps: 0 },
        });
        // Drive pid 0 through entry (1 skip step) and the critical
        // section (cs_steps = 2) without polling, so the first poll
        // happens with the victim in Exit.
        w.step(0); // begins entry
        w.step(0); // entry completes: critical (remaining 2)
        w.step(0); // critical work
        w.step(0); // critical work: remaining 0
        w.step(0); // begins exit
        assert_eq!(w.procs[0].phase, Phase::Exit);
        assert_eq!(plan.poll(&mut w), vec![0]);
        assert_eq!(w.procs[0].phase, Phase::Exit, "froze where it crashed");
        assert!(w.procs[0].failed);
        assert!(is_faulty(&w, 0), "failed in exit ⇒ faulty");
        assert_eq!(plan.fired_count(), 1);
        assert!(plan.exhausted());
    }

    #[test]
    fn second_crash_of_a_failed_pid_never_fires() {
        // Crashing is idempotent: once a pid is failed, further specs
        // targeting it can never fire — they stay pending forever, so
        // `exhausted()` reports false and `fired_count()` is stable.
        let mut w = world(3);
        let mut plan = FailurePlan::new();
        plan.push(FailureSpec {
            pid: 1,
            when: FailWhen::InCriticalSection,
        });
        plan.push(FailureSpec {
            pid: 1,
            when: FailWhen::AfterOwnSteps(1),
        });
        w.step(1); // begins entry
        w.step(1); // entry completes: critical — both triggers now match
        assert_eq!(plan.poll(&mut w), vec![1], "exactly one crash fires");
        assert_eq!(plan.fired_count(), 1);
        assert!(!plan.exhausted(), "duplicate spec must stay pending");
        // Repolling (and even stepping the survivors) changes nothing.
        for _ in 0..5 {
            w.step(2);
            assert!(plan.poll(&mut w).is_empty());
        }
        assert_eq!(plan.fired_count(), 1);
        assert!(!plan.exhausted());
        assert_eq!(plan.fired()[0].pid, 1);
    }
}

//! Machine memory models and the rules that classify an access as *local*
//! or *remote*.
//!
//! The paper (§2) measures time complexity as the number of **remote**
//! accesses of shared memory per critical-section acquisition, because
//! remote accesses traverse the processor-to-memory interconnect and are
//! the dominant scalability cost. Two machine classes are considered:
//!
//! * **Cache-coherent (CC)** machines: the first read of a variable brings
//!   a copy into the reading process's cache (one remote reference);
//!   subsequent reads are local until another process writes the variable,
//!   which invalidates the copy. Hence a simple spin loop of the form
//!   `while Q = p do od` generates **at most two** remote references.
//! * **Distributed shared-memory (DSM)** machines without coherent caches:
//!   every shared variable is local to exactly one process (it lives in
//!   that processor's memory partition) and remote to all others.
//!
//! [`MemoryModel`] implements exactly these accounting rules; nothing else
//! in the simulator decides locality.

use crate::types::Pid;

/// The machine class under which remote references are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// Cache-coherent machine: locality follows a per-variable set of
    /// processes holding a valid cached copy.
    CacheCoherent,
    /// Distributed shared-memory machine: locality follows the static
    /// owner assigned when the variable was allocated.
    Dsm,
}

impl MemoryModel {
    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            MemoryModel::CacheCoherent => "CC",
            MemoryModel::Dsm => "DSM",
        }
    }
}

/// Maximum number of processes supported by the cache-holder bitsets.
pub const MAX_PROCESSES: usize = 64;

/// Typed error for process universes the CC cache-holder bitsets cannot
/// represent: with `n > MAX_PROCESSES`, [`HolderSet`]'s `u64` would shift
/// out of range and silently mis-account CC locality, so builders refuse
/// such universes up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityExceeded {
    /// The requested process count.
    pub requested: usize,
    /// The supported maximum ([`MAX_PROCESSES`]).
    pub max: usize,
}

impl std::fmt::Display for CapacityExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} processes requested but the cache-holder bitsets support at most {}",
            self.requested, self.max
        )
    }
}

impl std::error::Error for CapacityExceeded {}

/// The set of processes holding a valid cached copy of a variable
/// (cache-coherent model only). A `u64` bitset, hence [`MAX_PROCESSES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HolderSet(u64);

impl HolderSet {
    /// The empty holder set (variable cached nowhere).
    #[inline]
    pub fn empty() -> Self {
        HolderSet(0)
    }

    /// A set containing exactly `p`.
    #[inline]
    pub fn only(p: Pid) -> Self {
        HolderSet(1u64 << p)
    }

    /// Does `p` hold a valid copy?
    #[inline]
    pub fn contains(self, p: Pid) -> bool {
        self.0 & (1u64 << p) != 0
    }

    /// Is `p` the *sole* holder?
    #[inline]
    pub fn is_only(self, p: Pid) -> bool {
        self.0 == 1u64 << p
    }

    /// Add `p` to the set (a read migrated a copy into `p`'s cache).
    #[inline]
    pub fn insert(&mut self, p: Pid) {
        self.0 |= 1u64 << p;
    }

    /// Invalidate all copies except `p`'s (a write by `p`).
    #[inline]
    pub fn set_only(&mut self, p: Pid) {
        self.0 = 1u64 << p;
    }
}

/// Classification of a single shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Served from the local cache or local memory partition.
    Local,
    /// Traverses the global interconnect.
    Remote,
}

impl Locality {
    /// `true` iff the access was remote.
    #[inline]
    pub fn is_remote(self) -> bool {
        matches!(self, Locality::Remote)
    }
}

/// Decide whether a **read** of a variable by `p` is local or remote, and
/// update cache state accordingly.
///
/// * CC: local iff `p` holds a valid copy; otherwise remote and a copy
///   migrates into `p`'s cache.
/// * DSM: local iff `p` owns the variable.
#[inline]
pub fn classify_read(
    model: MemoryModel,
    p: Pid,
    owner: Option<Pid>,
    holders: &mut HolderSet,
) -> Locality {
    match model {
        MemoryModel::CacheCoherent => {
            if holders.contains(p) {
                Locality::Local
            } else {
                holders.insert(p);
                Locality::Remote
            }
        }
        MemoryModel::Dsm => {
            if owner == Some(p) {
                Locality::Local
            } else {
                Locality::Remote
            }
        }
    }
}

/// Decide whether a **write or read-modify-write** by `p` is local or
/// remote, and update cache state accordingly.
///
/// * CC: local iff `p` is the sole holder (exclusive line); otherwise
///   remote, and all other copies are invalidated.
/// * DSM: local iff `p` owns the variable.
#[inline]
pub fn classify_write(
    model: MemoryModel,
    p: Pid,
    owner: Option<Pid>,
    holders: &mut HolderSet,
) -> Locality {
    match model {
        MemoryModel::CacheCoherent => {
            if holders.is_only(p) {
                Locality::Local
            } else {
                holders.set_only(p);
                Locality::Remote
            }
        }
        MemoryModel::Dsm => {
            if owner == Some(p) {
                Locality::Local
            } else {
                Locality::Remote
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_read_caches_and_stays_local() {
        let mut h = HolderSet::empty();
        assert!(classify_read(MemoryModel::CacheCoherent, 3, None, &mut h).is_remote());
        assert!(!classify_read(MemoryModel::CacheCoherent, 3, None, &mut h).is_remote());
        assert!(h.contains(3));
    }

    #[test]
    fn cc_write_invalidates_other_copies() {
        let mut h = HolderSet::empty();
        // p0 and p1 both cache the line.
        classify_read(MemoryModel::CacheCoherent, 0, None, &mut h);
        classify_read(MemoryModel::CacheCoherent, 1, None, &mut h);
        // p1 writes: remote (shared line), p0 invalidated.
        assert!(classify_write(MemoryModel::CacheCoherent, 1, None, &mut h).is_remote());
        assert!(!h.contains(0));
        assert!(h.is_only(1));
        // p1 writes again: now exclusive, local.
        assert!(!classify_write(MemoryModel::CacheCoherent, 1, None, &mut h).is_remote());
        // p0 must re-read remotely.
        assert!(classify_read(MemoryModel::CacheCoherent, 0, None, &mut h).is_remote());
    }

    #[test]
    fn cc_spin_loop_costs_at_most_two_remote_references() {
        // The §2 accounting assumption, reproduced mechanically: a spinner
        // re-reading a variable pays one remote miss, then reads locally
        // until a releaser writes, then pays one final remote read.
        let mut h = HolderSet::empty();
        let spinner = 5;
        let releaser = 7;
        let mut remote = 0;
        // First read of the spin variable: miss.
        if classify_read(MemoryModel::CacheCoherent, spinner, None, &mut h).is_remote() {
            remote += 1;
        }
        // 100 further spin iterations: all local.
        for _ in 0..100 {
            if classify_read(MemoryModel::CacheCoherent, spinner, None, &mut h).is_remote() {
                remote += 1;
            }
        }
        // Releaser writes (invalidates the spinner's copy)...
        classify_write(MemoryModel::CacheCoherent, releaser, None, &mut h);
        // ...spinner's next read misses once and the loop terminates.
        if classify_read(MemoryModel::CacheCoherent, spinner, None, &mut h).is_remote() {
            remote += 1;
        }
        assert_eq!(remote, 2);
    }

    #[test]
    fn dsm_locality_follows_static_owner() {
        let mut h = HolderSet::empty();
        assert!(!classify_read(MemoryModel::Dsm, 2, Some(2), &mut h).is_remote());
        assert!(classify_read(MemoryModel::Dsm, 3, Some(2), &mut h).is_remote());
        assert!(!classify_write(MemoryModel::Dsm, 2, Some(2), &mut h).is_remote());
        assert!(classify_write(MemoryModel::Dsm, 3, Some(2), &mut h).is_remote());
        // Unowned (global) variables are remote to everyone under DSM.
        assert!(classify_read(MemoryModel::Dsm, 2, None, &mut h).is_remote());
    }
}

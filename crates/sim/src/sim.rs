//! The statistics-gathering simulator: runs a protocol under a scheduler
//! and a failure plan, checking safety after every step and aggregating
//! per-acquisition RMR statistics.

use std::sync::Arc;

use crate::checker::{check_safety, Violation};
use crate::explore::Label;
use crate::failure::FailurePlan;
use crate::memmodel::MemoryModel;
use crate::protocol::Protocol;
use crate::sched::{RoundRobin, Scheduler};
use crate::stats::Stats;
use crate::types::Pid;
use crate::world::{Event, Timing, World};

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process finished its cycles (or failed).
    Quiescent,
    /// The step budget was exhausted.
    StepBudget,
    /// A safety violation was detected (see [`RunReport::violation`]).
    Violation,
}

/// Outcome of a [`Sim::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total steps executed.
    pub steps: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// The violation, if `stop == Violation`.
    pub violation: Option<Violation>,
    /// Per-acquisition RMR statistics.
    pub stats: Stats,
    /// Critical-section visits completed per process.
    pub completed: Vec<u64>,
    /// Pids crashed by the failure plan during the run.
    pub crashed: Vec<Pid>,
    /// The exact transition sequence, when recording was enabled
    /// ([`SimBuilder::record_schedule`]) — feed it to
    /// [`crate::replay::replay_with`] (with matching timing/cycles/
    /// participants) to reproduce the run step by step.
    pub schedule: Option<Vec<Label>>,
}

impl RunReport {
    /// Total completed acquisitions across all processes.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Panic with a readable message if the run hit a violation.
    pub fn assert_safe(&self) {
        if let Some(v) = &self.violation {
            panic!("safety violation after {} steps: {v}", self.steps);
        }
    }
}

/// A configured simulation, ready to run.
pub struct Sim {
    /// The evolving world.
    pub world: World,
    sched: Box<dyn Scheduler>,
    failures: FailurePlan,
    stats: Stats,
    record: bool,
}

impl Sim {
    /// Build a simulation of `protocol` under `model`.
    ///
    /// Defaults: round-robin scheduler, no failures, zero dwell times,
    /// processes cycle forever (use [`SimBuilder::cycles`] or a step budget to
    /// terminate).
    #[allow(clippy::new_ret_no_self)] // deliberate builder entry point
    pub fn new(protocol: Arc<Protocol>, model: MemoryModel) -> SimBuilder {
        SimBuilder {
            protocol,
            model,
            timing: Timing::default(),
            cycles: None,
            sched: None,
            failures: FailurePlan::new(),
            participants: None,
            record: false,
        }
    }

    /// The failure plan's injected-failure count so far.
    pub fn failures_fired(&self) -> usize {
        self.failures.fired_count()
    }

    /// Run for at most `max_steps` steps.
    pub fn run(&mut self, max_steps: u64) -> RunReport {
        let mut steps = 0u64;
        let mut crashed = Vec::new();
        let mut schedule: Option<Vec<Label>> = self.record.then(Vec::new);
        let stop = loop {
            if steps >= max_steps {
                break StopReason::StepBudget;
            }
            let runnable = self.world.runnable();
            if runnable.is_empty() {
                break StopReason::Quiescent;
            }
            let p = self.sched.next(&runnable);
            let ev = self.world.step(p);
            steps += 1;
            if let Some(s) = &mut schedule {
                s.push(Label::Step(p));
            }
            self.observe(p, ev);
            let newly_crashed = self.failures.poll(&mut self.world);
            if let Some(s) = &mut schedule {
                s.extend(newly_crashed.iter().map(|&c| Label::Crash(c)));
            }
            crashed.extend(newly_crashed);
            if let Err(v) = check_safety(&self.world) {
                return self.report(steps, StopReason::Violation, Some(v), crashed, schedule);
            }
        };
        self.report(steps, stop, None, crashed, schedule)
    }

    /// Update RMR statistics from a step event.
    fn observe(&mut self, p: Pid, ev: Event) {
        let remote_now = self.world.mem.remote_refs(p);
        let steps_now = self.world.procs[p].steps;
        let contention = self.world.contention();
        let s = self.stats.proc_mut(p);
        match ev {
            Event::BeganEntry => {
                s.entry_base = remote_now;
                s.entry_steps_base = steps_now;
                s.in_flight = true;
                s.peak_contention = s.peak_contention.max(contention);
            }
            Event::EnteredCs => {
                if s.in_flight {
                    s.entry_cost = remote_now - s.entry_base;
                    s.wait_steps.record(steps_now - s.entry_steps_base);
                    s.peak_contention = s.peak_contention.max(contention);
                }
            }
            Event::BeganExit => {
                if s.in_flight {
                    s.exit_base = remote_now;
                }
            }
            Event::CompletedCycle | Event::BecameDone => {
                if s.in_flight {
                    let exit_cost = remote_now - s.exit_base;
                    s.entry.record(s.entry_cost);
                    s.exit.record(exit_cost);
                    s.pair.record(s.entry_cost + exit_cost);
                    s.in_flight = false;
                }
            }
            Event::Progress => {
                if s.in_flight {
                    s.peak_contention = s.peak_contention.max(contention);
                }
            }
        }
    }

    fn report(
        &self,
        steps: u64,
        stop: StopReason,
        violation: Option<Violation>,
        crashed: Vec<Pid>,
        schedule: Option<Vec<Label>>,
    ) -> RunReport {
        RunReport {
            steps,
            stop,
            violation,
            stats: self.stats.clone(),
            completed: self.world.procs.iter().map(|p| p.completed).collect(),
            crashed,
            schedule,
        }
    }
}

/// Builder returned by [`Sim::new`].
pub struct SimBuilder {
    protocol: Arc<Protocol>,
    model: MemoryModel,
    timing: Timing,
    cycles: Option<u64>,
    sched: Option<Box<dyn Scheduler>>,
    failures: FailurePlan,
    participants: Option<Vec<Pid>>,
    record: bool,
}

impl SimBuilder {
    /// Set noncritical/critical dwell times.
    pub fn timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Run each participating process for exactly `cycles` acquisitions.
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = Some(cycles);
        self
    }

    /// Use a custom scheduler (default: [`RoundRobin`]).
    pub fn scheduler(mut self, sched: impl Scheduler + 'static) -> Self {
        self.sched = Some(Box::new(sched));
        self
    }

    /// Install a failure plan.
    pub fn failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// Only these processes participate; the rest never leave their
    /// noncritical sections. This is how experiments cap *contention*.
    pub fn participants(mut self, pids: impl IntoIterator<Item = Pid>) -> Self {
        self.participants = Some(pids.into_iter().collect());
        self
    }

    /// Record the exact transition sequence into
    /// [`RunReport::schedule`], so a surprising run can be replayed and
    /// rendered with [`crate::replay::replay_with`].
    pub fn record_schedule(mut self) -> Self {
        self.record = true;
        self
    }

    /// Finish configuration.
    pub fn build(self) -> Sim {
        let n = self.protocol.n();
        let mut world = World::new(self.protocol, self.model, self.timing, self.cycles);
        if let Some(parts) = &self.participants {
            world.restrict_participants(parts);
        }
        Sim {
            world,
            sched: self.sched.unwrap_or_else(|| Box::new(RoundRobin::new())),
            failures: self.failures,
            stats: Stats::new(n),
            record: self.record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SkipNode;
    use crate::protocol::ProtocolBuilder;

    fn skip_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(SkipNode);
        b.finish(root, k)
    }

    #[test]
    fn bounded_cycles_reach_quiescence() {
        // Only 3 of the 4 processes contend, so the skip root stays within
        // the k = 3 bound.
        let mut sim = Sim::new(skip_protocol(4, 3), MemoryModel::CacheCoherent)
            .cycles(5)
            .participants([0, 1, 2])
            .build();
        let report = sim.run(10_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.completed, vec![5, 5, 5, 0]);
        assert_eq!(report.stats.acquisitions(), 15);
    }

    #[test]
    fn skip_root_with_small_k_is_caught_by_the_checker() {
        // SkipNode enforces nothing; with k = 1 and 4 eager processes the
        // checker must fire. Confirms end-to-end violation reporting.
        let mut sim = Sim::new(skip_protocol(4, 1), MemoryModel::CacheCoherent).build();
        let report = sim.run(10_000);
        assert_eq!(report.stop, StopReason::Violation);
        assert!(matches!(
            report.violation,
            Some(Violation::TooManyInCritical { .. })
        ));
    }

    #[test]
    fn participants_cap_contention() {
        let mut sim = Sim::new(skip_protocol(8, 7), MemoryModel::CacheCoherent)
            .cycles(3)
            .participants([0, 5])
            .build();
        let report = sim.run(10_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.completed[0], 3);
        assert_eq!(report.completed[5], 3);
        assert_eq!(report.completed[1], 0);
        assert!(report.stats.peak_contention() <= 2);
    }

    #[test]
    fn step_budget_stops_unbounded_runs() {
        let mut sim = Sim::new(skip_protocol(2, 1), MemoryModel::Dsm)
            .participants([0])
            .build();
        let report = sim.run(100);
        assert_eq!(report.stop, StopReason::StepBudget);
        assert_eq!(report.steps, 100);
    }
}

//! # kex-sim — a shared-memory multiprocessor simulator with RMR accounting
//!
//! This crate is the experimental substrate for reproducing Anderson &
//! Moir, *"Using k-Exclusion to Implement Resilient, Scalable Shared
//! Objects"* (PODC 1994). The paper analyses synchronization algorithms by
//! counting **remote memory references** (RMRs) — shared-memory accesses
//! that traverse the global interconnect — under two machine models:
//! cache-coherent (CC) and distributed shared-memory (DSM). This simulator
//! makes that cost model executable:
//!
//! * [`mem`]/[`memmodel`] — shared variables with the paper's atomic
//!   primitives (`read`, `write`, `fetch_and_increment`,
//!   `compare_and_swap`, `test_and_set`) and exact local/remote
//!   classification under both machine models.
//! * [`node`]/[`protocol`] — algorithms expressed as numbered atomic
//!   statements (mirroring the paper's figures) composed into trees of
//!   nested `Acquire`/`Release` modules.
//! * [`world`]/[`process`] — the §2 process model: noncritical section →
//!   entry section → critical section → exit section, forever.
//! * [`sched`] — fair schedulers (round-robin, seeded random, skewed) for
//!   statistics gathering.
//! * [`failure`] — the crash-failure adversary: a faulty process stops
//!   taking steps outside its noncritical section.
//! * [`sim`]/[`stats`]/[`checker`] — a run harness that checks k-exclusion
//!   and k-assignment safety after every step and aggregates
//!   per-acquisition RMR statistics (the paper's complexity measure).
//! * [`explore`]/[`liveness`] — an exhaustive model checker for small
//!   instances: every interleaving, every crash placement, plus an exact
//!   SCC-based starvation-freedom analysis under fair scheduling.
//!
//! The algorithms themselves (the paper's Figures 1–7 and their
//! compositions) live in the `kex-core` crate.
//!
//! ## Example
//!
//! ```rust
//! use kex_sim::prelude::*;
//!
//! // A trivial protocol: entry/exit are `skip`. With two participants and
//! // k = 2 this is safe, and the simulator can measure it.
//! let mut b = ProtocolBuilder::new(3);
//! let root = b.add(SkipNode);
//! let protocol = b.finish(root, 2);
//!
//! let mut sim = Sim::new(protocol, MemoryModel::CacheCoherent)
//!     .cycles(10)
//!     .participants([0, 1])
//!     .build();
//! let report = sim.run(100_000);
//! report.assert_safe();
//! assert_eq!(report.total_completed(), 20);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod explore;
pub mod failure;
pub mod liveness;
pub mod mem;
pub mod memmodel;
pub mod node;
pub mod process;
pub mod protocol;
pub mod replay;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod summary;
pub mod types;
pub mod world;

/// Convenient re-exports of the types needed to build and run protocols.
pub mod prelude {
    pub use crate::checker::{check_safety, Violation};
    pub use crate::explore::{explore, explore_with, ExploreConfig, ExploreReport, Label};
    pub use crate::failure::{FailWhen, FailurePlan, FailureSpec};
    pub use crate::liveness::{check_starvation_freedom, Starvation};
    pub use crate::mem::{MemCtx, MemState};
    pub use crate::memmodel::MemoryModel;
    pub use crate::node::{Node, SkipNode};
    pub use crate::process::Phase;
    pub use crate::protocol::{Protocol, ProtocolBuilder};
    pub use crate::replay::{replay, replay_with, Trace, TraceStep};
    pub use crate::sched::{RandomSched, RoundRobin, Scheduler, SkewedSched, VictimSched};
    pub use crate::sim::{RunReport, Sim, StopReason};
    pub use crate::stats::{Aggregate, Stats};
    pub use crate::summary::{
        AccessDesc, AccessKind, BackEdge, BackKind, NodeDesc, SpaceClass, StmtDesc, SuccDesc,
        VarRef,
    };
    pub use crate::types::{NodeId, Pid, Section, Step, VarId, Word};
    pub use crate::vars::{at, VarTable};
    pub use crate::world::{Event, Timing, World};
}

pub mod vars;

//! Per-process runtime state: the phase cycle, the frame stack for nested
//! modules, and persistent local variables.
//!
//! Per the paper's model (§2), each process cycles through a noncritical
//! section, an entry section, a critical section, and an exit section. The
//! simulator represents "time spent" in the noncritical and critical
//! sections as a configurable number of scheduler steps, so schedules can
//! hold a process inside its critical section while others contend.

use crate::types::{NodeId, Pid, Section, Word};

/// Where a process is in its noncritical/entry/critical/exit cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// In the noncritical section for `remaining` more of its own steps.
    Noncritical {
        /// Steps left before the process starts its entry section.
        remaining: u32,
    },
    /// Executing the entry section (the frame stack is non-empty).
    Entry,
    /// Inside the critical section for `remaining` more of its own steps.
    Critical {
        /// Steps left before the process starts its exit section.
        remaining: u32,
    },
    /// Executing the exit section (the frame stack is non-empty).
    Exit,
    /// Finished all requested cycles (or never participated).
    Done,
}

impl Phase {
    /// Is the process inside its critical section?
    #[inline]
    pub fn in_critical(self) -> bool {
        matches!(self, Phase::Critical { .. })
    }

    /// Is the process outside its noncritical section (contending)?
    ///
    /// This is the paper's definition of a process that counts toward
    /// *contention*.
    #[inline]
    pub fn is_contending(self) -> bool {
        matches!(self, Phase::Entry | Phase::Critical { .. } | Phase::Exit)
    }

    pub(crate) fn encode(self, out: &mut Vec<Word>) {
        match self {
            Phase::Noncritical { remaining } => {
                out.push(0);
                out.push(remaining as Word);
            }
            Phase::Entry => {
                out.push(1);
                out.push(0);
            }
            Phase::Critical { remaining } => {
                out.push(2);
                out.push(remaining as Word);
            }
            Phase::Exit => {
                out.push(3);
                out.push(0);
            }
            Phase::Done => {
                out.push(4);
                out.push(0);
            }
        }
    }
}

/// One activation record of a node section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// The node being executed.
    pub node: NodeId,
    /// Which section of it.
    pub section: Section,
    /// Program counter of the next statement.
    pub pc: u32,
}

/// Full runtime state of one simulated process.
#[derive(Debug, Clone)]
pub struct ProcState {
    /// The process id.
    pub pid: Pid,
    /// Current phase.
    pub phase: Phase,
    /// Frame stack for nested `Acquire`/`Release` calls. Non-empty exactly
    /// when `phase` is `Entry` or `Exit`.
    pub stack: Vec<Frame>,
    /// Persistent locals for every node, laid out per
    /// [`crate::protocol::Protocol`] offsets.
    pub locals: Vec<Word>,
    /// Remaining entry→exit cycles; `None` means cycle forever.
    pub cycles_left: Option<u64>,
    /// Whether the process has crash-failed (it takes no further steps).
    pub failed: bool,
    /// Completed critical-section visits (not part of explorer state).
    pub completed: u64,
    /// Total steps taken (not part of explorer state).
    pub steps: u64,
}

impl ProcState {
    /// A process that will run `cycles` entry→exit cycles (`None` =
    /// forever), starting in its noncritical section.
    pub fn new(pid: Pid, locals: Vec<Word>, cycles: Option<u64>, initial_ncs: u32) -> Self {
        let phase = if cycles == Some(0) {
            Phase::Done
        } else {
            Phase::Noncritical {
                remaining: initial_ncs,
            }
        };
        ProcState {
            pid,
            phase,
            stack: Vec::new(),
            locals,
            cycles_left: cycles,
            failed: false,
            completed: 0,
            steps: 0,
        }
    }

    /// Can the scheduler pick this process?
    #[inline]
    pub fn runnable(&self) -> bool {
        !self.failed && self.phase != Phase::Done
    }

    /// Encode the behaviorally relevant part of this state for the model
    /// checker (excludes statistics).
    pub(crate) fn encode(&self, out: &mut Vec<Word>) {
        self.phase.encode(out);
        out.push(self.failed as Word);
        out.push(match self.cycles_left {
            None => -1,
            Some(c) => c as Word,
        });
        out.push(self.stack.len() as Word);
        for f in &self.stack {
            out.push(f.node.index() as Word);
            out.push(f.section.tag());
            out.push(f.pc as Word);
        }
        out.extend_from_slice(&self.locals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cycle_processes_start_done() {
        let p = ProcState::new(0, vec![], Some(0), 0);
        assert_eq!(p.phase, Phase::Done);
        assert!(!p.runnable());
    }

    #[test]
    fn contention_counts_everything_outside_the_ncs() {
        assert!(!Phase::Noncritical { remaining: 1 }.is_contending());
        assert!(Phase::Entry.is_contending());
        assert!(Phase::Critical { remaining: 0 }.is_contending());
        assert!(Phase::Exit.is_contending());
        assert!(!Phase::Done.is_contending());
    }

    #[test]
    fn failed_processes_are_not_runnable() {
        let mut p = ProcState::new(1, vec![], None, 0);
        assert!(p.runnable());
        p.failed = true;
        assert!(!p.runnable());
    }
}

//! Online safety checking: the k-exclusion invariant and the uniqueness
//! of assigned names.
//!
//! * **k-Exclusion** (§2): at most `k` processes may be in their critical
//!   sections at any time.
//! * **k-Assignment** (§2): if distinct processes `p` and `q` are in their
//!   critical sections, then `p.name != q.name`, with names drawn from
//!   `0..k`.
//!
//! The checker runs after every simulator step (and on every state the
//! model checker discovers), so a violation pinpoints the exact step that
//! introduced it.

use std::fmt;

use crate::types::{Pid, Word};
use crate::world::World;

/// A detected safety violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// More than `k` processes are in their critical sections.
    TooManyInCritical {
        /// Number of processes found in their critical sections.
        count: usize,
        /// The advertised bound.
        k: usize,
        /// The offending processes.
        pids: Vec<Pid>,
    },
    /// Two critical processes hold the same name.
    DuplicateName {
        /// The duplicated name.
        name: Word,
        /// The processes holding it.
        pids: Vec<Pid>,
    },
    /// A critical process holds a name outside the root node's declared
    /// name space.
    NameOutOfRange {
        /// The out-of-range name.
        name: Word,
        /// The name-space size (usually `k`; larger for weak-primitive
        /// renaming algorithms).
        k: usize,
        /// The offending process.
        pid: Pid,
    },
    /// The root node assigns names but a critical process holds none.
    MissingName {
        /// The process in its critical section without a name.
        pid: Pid,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooManyInCritical { count, k, pids } => write!(
                f,
                "k-exclusion violated: {count} processes in critical section (k = {k}): {pids:?}"
            ),
            Violation::DuplicateName { name, pids } => {
                write!(f, "k-assignment violated: name {name} held by {pids:?}")
            }
            Violation::NameOutOfRange { name, k, pid } => write!(
                f,
                "k-assignment violated: process {pid} holds name {name} outside 0..{k}"
            ),
            Violation::MissingName { pid } => {
                write!(
                    f,
                    "k-assignment violated: critical process {pid} holds no name"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Check the current world state for safety violations.
///
/// If the protocol's root node assigns names ([`crate::node::Node::
/// acquired_name`]), name uniqueness and range are checked in addition to
/// the k-exclusion bound.
pub fn check_safety(world: &World) -> Result<(), Violation> {
    let k = world.protocol.k();
    let critical: Vec<Pid> = world
        .procs
        .iter()
        .filter(|p| p.phase.in_critical())
        .map(|p| p.pid)
        .collect();

    if critical.len() > k {
        return Err(Violation::TooManyInCritical {
            count: critical.len(),
            k,
            pids: critical,
        });
    }

    // Name checks apply only if the root assigns names. Detect that by
    // querying the first critical process; roots that never assign names
    // return None for everyone and are exempt.
    let name_space = world.protocol.node(world.protocol.root()).name_space(k);
    let mut seen: Vec<(Word, Pid)> = Vec::with_capacity(critical.len());
    let mut assigns = false;
    for &p in &critical {
        match world.held_name(p) {
            Some(name) => {
                assigns = true;
                if name < 0 || name >= name_space as Word {
                    return Err(Violation::NameOutOfRange {
                        name,
                        k: name_space,
                        pid: p,
                    });
                }
                if let Some(&(_, q)) = seen.iter().find(|&&(n, _)| n == name) {
                    return Err(Violation::DuplicateName {
                        name,
                        pids: vec![q, p],
                    });
                }
                seen.push((name, p));
            }
            None => {
                if assigns {
                    return Err(Violation::MissingName { pid: p });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmodel::MemoryModel;
    use crate::node::SkipNode;
    use crate::process::Phase;
    use crate::protocol::ProtocolBuilder;
    use crate::world::{Timing, World};

    fn skip_world(n: usize, k: usize) -> World {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(SkipNode);
        let p = b.finish(root, k);
        World::new(p, MemoryModel::CacheCoherent, Timing::default(), None)
    }

    #[test]
    fn too_many_critical_is_reported() {
        // SkipNode performs no exclusion at all, so driving k+1 processes
        // into the CS trips the checker — a self-test that the checker
        // catches broken algorithms.
        let mut w = skip_world(3, 1);
        for p in 0..2 {
            w.step(p); // begin entry
            w.step(p); // skip -> critical
        }
        let err = check_safety(&w).unwrap_err();
        match err {
            Violation::TooManyInCritical { count, k, .. } => {
                assert_eq!(count, 2);
                assert_eq!(k, 1);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn within_bound_is_fine() {
        let mut w = skip_world(3, 2);
        w.step(0);
        w.step(0);
        assert_eq!(w.procs[0].phase, Phase::Critical { remaining: 0 });
        assert!(check_safety(&w).is_ok());
    }

    /// A deliberately broken namer: process `p` acquires name
    /// `p + offset`, except `skip_pid`, which acquires no name at all.
    /// Exercises the assignment-side violations the real algorithms
    /// never produce.
    struct BadNamer {
        offset: Word,
        skip_pid: Option<Pid>,
    }

    impl crate::node::Node for BadNamer {
        fn name(&self) -> String {
            "bad-namer".to_owned()
        }

        fn locals_len(&self) -> usize {
            1
        }

        fn assigns_names(&self) -> bool {
            true
        }

        fn acquired_name(&self, locals: &[Word]) -> Option<Word> {
            if locals[0] == 0 {
                None
            } else {
                Some(locals[0] - 1)
            }
        }

        fn step(
            &self,
            sec: crate::types::Section,
            _pc: u32,
            locals: &mut [Word],
            mem: &mut crate::mem::MemCtx<'_>,
        ) -> crate::types::Step {
            let p = mem.pid();
            match sec {
                crate::types::Section::Entry => {
                    locals[0] = if self.skip_pid == Some(p) {
                        0
                    } else {
                        p as Word + self.offset + 1
                    };
                }
                crate::types::Section::Exit => locals[0] = 0,
            }
            crate::types::Step::Return
        }
    }

    fn namer_world(n: usize, k: usize, offset: Word, skip_pid: Option<Pid>) -> World {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(BadNamer { offset, skip_pid });
        let p = b.finish(root, k);
        World::new(p, MemoryModel::CacheCoherent, Timing::default(), None)
    }

    #[test]
    fn out_of_range_name_is_reported_with_the_offending_pid() {
        // k = 2 (name space 0..2); process 0 grabs name 2.
        let mut w = namer_world(3, 2, 2, None);
        w.step(0);
        w.step(0);
        assert!(w.procs[0].phase.in_critical());
        let err = check_safety(&w).unwrap_err();
        assert_eq!(
            err,
            Violation::NameOutOfRange {
                name: 2,
                k: 2,
                pid: 0
            }
        );
        assert!(err
            .to_string()
            .contains("process 0 holds name 2 outside 0..2"));
    }

    #[test]
    fn missing_name_is_reported_with_the_offending_pid() {
        // Process 0 acquires name 0; process 1 enters the critical
        // section holding no name at all.
        let mut w = namer_world(3, 2, 0, Some(1));
        for p in 0..2 {
            w.step(p);
            w.step(p);
            assert!(w.procs[p].phase.in_critical());
        }
        let err = check_safety(&w).unwrap_err();
        assert_eq!(err, Violation::MissingName { pid: 1 });
        assert!(err.to_string().contains("critical process 1 holds no name"));
    }

    #[test]
    fn distinct_in_range_names_pass() {
        // Processes 0 and 1 acquire names 0 and 1: distinct and within
        // 0..k — the assignment checks must stay quiet.
        let mut w = namer_world(3, 2, 0, None);
        for p in 0..2 {
            w.step(p);
            w.step(p);
        }
        assert!(check_safety(&w).is_ok());
    }
}

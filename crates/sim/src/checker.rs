//! Online safety checking: the k-exclusion invariant and the uniqueness
//! of assigned names.
//!
//! * **k-Exclusion** (§2): at most `k` processes may be in their critical
//!   sections at any time.
//! * **k-Assignment** (§2): if distinct processes `p` and `q` are in their
//!   critical sections, then `p.name != q.name`, with names drawn from
//!   `0..k`.
//!
//! The checker runs after every simulator step (and on every state the
//! model checker discovers), so a violation pinpoints the exact step that
//! introduced it.

use std::fmt;

use crate::world::World;
use crate::types::{Pid, Word};

/// A detected safety violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// More than `k` processes are in their critical sections.
    TooManyInCritical {
        /// Number of processes found in their critical sections.
        count: usize,
        /// The advertised bound.
        k: usize,
        /// The offending processes.
        pids: Vec<Pid>,
    },
    /// Two critical processes hold the same name.
    DuplicateName {
        /// The duplicated name.
        name: Word,
        /// The processes holding it.
        pids: Vec<Pid>,
    },
    /// A critical process holds a name outside the root node's declared
    /// name space.
    NameOutOfRange {
        /// The out-of-range name.
        name: Word,
        /// The name-space size (usually `k`; larger for weak-primitive
        /// renaming algorithms).
        k: usize,
        /// The offending process.
        pid: Pid,
    },
    /// The root node assigns names but a critical process holds none.
    MissingName {
        /// The process in its critical section without a name.
        pid: Pid,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooManyInCritical { count, k, pids } => write!(
                f,
                "k-exclusion violated: {count} processes in critical section (k = {k}): {pids:?}"
            ),
            Violation::DuplicateName { name, pids } => {
                write!(f, "k-assignment violated: name {name} held by {pids:?}")
            }
            Violation::NameOutOfRange { name, k, pid } => write!(
                f,
                "k-assignment violated: process {pid} holds name {name} outside 0..{k}"
            ),
            Violation::MissingName { pid } => {
                write!(f, "k-assignment violated: critical process {pid} holds no name")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Check the current world state for safety violations.
///
/// If the protocol's root node assigns names ([`crate::node::Node::
/// acquired_name`]), name uniqueness and range are checked in addition to
/// the k-exclusion bound.
pub fn check_safety(world: &World) -> Result<(), Violation> {
    let k = world.protocol.k();
    let critical: Vec<Pid> = world
        .procs
        .iter()
        .filter(|p| p.phase.in_critical())
        .map(|p| p.pid)
        .collect();

    if critical.len() > k {
        return Err(Violation::TooManyInCritical {
            count: critical.len(),
            k,
            pids: critical,
        });
    }

    // Name checks apply only if the root assigns names. Detect that by
    // querying the first critical process; roots that never assign names
    // return None for everyone and are exempt.
    let name_space = world
        .protocol
        .node(world.protocol.root())
        .name_space(k);
    let mut seen: Vec<(Word, Pid)> = Vec::with_capacity(critical.len());
    let mut assigns = false;
    for &p in &critical {
        match world.held_name(p) {
            Some(name) => {
                assigns = true;
                if name < 0 || name >= name_space as Word {
                    return Err(Violation::NameOutOfRange {
                        name,
                        k: name_space,
                        pid: p,
                    });
                }
                if let Some(&(_, q)) = seen.iter().find(|&&(n, _)| n == name) {
                    return Err(Violation::DuplicateName {
                        name,
                        pids: vec![q, p],
                    });
                }
                seen.push((name, p));
            }
            None => {
                if assigns {
                    return Err(Violation::MissingName { pid: p });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmodel::MemoryModel;
    use crate::node::SkipNode;
    use crate::process::Phase;
    use crate::protocol::ProtocolBuilder;
    use crate::world::{Timing, World};

    fn skip_world(n: usize, k: usize) -> World {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(SkipNode);
        let p = b.finish(root, k);
        World::new(p, MemoryModel::CacheCoherent, Timing::default(), None)
    }

    #[test]
    fn too_many_critical_is_reported() {
        // SkipNode performs no exclusion at all, so driving k+1 processes
        // into the CS trips the checker — a self-test that the checker
        // catches broken algorithms.
        let mut w = skip_world(3, 1);
        for p in 0..2 {
            w.step(p); // begin entry
            w.step(p); // skip -> critical
        }
        let err = check_safety(&w).unwrap_err();
        match err {
            Violation::TooManyInCritical { count, k, .. } => {
                assert_eq!(count, 2);
                assert_eq!(k, 1);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn within_bound_is_fine() {
        let mut w = skip_world(3, 2);
        w.step(0);
        w.step(0);
        assert_eq!(w.procs[0].phase, Phase::Critical { remaining: 0 });
        assert!(check_safety(&w).is_ok());
    }
}

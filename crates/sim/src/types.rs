//! Fundamental identifier and value types shared across the simulator.

use std::fmt;

/// A process identifier, `0..N`.
///
/// The paper assumes a fixed set of `N` asynchronous processes with known,
/// distinct identifiers; we mirror that with dense indices.
pub type Pid = usize;

/// The value type of every simulated shared variable and local variable.
///
/// All of the paper's variables (counters, process ids, booleans, and
/// `loctype` records) are encoded into this single word type; see
/// [`crate::mem::MemCtx`] for the access primitives.
pub type Word = i64;

/// Identifies a shared variable allocated in a [`crate::vars::VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The dense index of this variable within its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies an algorithm node (one `Acquire`/`Release` module instance)
/// within a [`crate::protocol::Protocol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node within its protocol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which section of a node a process is executing.
///
/// Every node implements the paper's process template: a process repeatedly
/// passes through its *entry section* before the critical section and its
/// *exit section* after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// The entry section (`Acquire` in the paper's figures).
    Entry,
    /// The exit section (`Release` in the paper's figures).
    Exit,
}

impl Section {
    /// A compact tag used when encoding explorer states.
    #[inline]
    pub(crate) fn tag(self) -> Word {
        match self {
            Section::Entry => 0,
            Section::Exit => 1,
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::Entry => f.write_str("entry"),
            Section::Exit => f.write_str("exit"),
        }
    }
}

/// The outcome of executing one atomic statement of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Continue within the same section at the given program counter.
    Goto(u32),
    /// Invoke a child node's section (a nested `Acquire(..)`/`Release(..)`),
    /// resuming at `ret` in the current frame once the child returns.
    Call {
        /// The child node to execute.
        child: NodeId,
        /// Which of the child's sections to run.
        section: Section,
        /// Program counter to resume at in the calling frame.
        ret: u32,
    },
    /// The current section is complete.
    Return,
}

//! A complete, immutable protocol: the node tree, the variable table, and
//! the `(N, k)` parameters.
//!
//! Build one with [`ProtocolBuilder`]: allocate shared variables and add
//! nodes (children before parents, since parents store child
//! [`NodeId`]s), then [`ProtocolBuilder::finish`] with the root node.
//! The resulting [`Protocol`] is shared behind `Arc` by every simulator
//! and explorer instance.

use std::sync::Arc;

use crate::memmodel::{CapacityExceeded, MAX_PROCESSES};
use crate::node::Node;
use crate::types::{NodeId, Pid, Word};
use crate::vars::VarTable;

/// Immutable description of a built `(N, k)`-exclusion (or k-assignment)
/// protocol.
pub struct Protocol {
    nodes: Vec<Arc<dyn Node>>,
    table: VarTable,
    root: NodeId,
    n: usize,
    k: usize,
    locals_offset: Vec<usize>,
    locals_total: usize,
}

impl std::fmt::Debug for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Protocol")
            .field("root", &self.root)
            .field("n", &self.n)
            .field("k", &self.k)
            .field("nodes", &self.nodes.len())
            .field("vars", &self.table.len())
            .finish()
    }
}

impl Protocol {
    /// Number of processes `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exclusion bound `k`: at most `k` processes may be in their critical
    /// sections simultaneously.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The root node's id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node behind `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &dyn Node {
        &*self.nodes[id.index()]
    }

    /// Number of nodes in the protocol.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared-variable table.
    #[inline]
    pub fn vars(&self) -> &VarTable {
        &self.table
    }

    /// Offset of `id`'s locals within a process's locals array.
    #[inline]
    pub(crate) fn locals_offset(&self, id: NodeId) -> usize {
        self.locals_offset[id.index()]
    }

    /// Length of `id`'s locals.
    #[inline]
    pub(crate) fn locals_len(&self, id: NodeId) -> usize {
        self.nodes[id.index()].locals_len()
    }

    /// Total locals words per process (all nodes concatenated).
    #[inline]
    pub(crate) fn locals_total(&self) -> usize {
        self.locals_total
    }

    /// A freshly initialized locals array for process `p`.
    pub(crate) fn fresh_locals(&self, p: Pid) -> Vec<Word> {
        let mut out = vec![0; self.locals_total];
        for (i, node) in self.nodes.iter().enumerate() {
            let off = self.locals_offset[i];
            node.init_locals(p, &mut out[off..off + node.locals_len()]);
        }
        out
    }
}

/// Builder for a [`Protocol`]. Also carries the [`VarTable`] that node
/// constructors allocate their shared variables into.
pub struct ProtocolBuilder {
    /// The shared-variable table; node constructors allocate into this.
    pub vars: VarTable,
    nodes: Vec<Arc<dyn Node>>,
    n: usize,
}

impl ProtocolBuilder {
    /// Start building a protocol for `n` processes.
    ///
    /// # Panics
    /// Panics if `n` is 0 or exceeds [`MAX_PROCESSES`]; use
    /// [`ProtocolBuilder::try_new`] to handle the capacity limit as a
    /// typed error instead.
    pub fn new(n: usize) -> Self {
        match Self::try_new(n) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: returns [`CapacityExceeded`] when `n` is
    /// beyond what the CC cache-holder bitsets can account for, instead
    /// of panicking.
    ///
    /// # Panics
    /// Still panics if `n` is 0 (an empty process universe is a caller
    /// bug, not a capacity question).
    pub fn try_new(n: usize) -> Result<Self, CapacityExceeded> {
        assert!(n > 0, "a protocol needs at least one process");
        if n > MAX_PROCESSES {
            return Err(CapacityExceeded {
                requested: n,
                max: MAX_PROCESSES,
            });
        }
        Ok(ProtocolBuilder {
            vars: VarTable::new(),
            nodes: Vec::new(),
            n,
        })
    }

    /// Number of processes the protocol is being built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add a node; returns its id for use as a parent's child reference.
    pub fn add(&mut self, node: impl Node + 'static) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Arc::new(node));
        id
    }

    /// Finish the protocol with `root` as the top-level node and `k` as
    /// the advertised exclusion bound (used by checkers).
    ///
    /// # Panics
    /// Panics if `root` is not a node of this builder or `k` is not in
    /// `1..n`.
    pub fn finish(self, root: NodeId, k: usize) -> Arc<Protocol> {
        assert!(root.index() < self.nodes.len(), "unknown root node");
        assert!(
            k >= 1 && k < self.n,
            "require 1 <= k < N (got k={k}, N={})",
            self.n
        );
        let mut locals_offset = Vec::with_capacity(self.nodes.len());
        let mut total = 0usize;
        for node in &self.nodes {
            locals_offset.push(total);
            total += node.locals_len();
        }
        Arc::new(Protocol {
            nodes: self.nodes,
            table: self.vars,
            root,
            n: self.n,
            k,
            locals_offset,
            locals_total: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SkipNode;

    #[test]
    fn builder_assigns_dense_node_ids_and_local_offsets() {
        let mut b = ProtocolBuilder::new(4);
        let a = b.add(SkipNode);
        let c = b.add(SkipNode);
        let p = b.finish(c, 2);
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        assert_eq!(p.n(), 4);
        assert_eq!(p.k(), 2);
        assert_eq!(p.locals_total(), 0);
        assert_eq!(p.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "require 1 <= k < N")]
    fn k_must_be_below_n() {
        let mut b = ProtocolBuilder::new(3);
        let r = b.add(SkipNode);
        let _ = b.finish(r, 3);
    }

    #[test]
    fn capacity_boundary_is_exact() {
        // MAX_PROCESSES itself is representable (bit 63 of the holder
        // bitset); one past it would shift out of range and silently
        // mis-account CC locality, so it must be a typed error.
        assert!(ProtocolBuilder::try_new(MAX_PROCESSES).is_ok());
        let Err(err) = ProtocolBuilder::try_new(MAX_PROCESSES + 1) else {
            panic!("n = {} must be rejected", MAX_PROCESSES + 1);
        };
        assert_eq!(
            err,
            CapacityExceeded {
                requested: MAX_PROCESSES + 1,
                max: MAX_PROCESSES
            }
        );
        assert!(err.to_string().contains("65 processes requested"));
    }

    #[test]
    #[should_panic(expected = "65 processes requested")]
    fn infallible_constructor_panics_with_the_typed_message() {
        let _ = ProtocolBuilder::new(MAX_PROCESSES + 1);
    }
}

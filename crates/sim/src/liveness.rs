//! Starvation-freedom checking over an explored transition graph.
//!
//! The paper's progress property (§2): *"If at most `k-1` processes are
//! faulty, then any nonfaulty process in its entry (exit) section must
//! eventually reach its critical (noncritical) section."* Scheduling is
//! assumed fair: a nonfaulty process keeps taking steps.
//!
//! Over the finite graph produced by [`crate::explore`] (with `cycles =
//! None`, so processes run forever), starvation of process `p` is
//! possible **iff** there exists a strongly connected subgraph `T` such
//! that:
//!
//! 1. `p` is never in its critical section in any state of `T`
//!    (starvation means `p` stops making progress),
//! 2. every live process has at least one step-transition inside `T`
//!    (so a *fair* infinite execution can stay in `T` forever — in a
//!    strongly connected graph any set of internal edges can be woven
//!    into one infinite walk),
//! 3. `p` is engaged (entry or exit section) somewhere in `T` (it is
//!    actually waiting, not idling in its noncritical section).
//!
//! We decide this exactly: for each process `p`, delete the states where
//! `p` is critical, compute the SCCs of the remaining graph (Tarjan), and
//! test conditions 2–3 on each nontrivial SCC. Crash transitions are
//! irreversible, so they never appear inside an SCC; the failed set is
//! constant per SCC and fairness applies only to the processes live
//! there.

use crate::explore::{ExploreReport, Label};
use crate::types::Pid;

/// A starvation scenario discovered in the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Starvation {
    /// The starving process.
    pub pid: Pid,
    /// A state (id into the explore report) inside the recurrent set in
    /// which `pid` is engaged but can be denied the critical section
    /// forever under a fair schedule.
    pub witness_state: u32,
    /// Number of states in the recurrent set.
    pub scc_size: usize,
}

impl std::fmt::Display for Starvation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "process {} can starve: fair recurrent set of {} states (witness state {})",
            self.pid, self.scc_size, self.witness_state
        )
    }
}

/// Check starvation-freedom for every process over the explored graph.
///
/// Returns the first starvation scenario found, or `Ok(())` if the
/// protocol is starvation-free on this instance.
///
/// # Panics
/// Panics if the report is truncated (a partial graph proves nothing).
pub fn check_starvation_freedom(report: &ExploreReport) -> Result<(), Starvation> {
    assert!(
        !report.truncated,
        "cannot analyse liveness on a truncated exploration"
    );
    let n_states = report.states;
    if n_states == 0 {
        return Ok(());
    }

    // The union of live sets tells us which processes to analyse.
    let mut all_live = 0u64;
    for f in &report.flags {
        all_live |= f.live;
    }

    for p in 0..64 {
        if all_live & (1 << p) == 0 {
            continue;
        }
        if let Some(starv) = check_process(report, p as Pid) {
            return Err(starv);
        }
    }
    Ok(())
}

/// Check whether process `p` can starve.
fn check_process(report: &ExploreReport, p: Pid) -> Option<Starvation> {
    let bit = 1u64 << p;
    // Keep only states where p is not critical and p is live (a failed p
    // cannot starve; it is faulty, not denied).
    let keep: Vec<bool> = report
        .flags
        .iter()
        .map(|f| f.critical & bit == 0 && f.live & bit != 0)
        .collect();

    let sccs = tarjan_scc(report, &keep);

    for scc in &sccs {
        // Nontrivial: contains at least one internal step edge.
        let mut internal_steppers = 0u64;
        let mut has_internal_edge = false;
        let in_scc = {
            let mut v = vec![false; report.states];
            for &s in scc {
                v[s as usize] = true;
            }
            v
        };
        for &s in scc {
            for &(label, t) in &report.edges[s as usize] {
                if in_scc[t as usize] {
                    if let Label::Step(q) = label {
                        has_internal_edge = true;
                        internal_steppers |= 1 << q;
                    }
                }
            }
        }
        if !has_internal_edge {
            continue; // trivial SCC, no infinite execution stays here
        }
        // Fairness feasibility: every live process steps inside the SCC.
        // The live set is constant across an SCC (failures/done are
        // irreversible), so read it off the first state.
        let live = report.flags[scc[0] as usize].live;
        if internal_steppers & live != live {
            continue; // some live process is forced to leave: unfair set
        }
        // p waits here: engaged in some state of the SCC.
        if let Some(&witness) = scc
            .iter()
            .find(|&&s| report.flags[s as usize].engaged & bit != 0)
        {
            return Some(Starvation {
                pid: p,
                witness_state: witness,
                scc_size: scc.len(),
            });
        }
    }
    None
}

/// Iterative Tarjan SCC over the subgraph induced by `keep`.
/// Only step edges define the subgraph's connectivity together with crash
/// edges; crash edges are irreversible so including them is harmless.
fn tarjan_scc(report: &ExploreReport, keep: &[bool]) -> Vec<Vec<u32>> {
    let n = report.states;
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();

    // Explicit DFS stack: (node, edge cursor).
    for start in 0..n as u32 {
        if !keep[start as usize] || index[start as usize] != UNSEEN {
            continue;
        }
        let mut call: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor == 0 {
                index[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let edges = &report.edges[v as usize];
            let mut advanced = false;
            while *cursor < edges.len() {
                let (_, w) = edges[*cursor];
                *cursor += 1;
                if !keep[w as usize] {
                    continue;
                }
                if index[w as usize] == UNSEEN {
                    call.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            }
            if advanced {
                continue;
            }
            // v finished.
            if lowlink[v as usize] == index[v as usize] {
                let mut scc = Vec::new();
                loop {
                    let w = stack.pop().unwrap();
                    on_stack[w as usize] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                sccs.push(scc);
            }
            call.pop();
            if let Some(&mut (parent, _)) = call.last_mut() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use crate::mem::MemCtx;
    use crate::node::Node;
    use crate::protocol::ProtocolBuilder;
    use crate::types::{Section, Step, VarId, Word};

    /// A deliberately unfair 1-exclusion: a test-and-set spinlock where a
    /// waiter spins by retrying the TAS. Safe, but a fair schedule can
    /// starve one process forever (the other laps it). The liveness
    /// checker must find that.
    struct TasLock {
        bit: VarId,
    }

    impl Node for TasLock {
        fn name(&self) -> String {
            "tas-lock".into()
        }

        fn step(&self, sec: Section, _pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
            match sec {
                Section::Entry => {
                    if mem.test_and_set(self.bit) {
                        Step::Goto(0) // busy: retry
                    } else {
                        Step::Return
                    }
                }
                Section::Exit => {
                    mem.write(self.bit, 0);
                    Step::Return
                }
            }
        }
    }

    #[test]
    fn tas_lock_is_safe_but_not_starvation_free() {
        let mut b = ProtocolBuilder::new(3);
        let bit = b.vars.alloc("L", 0);
        let root = b.add(TasLock { bit });
        let protocol = b.finish(root, 1);
        let cfg = ExploreConfig {
            participants: Some(vec![0, 1]),
            ..ExploreConfig::default()
        };
        let report = explore(protocol, &cfg);
        report.assert_ok(); // mutual exclusion holds...
        let starvation = check_starvation_freedom(&report).unwrap_err();
        // ...but one of the two contenders can starve.
        assert!(starvation.pid == 0 || starvation.pid == 1);
        assert!(starvation.scc_size >= 2);
    }

    /// A strictly alternating 1-exclusion for two processes (Dekker-style
    /// turn variable only). Starvation-free for two *always-contending*
    /// processes, so the checker must pass it.
    struct TurnLock {
        turn: VarId,
    }

    impl Node for TurnLock {
        fn name(&self) -> String {
            "turn-lock".into()
        }

        fn step(&self, sec: Section, _pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
            match sec {
                Section::Entry => {
                    if mem.read(self.turn) == mem.pid() as Word {
                        Step::Return
                    } else {
                        Step::Goto(0)
                    }
                }
                Section::Exit => {
                    let other = 1 - mem.pid() as Word;
                    mem.write(self.turn, other);
                    Step::Return
                }
            }
        }
    }

    #[test]
    fn alternating_turn_lock_is_starvation_free_for_two() {
        let mut b = ProtocolBuilder::new(2);
        let turn = b.vars.alloc("turn", 0);
        let root = b.add(TurnLock { turn });
        let protocol = b.finish(root, 1);
        let report = explore(protocol, &ExploreConfig::default());
        report.assert_ok();
        check_starvation_freedom(&report).expect("turn lock must not starve contenders");
    }
}

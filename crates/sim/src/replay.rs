//! Counterexample replay: turn a schedule extracted from the model
//! checker back into a concrete, human-readable execution.
//!
//! [`crate::explore::ExploreReport::counterexample`] returns the exact
//! sequence of step/crash transitions that reaches a violating state.
//! [`replay`] re-executes that schedule on a fresh world and records a
//! [`Trace`] — one line per atomic step, naming the process, the node
//! and statement it executed, and the phase it landed in — so a failed
//! model-checking run ends in something a human can read, not just a
//! state id.

use std::fmt;
use std::sync::Arc;

use crate::checker::{check_safety, Violation};
use crate::explore::Label;
use crate::memmodel::MemoryModel;
use crate::process::Phase;
use crate::protocol::Protocol;
use crate::types::Pid;
use crate::world::{Timing, World};

/// One replayed transition.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Step index within the schedule.
    pub index: usize,
    /// The transition replayed.
    pub label: Label,
    /// Where the process was *before* the step: `node-name@pc` of its
    /// top frame, or its phase if it had no frame.
    pub site: String,
    /// The process's phase after the step.
    pub phase_after: Phase,
    /// Number of processes in their critical sections after the step.
    pub critical_after: usize,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.label {
            Label::Step(p) => write!(
                f,
                "{:>4}. p{} steps {:<24} -> {:?} (critical: {})",
                self.index, p, self.site, self.phase_after, self.critical_after
            ),
            Label::Crash(p) => write!(
                f,
                "{:>4}. p{} CRASHES at {:<20} (critical: {})",
                self.index, p, self.site, self.critical_after
            ),
        }
    }
}

/// A replayed execution.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The per-transition records.
    pub steps: Vec<TraceStep>,
    /// The safety verdict in the final state.
    pub final_verdict: Result<(), Violation>,
}

impl Trace {
    /// `true` iff the final state violates safety (i.e. the replayed
    /// schedule is a genuine counterexample).
    pub fn ends_in_violation(&self) -> bool {
        self.final_verdict.is_err()
    }

    /// Render the trace as per-process lanes: one column per process,
    /// one row per transition, with the stepping process marked by the
    /// phase it lands in (`n`oncritical, `E`ntry, `C`ritical, e`X`it,
    /// `!` crash) — at a glance you can see who overlapped in the
    /// critical section.
    ///
    /// `n` is the process-universe size (column count).
    pub fn render_lanes(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str("step  ");
        for p in 0..n {
            out.push_str(&format!("p{p:<3}"));
        }
        out.push('\n');
        for s in &self.steps {
            let (pid, mark) = match s.label {
                Label::Crash(p) => (p, '!'),
                Label::Step(p) => {
                    let mark = match s.phase_after {
                        Phase::Noncritical { .. } => 'n',
                        Phase::Entry => 'E',
                        Phase::Critical { .. } => 'C',
                        Phase::Exit => 'X',
                        Phase::Done => 'd',
                    };
                    (p, mark)
                }
            };
            out.push_str(&format!("{:>4}  ", s.index));
            for p in 0..n {
                if p == pid {
                    out.push(mark);
                    out.push_str("   ");
                } else {
                    out.push_str(".   ");
                }
            }
            if s.critical_after > 1 {
                out.push_str(&format!("  <-- {} in CS", s.critical_after));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(f, "{s}")?;
        }
        match &self.final_verdict {
            Ok(()) => writeln!(f, "final state: safe"),
            Err(v) => writeln!(f, "final state: VIOLATION — {v}"),
        }
    }
}

/// Describe where process `p` currently stands (node@pc or phase).
fn site_of(world: &World, p: Pid) -> String {
    let proc = &world.procs[p];
    match proc.stack.last() {
        Some(f) => format!(
            "{}@{}[{}]",
            world.protocol.node(f.node).name(),
            f.pc,
            f.section
        ),
        None => format!("{:?}", proc.phase),
    }
}

/// Replay `schedule` from a fresh world and record the trace.
///
/// The world configuration (timing, cycles, participants) must match the
/// exploration that produced the schedule, or the replay will diverge;
/// [`replay_with`] takes the same knobs as
/// [`crate::explore::ExploreConfig`].
pub fn replay(protocol: Arc<Protocol>, schedule: &[Label]) -> Trace {
    replay_with(protocol, schedule, Timing::default(), None, None)
}

/// [`replay`] with explicit timing, cycle bound, and participant set.
pub fn replay_with(
    protocol: Arc<Protocol>,
    schedule: &[Label],
    timing: Timing,
    cycles: Option<u64>,
    participants: Option<&[Pid]>,
) -> Trace {
    let mut world = World::new(protocol, MemoryModel::CacheCoherent, timing, cycles);
    if let Some(parts) = participants {
        world.restrict_participants(parts);
    }
    let mut steps = Vec::with_capacity(schedule.len());
    for (index, &label) in schedule.iter().enumerate() {
        let p = match label {
            Label::Step(p) | Label::Crash(p) => p,
        };
        let site = site_of(&world, p);
        match label {
            Label::Step(p) => {
                world.step(p);
            }
            Label::Crash(p) => {
                world.fail(p);
            }
        }
        steps.push(TraceStep {
            index,
            label,
            site,
            phase_after: world.procs[p].phase,
            critical_after: world.critical_count(),
        });
    }
    Trace {
        steps,
        final_verdict: check_safety(&world),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use crate::mem::MemCtx;
    use crate::node::Node;
    use crate::protocol::ProtocolBuilder;
    use crate::types::{Section, Step, VarId, Word};

    /// A broken "2-exclusion" that admits everyone: counterexamples must
    /// be found, reconstructed, and replay to the same violation.
    struct Broken {
        x: VarId,
    }

    impl Node for Broken {
        fn name(&self) -> String {
            "broken".into()
        }

        fn step(&self, sec: Section, _pc: u32, _locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step {
            match sec {
                Section::Entry => {
                    mem.fetch_and_increment(self.x, 1); // no check at all
                    Step::Return
                }
                Section::Exit => {
                    mem.fetch_and_increment(self.x, -1);
                    Step::Return
                }
            }
        }
    }

    fn broken_protocol() -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(3);
        let x = b.vars.alloc("X", 0);
        let root = b.add(Broken { x });
        b.finish(root, 1)
    }

    #[test]
    fn counterexamples_replay_to_the_same_violation() {
        let proto = broken_protocol();
        let report = explore(proto.clone(), &ExploreConfig::default());
        let (state, violation) = report.violation.clone().expect("must be violated");
        let schedule = report.counterexample(state);
        assert!(!schedule.is_empty());
        let trace = replay(proto, &schedule);
        assert!(
            trace.ends_in_violation(),
            "replay must reproduce it:\n{trace}"
        );
        assert_eq!(trace.final_verdict.clone().unwrap_err(), violation);
        // The rendering is non-empty and mentions the violating node.
        let text = trace.to_string();
        assert!(text.contains("VIOLATION"));
        assert!(text.contains("broken"));
    }

    #[test]
    fn clean_protocols_have_no_counterexample() {
        // Only 2 of 3 processes participate, so even the broken node
        // cannot exceed k = 2: exploration is clean, no counterexample.
        let proto = {
            let mut b = ProtocolBuilder::new(3);
            let x = b.vars.alloc("X", 0);
            let root = b.add(Broken { x });
            b.finish(root, 2)
        };
        let cfg = ExploreConfig {
            participants: Some(vec![0, 1]),
            ..ExploreConfig::default()
        };
        let report = explore(proto, &cfg);
        report.assert_ok();
        assert!(report.first_counterexample().is_none());
    }

    #[test]
    fn crash_labels_render_distinctly() {
        let proto = broken_protocol();
        let trace = replay(proto, &[Label::Step(0), Label::Crash(0)]);
        let text = trace.to_string();
        assert!(text.contains("CRASHES"), "{text}");
    }

    #[test]
    fn lane_rendering_marks_the_overlap() {
        let proto = broken_protocol();
        let report = explore(proto.clone(), &ExploreConfig::default());
        let schedule = report.first_counterexample().unwrap();
        let trace = replay(proto, &schedule);
        let lanes = trace.render_lanes(3);
        assert!(lanes.contains("in CS"), "overlap not marked:\n{lanes}");
        assert!(lanes.starts_with("step  p0  p1  p2"), "{lanes}");
    }

    #[test]
    fn recorded_sim_schedules_replay_exactly() {
        // A random Sim run with recording enabled replays to the same
        // final verdict and completion counts.
        use crate::sched::RandomSched;
        use crate::sim::Sim;
        let proto = broken_protocol();
        let mut sim = Sim::new(proto.clone(), MemoryModel::CacheCoherent)
            .cycles(4)
            .participants([0, 1])
            .scheduler(RandomSched::new(9))
            .record_schedule()
            .build();
        let report = sim.run(10_000);
        let schedule = report.schedule.expect("recording was enabled");
        assert_eq!(schedule.len() as u64, report.steps);
        let trace = replay_with(proto, &schedule, Timing::default(), Some(4), Some(&[0, 1]));
        // Same number of transitions, same safety verdict at the end.
        assert_eq!(trace.steps.len(), schedule.len());
        assert_eq!(
            trace.final_verdict.is_err(),
            report.violation.is_some(),
            "replay diverged from the recorded run"
        );
    }
}

//! Mutable shared-memory state and the atomic access primitives.
//!
//! [`MemState`] holds the current value of every shared variable plus the
//! CC cache-holder sets and the per-process RMR counters. A node executes
//! its atomic statement against a [`MemCtx`], which binds the memory to a
//! particular process and memory model and performs the remote/local
//! accounting of [`crate::memmodel`] on every access.
//!
//! The primitives offered are exactly those the paper's algorithms use
//! (Table 1, "Instructions Used"): atomic `read`, `write`,
//! `fetch_and_increment` (with arbitrary delta, so also fetch-and-add /
//! decrement), `compare_and_swap`, and `test_and_set`.

use crate::memmodel::{classify_read, classify_write, HolderSet, MemoryModel};
use crate::types::{Pid, VarId, Word};
use crate::vars::VarTable;

/// Mutable state of the shared memory: variable values, cache state, and
/// RMR accounting. Cheap to clone (model checking relies on this).
#[derive(Debug, Clone)]
pub struct MemState {
    values: Vec<Word>,
    holders: Vec<HolderSet>,
    /// Remote references per process.
    remote: Vec<u64>,
    /// Local (non-remote) shared references per process.
    local: Vec<u64>,
}

impl MemState {
    /// Initialize memory from a variable table for `n` processes.
    pub fn new(table: &VarTable, n: usize) -> Self {
        MemState {
            values: table.iter().map(|(_, s)| s.init).collect(),
            holders: vec![HolderSet::empty(); table.len()],
            remote: vec![0; n],
            local: vec![0; n],
        }
    }

    /// Current value of `v` **without** any locality accounting.
    ///
    /// For checkers and test assertions only; algorithms must go through
    /// [`MemCtx`].
    #[inline]
    pub fn peek(&self, v: VarId) -> Word {
        self.values[v.index()]
    }

    /// Total remote references performed by process `p` so far.
    #[inline]
    pub fn remote_refs(&self, p: Pid) -> u64 {
        self.remote[p]
    }

    /// Total local shared references performed by process `p` so far.
    #[inline]
    pub fn local_refs(&self, p: Pid) -> u64 {
        self.local[p]
    }

    /// Sum of remote references across all processes.
    pub fn total_remote_refs(&self) -> u64 {
        self.remote.iter().sum()
    }

    /// The raw variable values, in allocation order. Used by the explorer
    /// to encode states (cache state and counters are deliberately
    /// excluded: they never influence control flow).
    pub fn values(&self) -> &[Word] {
        &self.values
    }

    /// Rebuild a memory state from raw values (model-checker decode
    /// path). Cache state and counters start fresh; neither influences
    /// control flow.
    pub(crate) fn restore(values: Vec<Word>, n: usize) -> Self {
        let len = values.len();
        MemState {
            values,
            holders: vec![HolderSet::empty(); len],
            remote: vec![0; n],
            local: vec![0; n],
        }
    }

    /// Bind this memory to an accessing process under a memory model.
    #[inline]
    pub fn ctx<'a>(&'a mut self, table: &'a VarTable, model: MemoryModel, p: Pid) -> MemCtx<'a> {
        MemCtx {
            mem: self,
            table,
            model,
            p,
        }
    }
}

/// A process's view of shared memory for the duration of one atomic
/// statement. All accounting happens here.
#[derive(Debug)]
pub struct MemCtx<'a> {
    mem: &'a mut MemState,
    table: &'a VarTable,
    model: MemoryModel,
    p: Pid,
}

impl<'a> MemCtx<'a> {
    /// The process performing the accesses.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.p
    }

    /// The memory model in force.
    #[inline]
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    #[inline]
    fn account_read(&mut self, v: VarId) {
        let owner = self.table.spec(v).owner;
        let loc = classify_read(self.model, self.p, owner, &mut self.mem.holders[v.index()]);
        if loc.is_remote() {
            self.mem.remote[self.p] += 1;
        } else {
            self.mem.local[self.p] += 1;
        }
    }

    #[inline]
    fn account_write(&mut self, v: VarId) {
        let owner = self.table.spec(v).owner;
        let loc = classify_write(self.model, self.p, owner, &mut self.mem.holders[v.index()]);
        if loc.is_remote() {
            self.mem.remote[self.p] += 1;
        } else {
            self.mem.local[self.p] += 1;
        }
    }

    /// Atomic read of `v`.
    #[inline]
    pub fn read(&mut self, v: VarId) -> Word {
        self.account_read(v);
        self.mem.values[v.index()]
    }

    /// Atomic write of `x` to `v`.
    #[inline]
    pub fn write(&mut self, v: VarId, x: Word) {
        self.account_write(v);
        self.mem.values[v.index()] = x;
    }

    /// Atomic `fetch_and_increment(v, delta)`: adds `delta` and returns the
    /// **old** value, as in the paper's figures.
    #[inline]
    pub fn fetch_and_increment(&mut self, v: VarId, delta: Word) -> Word {
        self.account_write(v);
        let old = self.mem.values[v.index()];
        self.mem.values[v.index()] = old + delta;
        old
    }

    /// Atomic clamped `fetch_and_increment` that leaves `v` unchanged if
    /// the result would leave `lo..=hi`.
    ///
    /// Figure 4 footnote 2 assumes `fetch_and_increment(X, -1)` "does not
    /// cause a range error, e.g. does not change X if executed when X is
    /// 0"; this primitive implements that assumption directly. Returns the
    /// old value either way.
    #[inline]
    pub fn fetch_and_increment_clamped(
        &mut self,
        v: VarId,
        delta: Word,
        lo: Word,
        hi: Word,
    ) -> Word {
        self.account_write(v);
        let old = self.mem.values[v.index()];
        let new = old + delta;
        if new >= lo && new <= hi {
            self.mem.values[v.index()] = new;
        }
        old
    }

    /// Atomic `swap` (fetch-and-store): writes `x` and returns the old
    /// value. Not used by the paper's algorithms; provided for baseline
    /// comparisons such as the MCS queue lock (see
    /// `kex-core`'s `sim::mcs`).
    #[inline]
    pub fn swap(&mut self, v: VarId, x: Word) -> Word {
        self.account_write(v);
        std::mem::replace(&mut self.mem.values[v.index()], x)
    }

    /// Atomic `compare_and_swap(v, expected, new)`: if `v = expected`,
    /// assigns `new` and returns `true` ("succeeds"); otherwise returns
    /// `false` ("fails"). Semantics as defined in the paper's footnote 3.
    #[inline]
    pub fn compare_and_swap(&mut self, v: VarId, expected: Word, new: Word) -> bool {
        self.account_write(v);
        if self.mem.values[v.index()] == expected {
            self.mem.values[v.index()] = new;
            true
        } else {
            false
        }
    }

    /// Atomic `test_and_set(v)`: sets `v` to 1 and returns the old value
    /// interpreted as a boolean (`true` = was already set).
    #[inline]
    pub fn test_and_set(&mut self, v: VarId) -> bool {
        self.account_write(v);
        let old = self.mem.values[v.index()];
        self.mem.values[v.index()] = 1;
        old != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VarTable, MemState) {
        let mut t = VarTable::new();
        t.alloc("X", 3);
        t.alloc_local("P", 1, 0);
        let m = MemState::new(&t, 4);
        (t, m)
    }

    #[test]
    fn fetch_and_increment_returns_old_value() {
        let (t, mut m) = setup();
        let x = VarId(0);
        let mut c = m.ctx(&t, MemoryModel::Dsm, 0);
        assert_eq!(c.fetch_and_increment(x, -1), 3);
        assert_eq!(c.fetch_and_increment(x, -1), 2);
        assert_eq!(c.read(x), 1);
    }

    #[test]
    fn clamped_fetch_and_increment_respects_range() {
        let (t, mut m) = setup();
        let x = VarId(0);
        let mut c = m.ctx(&t, MemoryModel::Dsm, 0);
        // Drain X to 0, then a further decrement is a no-op (footnote 2).
        for _ in 0..3 {
            c.fetch_and_increment_clamped(x, -1, 0, 3);
        }
        assert_eq!(c.fetch_and_increment_clamped(x, -1, 0, 3), 0);
        assert_eq!(c.read(x), 0);
    }

    #[test]
    fn compare_and_swap_semantics_match_footnote_3() {
        let (t, mut m) = setup();
        let x = VarId(0);
        let mut c = m.ctx(&t, MemoryModel::Dsm, 0);
        assert!(!c.compare_and_swap(x, 99, 7)); // fails: X = 3
        assert_eq!(c.read(x), 3);
        assert!(c.compare_and_swap(x, 3, 7)); // succeeds
        assert_eq!(c.read(x), 7);
    }

    #[test]
    fn test_and_set_reports_prior_state() {
        let (t, mut m) = setup();
        let p = VarId(1);
        let mut c = m.ctx(&t, MemoryModel::Dsm, 1);
        assert!(!c.test_and_set(p));
        assert!(c.test_and_set(p));
    }

    #[test]
    fn rmr_accounting_distinguishes_models() {
        let (t, mut m) = setup();
        let x = VarId(0); // global: remote to everyone under DSM
        let p_var = VarId(1); // owned by process 1

        // DSM: process 1 touches its own variable locally, X remotely.
        {
            let mut c = m.ctx(&t, MemoryModel::Dsm, 1);
            c.read(p_var);
            c.read(x);
        }
        assert_eq!(m.remote_refs(1), 1);
        assert_eq!(m.local_refs(1), 1);

        // CC: first read remote, second local.
        let (t, mut m) = setup();
        {
            let mut c = m.ctx(&t, MemoryModel::CacheCoherent, 2);
            c.read(x);
            c.read(x);
        }
        assert_eq!(m.remote_refs(2), 1);
        assert_eq!(m.local_refs(2), 1);
    }
}

//! Static shared-variable metadata: names, owners, and initial values.
//!
//! Variables are allocated once, while an algorithm [`crate::node::Node`]
//! tree is being built, into a [`VarTable`]. The table is immutable during
//! simulation; the mutable value/cache state lives in
//! [`crate::mem::MemState`], which is cheap to clone (a requirement of the
//! model checker in [`crate::explore`]).

use crate::types::{Pid, VarId, Word};

/// Static description of one shared variable.
#[derive(Debug, Clone)]
pub struct VarSpec {
    /// Diagnostic name, e.g. `"fig2[3].X"`.
    pub name: String,
    /// DSM owner: the process in whose memory partition the variable
    /// lives. `None` means a globally-homed variable that is remote to
    /// every process under the DSM model (e.g. the paper's `X` and `Q`).
    pub owner: Option<Pid>,
    /// Initial value.
    pub init: Word,
}

/// The table of all shared variables of a protocol.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    specs: Vec<VarSpec>,
}

impl VarTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a globally-homed shared variable (remote to every process
    /// under DSM).
    pub fn alloc(&mut self, name: impl Into<String>, init: Word) -> VarId {
        self.alloc_spec(VarSpec {
            name: name.into(),
            owner: None,
            init,
        })
    }

    /// Allocate a variable homed in process `owner`'s memory partition.
    ///
    /// Under the DSM model only `owner` accesses it locally; under the CC
    /// model ownership is ignored (locality is decided by caching).
    pub fn alloc_local(&mut self, name: impl Into<String>, owner: Pid, init: Word) -> VarId {
        self.alloc_spec(VarSpec {
            name: name.into(),
            owner: Some(owner),
            init,
        })
    }

    /// Allocate an array of `len` globally-homed variables; returns the id
    /// of element 0 (elements are contiguous).
    pub fn alloc_array(&mut self, name: &str, len: usize, init: Word) -> VarId {
        assert!(len > 0, "zero-length shared array");
        let base = self.alloc(format!("{name}[0]"), init);
        for i in 1..len {
            self.alloc(format!("{name}[{i}]"), init);
        }
        base
    }

    fn alloc_spec(&mut self, spec: VarSpec) -> VarId {
        let id = VarId(u32::try_from(self.specs.len()).expect("too many shared variables"));
        self.specs.push(spec);
        id
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` iff no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Static description of `v`.
    pub fn spec(&self, v: VarId) -> &VarSpec {
        &self.specs[v.index()]
    }

    /// Look a variable up by its diagnostic name (first match).
    ///
    /// Intended for tests and experiment harnesses that want to peek at a
    /// protocol's internal variables.
    pub fn find(&self, name: &str) -> Option<VarId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Iterate over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (VarId(i as u32), s))
    }
}

/// Offset a base [`VarId`] returned by [`VarTable::alloc_array`] (or a run
/// of consecutive `alloc` calls) by `i` elements.
///
/// # Panics
/// Does not itself panic, but using an id past the end of the underlying
/// array will panic at access time inside [`crate::mem::MemState`].
#[inline]
pub fn at(base: VarId, i: usize) -> VarId {
    VarId(base.0 + i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_dense_ids_and_keeps_specs() {
        let mut t = VarTable::new();
        let x = t.alloc("X", 3);
        let q = t.alloc_local("Q", 2, 0);
        assert_eq!(x.index(), 0);
        assert_eq!(q.index(), 1);
        assert_eq!(t.spec(x).init, 3);
        assert_eq!(t.spec(q).owner, Some(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn arrays_are_contiguous() {
        let mut t = VarTable::new();
        let _pad = t.alloc("pad", 0);
        let a = t.alloc_array("A", 4, 7);
        assert_eq!(at(a, 3).index(), a.index() + 3);
        assert_eq!(t.spec(at(a, 3)).name, "A[3]");
        assert_eq!(t.spec(at(a, 3)).init, 7);
    }
}

//! The algorithm-node abstraction: one `Acquire`/`Release` module.
//!
//! Every algorithm in the paper is presented as a numbered list of atomic
//! statements over shared variables, possibly invoking a nested
//! `Acquire(..)`/`Release(..)` pair (the inductive constructions of §3).
//! A [`Node`] mirrors that shape exactly: it is an immutable description
//! of one module's statements, stepped one atomic statement at a time.
//! All mutable state lives outside the node — shared variables in
//! [`crate::mem::MemState`] and per-process local variables in the slice
//! handed to [`Node::step`] — so a single node instance serves all
//! processes and all cloned explorer states.
//!
//! Program counters within a section start at 0; `Step::Return` ends the
//! section. Nested modules are invoked with [`Step::Call`], which the
//! runtime implements with an explicit frame stack (see
//! [`crate::process`]), so compositions like the `(N,k)`-exclusion chain
//! or the Figure 3 tree need no host-stack recursion.

use crate::mem::MemCtx;
use crate::summary::NodeDesc;
use crate::types::{Pid, Section, Step, Word};

/// One algorithm module: a pair of entry/exit sections made of numbered
/// atomic statements.
///
/// Implementations must be pure functions of `(section, pc, locals,
/// shared memory)`: all mutation goes through the provided references.
/// This is what lets the model checker clone and replay world states.
pub trait Node: Send + Sync {
    /// Diagnostic name, e.g. `"fig2(N=8,k=3)"`.
    fn name(&self) -> String;

    /// Number of persistent per-process local words this node needs.
    ///
    /// Locals persist from the entry section to the matching exit section
    /// (and across acquisitions — e.g. Figure 6's `last` variable lives
    /// for the whole execution).
    fn locals_len(&self) -> usize {
        0
    }

    /// Initialize process `p`'s locals (default: all zeros).
    fn init_locals(&self, p: Pid, locals: &mut [Word]) {
        let _ = (p, locals);
    }

    /// Execute one atomic statement of `sec` at `pc` on behalf of
    /// `mem.pid()`.
    fn step(&self, sec: Section, pc: u32, locals: &mut [Word], mem: &mut MemCtx<'_>) -> Step;

    /// If this node assigns names (k-assignment / renaming), the name the
    /// process currently holds, readable from its locals while it is in
    /// the critical section.
    fn acquired_name(&self, locals: &[Word]) -> Option<Word> {
        let _ = locals;
        None
    }

    /// Does this node assign names (k-assignment / renaming)?
    ///
    /// Distinguishes true renaming roots from plain exclusion nodes
    /// *statically* (the dynamic checker infers it from observed names);
    /// the analyzer's name-space check only applies where this is true.
    fn assigns_names(&self) -> bool {
        false
    }

    /// The size of this node's name space, given the protocol's `k`.
    ///
    /// Figure-7 k-assignment uses exactly `k` (the default); renaming
    /// algorithms built from weaker primitives may need a larger space
    /// (e.g. the read/write-only splitter grid's `k(k+1)/2`). The safety
    /// checker validates held names against this bound.
    fn name_space(&self, k: usize) -> usize {
        k
    }

    /// Structural self-description of this node's statements for
    /// process `p`: per-statement shared accesses, control flow, and
    /// loop classification (see [`crate::summary`]).
    ///
    /// `None` (the default) means "not describable" — the static
    /// analyzer reports such nodes instead of silently skipping them.
    /// Every shipped algorithm node implements this.
    fn describe(&self, p: Pid) -> Option<NodeDesc> {
        let _ = p;
        None
    }
}

/// A trivial node whose entry and exit sections are `skip` — the basis of
/// the paper's inductions ("if N = k+1 then Acquire and Release are
/// trivially implemented by skip statements").
#[derive(Debug, Clone, Copy, Default)]
pub struct SkipNode;

impl Node for SkipNode {
    fn name(&self) -> String {
        "skip".to_owned()
    }

    fn step(&self, _sec: Section, _pc: u32, _locals: &mut [Word], _mem: &mut MemCtx<'_>) -> Step {
        Step::Return
    }

    fn describe(&self, _p: Pid) -> Option<NodeDesc> {
        Some(NodeDesc::empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemState;
    use crate::memmodel::MemoryModel;
    use crate::vars::VarTable;

    #[test]
    fn skip_node_returns_immediately_without_memory_traffic() {
        let t = VarTable::new();
        let mut m = MemState::new(&t, 1);
        let mut ctx = m.ctx(&t, MemoryModel::Dsm, 0);
        let step = SkipNode.step(Section::Entry, 0, &mut [], &mut ctx);
        assert_eq!(step, Step::Return);
        assert_eq!(m.remote_refs(0), 0);
    }
}

//! Remote-memory-reference statistics, aggregated per critical-section
//! acquisition.
//!
//! The paper's complexity measure: "Suppose that each matching entry and
//! exit section of an algorithm together generate at most `t` remote
//! references if executed while contention is at most `c`. We say that
//! such an algorithm has time complexity `t` if contention is at most
//! `c`." (§2). [`Stats`] records, for every completed acquisition, the
//! remote references of its entry section, of its exit section, and of the
//! matching pair, so experiment harnesses can report worst-case and mean
//! values against the theorem bounds.

use crate::types::Pid;

/// Number of power-of-two buckets in an [`Aggregate`]'s histogram.
/// Bucket `i` counts samples whose bit-length is `i`, i.e. values in
/// `[2^(i-1) .. 2^i - 1]` (bucket 0 holds exactly the zeros); the last
/// bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Aggregate of a stream of per-acquisition remote-reference counts,
/// with a log2-bucketed histogram for distribution shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// Number of samples (acquisitions).
    pub count: u64,
    /// Sum of remote references over all samples.
    pub total: u64,
    /// Worst observed sample.
    pub max: u64,
    /// Log2 histogram of samples (see [`HISTOGRAM_BUCKETS`]).
    pub histogram: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate {
            count: 0,
            total: 0,
            max: 0,
            histogram: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Aggregate {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.total += sample;
        self.max = self.max.max(sample);
        self.histogram[Self::bucket(sample)] += 1;
    }

    /// Histogram bucket index of a sample.
    #[inline]
    fn bucket(sample: u64) -> usize {
        let bits = 64 - sample.leading_zeros() as usize; // 0 -> 0, 1 -> 1
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean remote references per sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Smallest value `v` such that at least `q` (0..=1) of the samples
    /// fall in `v`'s bucket or below — a bucketed quantile, exact only
    /// up to the histogram's power-of-two resolution.
    pub fn quantile_bucket_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let want = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= want {
                return (1u64 << i) - 1;
            }
        }
        self.max
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &Aggregate) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        for (a, b) in self.histogram.iter_mut().zip(other.histogram.iter()) {
            *a += b;
        }
    }

    /// A compact one-line rendering of the histogram, e.g.
    /// `≤1:12 ≤2:30 ≤4:7`, skipping empty buckets.
    pub fn render_histogram(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.histogram.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            let upper = (1u64 << i) - 1;
            out.push_str(&format!("<={upper}:{c}"));
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// Per-process acquisition statistics.
#[derive(Debug, Clone, Default)]
pub struct ProcStats {
    /// Remote references of entry sections alone.
    pub entry: Aggregate,
    /// Remote references of exit sections alone.
    pub exit: Aggregate,
    /// Remote references of matching entry+exit pairs — the paper's `t`.
    pub pair: Aggregate,
    /// Own-steps spent in the entry section per acquisition (waiting
    /// time; spins count one step per iteration). Used for fairness
    /// analysis — RMRs deliberately do *not* count local spinning.
    pub wait_steps: Aggregate,
    /// Peak contention observed at any point during this process's entry
    /// sections (context for "complexity if contention is at most c").
    pub peak_contention: usize,
    // In-flight bookkeeping:
    pub(crate) entry_base: u64,
    pub(crate) exit_base: u64,
    pub(crate) entry_cost: u64,
    pub(crate) entry_steps_base: u64,
    pub(crate) in_flight: bool,
}

/// Statistics for a whole simulation run.
#[derive(Debug, Clone)]
pub struct Stats {
    per_proc: Vec<ProcStats>,
}

impl Stats {
    /// Fresh statistics for `n` processes.
    pub fn new(n: usize) -> Self {
        Stats {
            per_proc: (0..n).map(|_| ProcStats::default()).collect(),
        }
    }

    /// Statistics of process `p`.
    pub fn proc(&self, p: Pid) -> &ProcStats {
        &self.per_proc[p]
    }

    pub(crate) fn proc_mut(&mut self, p: Pid) -> &mut ProcStats {
        &mut self.per_proc[p]
    }

    /// Entry+exit pair aggregate over all processes.
    pub fn pair(&self) -> Aggregate {
        let mut out = Aggregate::default();
        for s in &self.per_proc {
            out.merge(&s.pair);
        }
        out
    }

    /// Entry-section aggregate over all processes.
    pub fn entry(&self) -> Aggregate {
        let mut out = Aggregate::default();
        for s in &self.per_proc {
            out.merge(&s.entry);
        }
        out
    }

    /// Exit-section aggregate over all processes.
    pub fn exit(&self) -> Aggregate {
        let mut out = Aggregate::default();
        for s in &self.per_proc {
            out.merge(&s.exit);
        }
        out
    }

    /// Worst entry+exit remote-reference count over all acquisitions of
    /// all processes — the empirical counterpart of a theorem bound.
    pub fn worst_pair(&self) -> u64 {
        self.pair().max
    }

    /// Entry-section waiting time (own steps) over all processes.
    pub fn wait_steps(&self) -> Aggregate {
        let mut out = Aggregate::default();
        for s in &self.per_proc {
            out.merge(&s.wait_steps);
        }
        out
    }

    /// Total completed acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.pair().count
    }

    /// Largest contention seen during any recorded entry section.
    pub fn peak_contention(&self) -> usize {
        self.per_proc
            .iter()
            .map(|s| s.peak_contention)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_tracks_count_total_max() {
        let mut a = Aggregate::default();
        a.record(3);
        a.record(7);
        a.record(5);
        assert_eq!(a.count, 3);
        assert_eq!(a.total, 15);
        assert_eq!(a.max, 7);
        assert!((a.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut a = Aggregate::default();
        for v in [0u64, 1, 2, 3, 4, 5, 8, 9, 1_000_000_000_000] {
            a.record(v);
        }
        assert_eq!(a.histogram[0], 1); // 0
        assert_eq!(a.histogram[1], 1); // 1
        assert_eq!(a.histogram[2], 2); // 2, 3
        assert_eq!(a.histogram[3], 2); // 4, 5
        assert_eq!(a.histogram[4], 2); // 8, 9
        assert_eq!(a.histogram[HISTOGRAM_BUCKETS - 1], 1); // the huge one
        let rendered = a.render_histogram();
        assert!(rendered.contains("<=1:1"), "{rendered}");
        assert!(rendered.contains("<=3:2"), "{rendered}");
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut a = Aggregate::default();
        for v in 0..100u64 {
            a.record(v);
        }
        let q50 = a.quantile_bucket_upper(0.5);
        let q99 = a.quantile_bucket_upper(0.99);
        assert!(q50 <= q99);
        assert!(q99 <= 127); // bucket upper bound above 99
        assert_eq!(Aggregate::default().quantile_bucket_upper(0.5), 0);
    }

    #[test]
    fn merged_histograms_add_bucketwise() {
        let mut a = Aggregate::default();
        a.record(2);
        let mut b = Aggregate::default();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.histogram[2], 2);
        assert_eq!(a.count, 2);
    }

    #[test]
    fn merge_combines_streams() {
        let mut a = Aggregate::default();
        a.record(2);
        let mut b = Aggregate::default();
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.max, 9);
        assert_eq!(a.total, 11);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(Aggregate::default().mean(), 0.0);
    }
}

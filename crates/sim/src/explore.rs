//! Exhaustive state-space exploration (model checking) for small
//! instances.
//!
//! The paper proves its algorithms correct with invariants (I1)–(I10) and
//! unless-properties (U1)/(U2), deferring full proofs to the full paper.
//! We re-establish those claims mechanically: for small `(N, k)` the
//! explorer enumerates **every** reachable state under **every**
//! interleaving (and, optionally, every placement of up to `f`
//! adversarial crash failures), checking the k-exclusion / k-assignment
//! safety properties in each state. The resulting labeled transition
//! graph feeds the starvation-freedom analysis in [`crate::liveness`] and
//! can also be probed with arbitrary user invariants via
//! [`explore_with`].
//!
//! State explosion is managed by (a) excluding performance-only state
//! (cache holder sets, RMR counters) from the state encoding and (b) the
//! `max_states` budget, which marks the report *truncated* rather than
//! running away.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::checker::{check_safety, Violation};
use crate::memmodel::MemoryModel;
use crate::protocol::Protocol;
use crate::types::{Pid, Word};
use crate::world::{Timing, World};

/// A transition label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Process `Pid` executed one atomic step.
    Step(Pid),
    /// The adversary crashed process `Pid` (a non-step transition; crash
    /// transitions are irreversible and therefore never lie on cycles).
    Crash(Pid),
}

/// Per-state process flags, stored as bitmasks (`N <= 64`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StateFlags {
    /// Processes that are neither failed nor done (must be treated fairly).
    pub live: u64,
    /// Processes inside their critical sections.
    pub critical: u64,
    /// Processes in their entry or exit sections.
    pub engaged: u64,
}

impl StateFlags {
    fn of(world: &World) -> Self {
        let mut f = StateFlags::default();
        for p in &world.procs {
            let bit = 1u64 << p.pid;
            if p.runnable() {
                f.live |= bit;
            }
            if p.phase.in_critical() {
                f.critical |= bit;
            }
            if matches!(
                p.phase,
                crate::process::Phase::Entry | crate::process::Phase::Exit
            ) {
                f.engaged |= bit;
            }
        }
        f
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Memory model (behaviorally irrelevant; affects nothing but
    /// diagnostics).
    pub model: MemoryModel,
    /// Section dwell times (keep at zero for tractable state spaces).
    pub timing: Timing,
    /// Cycles per process; `None` = cycle forever.
    ///
    /// Use `None` for liveness analysis. Algorithms with genuinely
    /// unbounded state (Figure 5's ever-fresh spin locations) require
    /// `Some(c)` to keep the space finite.
    pub cycles: Option<u64>,
    /// Up to this many adversarial crash failures may be injected, each at
    /// any moment at which the victim is outside its noncritical section
    /// (the paper's definition of a faulty process).
    pub max_failures: usize,
    /// Abort (with `truncated = true`) after this many states.
    pub max_states: usize,
    /// Restrict participation to these pids (`None` = all).
    pub participants: Option<Vec<Pid>>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            model: MemoryModel::CacheCoherent,
            timing: Timing::default(),
            cycles: None,
            max_failures: 0,
            max_states: 2_000_000,
            participants: None,
        }
    }
}

/// The explored transition system.
#[derive(Debug)]
pub struct ExploreReport {
    /// Number of distinct reachable states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Whether exploration hit the `max_states` budget.
    pub truncated: bool,
    /// First safety violation discovered, with the id of the state in
    /// which it holds.
    pub violation: Option<(u32, Violation)>,
    /// First user-invariant failure (from [`explore_with`]).
    pub invariant_failure: Option<(u32, String)>,
    /// Adjacency: `edges[s]` lists `(label, successor)`.
    pub edges: Vec<Vec<(Label, u32)>>,
    /// Per-state process flags.
    pub flags: Vec<StateFlags>,
    /// Discovery parent of each state: `(predecessor, label)`; the
    /// initial state's entry is `(0, Label::Step(0))` and unused.
    pub(crate) parents: Vec<(u32, Label)>,
}

impl ExploreReport {
    /// Panic with a readable message on any safety or invariant failure,
    /// or on truncation (a truncated exploration proves nothing).
    pub fn assert_ok(&self) {
        assert!(
            !self.truncated,
            "exploration truncated at {} states",
            self.states
        );
        if let Some((s, v)) = &self.violation {
            panic!("safety violation in state {s}: {v}");
        }
        if let Some((s, msg)) = &self.invariant_failure {
            panic!("invariant failure in state {s}: {msg}");
        }
    }

    /// `true` iff exploration completed with no violation of any kind.
    pub fn is_clean(&self) -> bool {
        !self.truncated && self.violation.is_none() && self.invariant_failure.is_none()
    }

    /// The schedule (sequence of step/crash transitions) that leads from
    /// the initial state to `state` — a replayable counterexample when
    /// `state` is a violation state. See [`crate::replay`].
    pub fn counterexample(&self, state: u32) -> Vec<Label> {
        let mut path = Vec::new();
        let mut cur = state;
        while cur != 0 {
            let (prev, label) = self.parents[cur as usize];
            path.push(label);
            cur = prev;
        }
        path.reverse();
        path
    }

    /// Convenience: the counterexample to the first violation or
    /// invariant failure, if any.
    pub fn first_counterexample(&self) -> Option<Vec<Label>> {
        let state = self
            .violation
            .as_ref()
            .map(|(s, _)| *s)
            .or(self.invariant_failure.as_ref().map(|(s, _)| *s))?;
        Some(self.counterexample(state))
    }
}

/// Explore all reachable states, checking only the built-in safety
/// properties (k-exclusion, name uniqueness).
///
/// ```rust
/// use kex_sim::prelude::*;
///
/// // A skip-root protocol with two participants and k = 2 is safe;
/// // exploration proves it over every interleaving.
/// let mut b = ProtocolBuilder::new(3);
/// let root = b.add(SkipNode);
/// let protocol = b.finish(root, 2);
/// let cfg = ExploreConfig {
///     participants: Some(vec![0, 1]),
///     ..ExploreConfig::default()
/// };
/// let report = explore(protocol, &cfg);
/// report.assert_ok();
/// check_starvation_freedom(&report).unwrap();
/// ```
pub fn explore(protocol: Arc<Protocol>, cfg: &ExploreConfig) -> ExploreReport {
    explore_with(protocol, cfg, |_| Ok(()))
}

/// Explore all reachable states, additionally checking `invariant` in
/// every state. Return `Err(message)` from the closure to report an
/// invariant failure.
///
/// Exploration stops at the first safety or invariant failure (the
/// partial graph is still returned for debugging).
pub fn explore_with(
    protocol: Arc<Protocol>,
    cfg: &ExploreConfig,
    invariant: impl Fn(&World) -> Result<(), String>,
) -> ExploreReport {
    let mut initial = World::new(protocol.clone(), cfg.model, cfg.timing, cfg.cycles);
    if let Some(parts) = &cfg.participants {
        initial.restrict_participants(parts);
    }

    // States are stored once: the interning map and the by-id list share
    // one `Rc<[Word]>` per state (explorations reach millions of states,
    // so the duplication would double the dominant memory cost).
    let mut index: HashMap<Rc<[Word]>, u32> = HashMap::new();
    let mut encoded: Vec<Rc<[Word]>> = Vec::new();
    let mut edges: Vec<Vec<(Label, u32)>> = Vec::new();
    let mut flags: Vec<StateFlags> = Vec::new();
    let mut parents: Vec<(u32, Label)> = Vec::new();
    let mut transitions = 0usize;
    let mut truncated = false;
    let mut violation = None;
    let mut invariant_failure = None;

    let intern = |w: &World,
                  index: &mut HashMap<Rc<[Word]>, u32>,
                  encoded: &mut Vec<Rc<[Word]>>,
                  edges: &mut Vec<Vec<(Label, u32)>>,
                  flags: &mut Vec<StateFlags>|
     -> (u32, bool) {
        let enc: Rc<[Word]> = w.encode().into();
        if let Some(&id) = index.get(&enc) {
            (id, false)
        } else {
            let id = encoded.len() as u32;
            index.insert(Rc::clone(&enc), id);
            encoded.push(enc);
            edges.push(Vec::new());
            flags.push(StateFlags::of(w));
            (id, true)
        }
    };
    // Discovery parents, for counterexample reconstruction.

    let (root, _) = intern(&initial, &mut index, &mut encoded, &mut edges, &mut flags);
    debug_assert_eq!(root, 0);
    parents.push((0, Label::Step(0))); // sentinel for the initial state
    if let Err(v) = check_safety(&initial) {
        violation = Some((0, v));
    }
    if violation.is_none() {
        if let Err(msg) = invariant(&initial) {
            invariant_failure = Some((0, msg));
        }
    }

    // Breadth-first, so discovery parents give (near-)shortest
    // counterexamples.
    let mut frontier: std::collections::VecDeque<u32> = std::collections::VecDeque::from([0]);
    'outer: while let Some(id) = frontier.pop_front() {
        if violation.is_some() || invariant_failure.is_some() {
            break;
        }
        let w = World::decode(
            protocol.clone(),
            cfg.model,
            cfg.timing,
            &encoded[id as usize],
        );
        let failed_count = w.procs.iter().filter(|p| p.failed).count();

        // Process-step transitions.
        for p in w.runnable() {
            let mut w2 = w.clone();
            w2.step(p);
            let (tid, fresh) = intern(&w2, &mut index, &mut encoded, &mut edges, &mut flags);
            edges[id as usize].push((Label::Step(p), tid));
            transitions += 1;
            if fresh {
                parents.push((id, Label::Step(p)));
                if let Err(v) = check_safety(&w2) {
                    violation = Some((tid, v));
                    break 'outer;
                }
                if let Err(msg) = invariant(&w2) {
                    invariant_failure = Some((tid, msg));
                    break 'outer;
                }
                if encoded.len() >= cfg.max_states {
                    truncated = true;
                    break 'outer;
                }
                frontier.push_back(tid);
            }
        }

        // Adversarial crash transitions: any contending, non-failed
        // process may stop forever (the paper's fault model).
        if failed_count < cfg.max_failures {
            for p in 0..w.procs.len() {
                let proc = &w.procs[p];
                if !proc.failed && proc.phase.is_contending() {
                    let mut w2 = w.clone();
                    w2.fail(p);
                    let (tid, fresh) =
                        intern(&w2, &mut index, &mut encoded, &mut edges, &mut flags);
                    edges[id as usize].push((Label::Crash(p), tid));
                    transitions += 1;
                    if fresh {
                        parents.push((id, Label::Crash(p)));
                        if encoded.len() >= cfg.max_states {
                            truncated = true;
                            break 'outer;
                        }
                        frontier.push_back(tid);
                    }
                }
            }
        }
    }

    ExploreReport {
        states: encoded.len(),
        transitions,
        truncated,
        violation,
        invariant_failure,
        edges,
        flags,
        parents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SkipNode;
    use crate::protocol::ProtocolBuilder;

    fn skip_protocol(n: usize, k: usize) -> Arc<Protocol> {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(SkipNode);
        b.finish(root, k)
    }

    #[test]
    fn finds_safety_violation_in_non_excluding_protocol() {
        let report = explore(skip_protocol(3, 1), &ExploreConfig::default());
        assert!(matches!(
            report.violation,
            Some((_, Violation::TooManyInCritical { .. }))
        ));
    }

    #[test]
    fn clean_when_k_equals_contenders() {
        // Three processes, k = 2 of which participate: skip is "safe".
        let cfg = ExploreConfig {
            participants: Some(vec![0, 1]),
            ..ExploreConfig::default()
        };
        let report = explore(skip_protocol(3, 2), &cfg);
        report.assert_ok();
        assert!(report.states > 1);
        assert!(report.transitions >= report.states - 1);
    }

    #[test]
    fn user_invariants_are_checked_everywhere() {
        let cfg = ExploreConfig {
            participants: Some(vec![0]),
            ..ExploreConfig::default()
        };
        let report = explore_with(skip_protocol(3, 2), &cfg, |w| {
            if w.critical_count() <= 1 {
                Ok(())
            } else {
                Err("impossible".into())
            }
        });
        report.assert_ok();

        let report = explore_with(skip_protocol(3, 2), &cfg, |w| {
            if w.procs[0].phase.in_critical() {
                Err("p0 reached the critical section".into())
            } else {
                Ok(())
            }
        });
        assert!(report.invariant_failure.is_some());
    }

    #[test]
    fn crash_transitions_respect_the_budget() {
        let cfg = ExploreConfig {
            max_failures: 1,
            participants: Some(vec![0, 1]),
            ..ExploreConfig::default()
        };
        let report = explore(skip_protocol(3, 2), &cfg);
        report.assert_ok();
        let crashes = report
            .edges
            .iter()
            .flatten()
            .filter(|(l, _)| matches!(l, Label::Crash(_)))
            .count();
        assert!(crashes > 0, "adversary should have crash options");
    }

    #[test]
    fn truncation_is_reported() {
        let cfg = ExploreConfig {
            max_states: 3,
            ..ExploreConfig::default()
        };
        let report = explore(skip_protocol(4, 3), &cfg);
        assert!(report.truncated);
    }
}

//! The complete simulated world: protocol + memory + processes, advanced
//! one atomic step at a time.
//!
//! [`World`] is the single stepping engine shared by the statistics-
//! gathering simulator ([`crate::sim::Sim`]) and the exhaustive model
//! checker ([`crate::explore`]): both decide *which* process moves; the
//! world decides *what happens* when it moves.

use std::sync::Arc;

use crate::mem::MemState;
use crate::memmodel::MemoryModel;
use crate::process::{Frame, Phase, ProcState};
use crate::protocol::Protocol;
use crate::types::{Pid, Section, Step, Word};

/// How long (in own-steps) processes dwell in their noncritical and
/// critical sections.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    /// Steps spent in the noncritical section between cycles.
    pub ncs_steps: u32,
    /// Steps spent inside the critical section.
    pub cs_steps: u32,
}

/// What a single process step did, as observed by checkers and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An ordinary statement inside a section, or noncritical/critical
    /// dwell time passing.
    Progress,
    /// The process started its entry section this step.
    BeganEntry,
    /// The process completed its entry section and is now critical.
    EnteredCs,
    /// The process left the critical section and began its exit section.
    BeganExit,
    /// The process completed its exit section (one full cycle done).
    CompletedCycle,
    /// The process has no more cycles to run.
    BecameDone,
}

/// Protocol + memory + process states: everything that evolves.
#[derive(Clone)]
pub struct World {
    /// The immutable protocol being executed.
    pub protocol: Arc<Protocol>,
    /// The memory model in force (decides RMR accounting only).
    pub model: MemoryModel,
    /// Shared-memory state.
    pub mem: MemState,
    /// One state per process, indexed by pid.
    pub procs: Vec<ProcState>,
    /// Section dwell times.
    pub timing: Timing,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("model", &self.model)
            .field("protocol", &self.protocol)
            .field("procs", &self.procs.len())
            .finish()
    }
}

impl World {
    /// Create a world in which every process runs `cycles` entry→exit
    /// cycles (`None` = forever).
    pub fn new(
        protocol: Arc<Protocol>,
        model: MemoryModel,
        timing: Timing,
        cycles: Option<u64>,
    ) -> Self {
        let n = protocol.n();
        let mem = MemState::new(protocol.vars(), n);
        let procs = (0..n)
            .map(|p| ProcState::new(p, protocol.fresh_locals(p), cycles, timing.ncs_steps))
            .collect();
        World {
            protocol,
            model,
            mem,
            procs,
            timing,
        }
    }

    /// Restrict participation: processes not in `participants` are marked
    /// [`Phase::Done`] immediately (they stay in their noncritical section
    /// forever, contributing zero contention).
    pub fn restrict_participants(&mut self, participants: &[Pid]) {
        for proc in &mut self.procs {
            if !participants.contains(&proc.pid) {
                proc.phase = Phase::Done;
                proc.cycles_left = Some(0);
            }
        }
    }

    /// Ids of processes the scheduler may pick.
    pub fn runnable(&self) -> Vec<Pid> {
        self.procs
            .iter()
            .filter(|p| p.runnable())
            .map(|p| p.pid)
            .collect()
    }

    /// Number of processes currently inside their critical sections.
    pub fn critical_count(&self) -> usize {
        self.procs.iter().filter(|p| p.phase.in_critical()).count()
    }

    /// Number of processes outside their noncritical sections — the
    /// paper's *contention*.
    pub fn contention(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| p.phase.is_contending())
            .count()
    }

    /// The name process `p` currently holds, if the root node assigns
    /// names and `p` has completed its entry section.
    pub fn held_name(&self, p: Pid) -> Option<Word> {
        let root = self.protocol.root();
        let off = self.protocol.locals_offset(root);
        let len = self.protocol.locals_len(root);
        self.protocol
            .node(root)
            .acquired_name(&self.procs[p].locals[off..off + len])
    }

    /// Crash-fail process `p`: it takes no further steps, wherever it is.
    pub fn fail(&mut self, p: Pid) {
        self.procs[p].failed = true;
    }

    /// Advance process `p` by one atomic step.
    ///
    /// # Panics
    /// Panics if `p` is not runnable (failed or done): schedulers must
    /// only pick runnable processes.
    pub fn step(&mut self, p: Pid) -> Event {
        assert!(
            self.procs[p].runnable(),
            "stepped a non-runnable process {p}"
        );
        self.procs[p].steps += 1;
        match self.procs[p].phase {
            Phase::Noncritical { remaining } => {
                if remaining > 0 {
                    self.procs[p].phase = Phase::Noncritical {
                        remaining: remaining - 1,
                    };
                    Event::Progress
                } else {
                    // Begin the entry section: push the root frame. The
                    // step that starts the entry performs no memory
                    // access; the first statement runs on p's next step.
                    self.procs[p].stack.push(Frame {
                        node: self.protocol.root(),
                        section: Section::Entry,
                        pc: 0,
                    });
                    self.procs[p].phase = Phase::Entry;
                    Event::BeganEntry
                }
            }
            Phase::Entry => {
                self.exec_statement(p);
                if self.procs[p].stack.is_empty() {
                    self.procs[p].phase = Phase::Critical {
                        remaining: self.timing.cs_steps,
                    };
                    Event::EnteredCs
                } else {
                    Event::Progress
                }
            }
            Phase::Critical { remaining } => {
                if remaining > 0 {
                    self.procs[p].phase = Phase::Critical {
                        remaining: remaining - 1,
                    };
                    Event::Progress
                } else {
                    self.procs[p].stack.push(Frame {
                        node: self.protocol.root(),
                        section: Section::Exit,
                        pc: 0,
                    });
                    self.procs[p].phase = Phase::Exit;
                    Event::BeganExit
                }
            }
            Phase::Exit => {
                self.exec_statement(p);
                if self.procs[p].stack.is_empty() {
                    let proc = &mut self.procs[p];
                    proc.completed += 1;
                    if let Some(c) = &mut proc.cycles_left {
                        *c -= 1;
                        if *c == 0 {
                            proc.phase = Phase::Done;
                            return Event::BecameDone;
                        }
                    }
                    proc.phase = Phase::Noncritical {
                        remaining: self.timing.ncs_steps,
                    };
                    Event::CompletedCycle
                } else {
                    Event::Progress
                }
            }
            Phase::Done => unreachable!("done processes are not runnable"),
        }
    }

    /// Execute one statement of the top frame of `p`'s stack.
    fn exec_statement(&mut self, p: Pid) {
        let frame = *self.procs[p]
            .stack
            .last()
            .expect("entry/exit phase with empty stack");
        let node = self.protocol.node(frame.node);
        let off = self.protocol.locals_offset(frame.node);
        let len = self.protocol.locals_len(frame.node);

        let step = {
            let proc = &mut self.procs[p];
            let locals = &mut proc.locals[off..off + len];
            let mut ctx = self.mem.ctx(self.protocol.vars(), self.model, p);
            node.step(frame.section, frame.pc, locals, &mut ctx)
        };

        let stack = &mut self.procs[p].stack;
        match step {
            Step::Goto(pc) => stack.last_mut().unwrap().pc = pc,
            Step::Call {
                child,
                section,
                ret,
            } => {
                stack.last_mut().unwrap().pc = ret;
                stack.push(Frame {
                    node: child,
                    section,
                    pc: 0,
                });
            }
            Step::Return => {
                stack.pop();
            }
        }
    }

    /// Encode the behaviorally relevant state (for the model checker):
    /// shared values + every process's phase/stack/locals. Cache holder
    /// sets and RMR counters are excluded — they never influence control
    /// flow.
    pub fn encode(&self) -> Vec<Word> {
        let mut out = Vec::with_capacity(self.mem.values().len() + self.procs.len() * 8);
        out.extend_from_slice(self.mem.values());
        for p in &self.procs {
            p.encode(&mut out);
        }
        out
    }

    /// Rebuild a world from an [`World::encode`]d state. Statistics
    /// (RMR counters, completed-cycle counts) restart from zero.
    ///
    /// # Panics
    /// Panics if `words` is not a valid encoding for this protocol.
    pub fn decode(
        protocol: Arc<Protocol>,
        model: MemoryModel,
        timing: Timing,
        words: &[Word],
    ) -> Self {
        let nvars = protocol.vars().len();
        let n = protocol.n();
        let mem = MemState::restore(words[..nvars].to_vec(), n);
        let mut idx = nvars;
        let mut procs = Vec::with_capacity(n);
        for pid in 0..n {
            let (tag, arg) = (words[idx], words[idx + 1]);
            idx += 2;
            let phase = match (tag, arg) {
                (0, r) => Phase::Noncritical {
                    remaining: r as u32,
                },
                (1, _) => Phase::Entry,
                (2, r) => Phase::Critical {
                    remaining: r as u32,
                },
                (3, _) => Phase::Exit,
                (4, _) => Phase::Done,
                (tag, _) => panic!("bad phase tag {tag}"),
            };
            let failed = words[idx] != 0;
            idx += 1;
            let cycles_left = match words[idx] {
                -1 => None,
                c => Some(c as u64),
            };
            idx += 1;
            let stack_len = words[idx] as usize;
            idx += 1;
            let mut stack = Vec::with_capacity(stack_len);
            for _ in 0..stack_len {
                let node = crate::types::NodeId(words[idx] as u32);
                let section = if words[idx + 1] == 0 {
                    Section::Entry
                } else {
                    Section::Exit
                };
                let pc = words[idx + 2] as u32;
                idx += 3;
                stack.push(Frame { node, section, pc });
            }
            let total = protocol.locals_total();
            let locals = words[idx..idx + total].to_vec();
            idx += total;
            procs.push(ProcState {
                pid,
                phase,
                stack,
                locals,
                cycles_left,
                failed,
                completed: 0,
                steps: 0,
            });
        }
        assert_eq!(idx, words.len(), "trailing words in encoded state");
        World {
            protocol,
            model,
            mem,
            procs,
            timing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SkipNode;
    use crate::protocol::ProtocolBuilder;

    fn skip_world(n: usize, cycles: Option<u64>) -> World {
        let mut b = ProtocolBuilder::new(n);
        let root = b.add(SkipNode);
        let p = b.finish(root, n - 1);
        World::new(p, MemoryModel::CacheCoherent, Timing::default(), cycles)
    }

    #[test]
    fn a_process_cycles_through_all_phases() {
        let mut w = skip_world(2, Some(1));
        assert_eq!(w.step(0), Event::BeganEntry);
        assert_eq!(w.step(0), Event::EnteredCs); // skip's entry = 1 statement
        assert!(w.procs[0].phase.in_critical());
        assert_eq!(w.critical_count(), 1);
        assert_eq!(w.step(0), Event::BeganExit);
        assert_eq!(w.step(0), Event::BecameDone);
        assert_eq!(w.procs[0].completed, 1);
        assert!(!w.procs[0].runnable());
    }

    #[test]
    fn dwell_times_hold_processes_in_sections() {
        let mut b = ProtocolBuilder::new(2);
        let root = b.add(SkipNode);
        let p = b.finish(root, 1);
        let timing = Timing {
            ncs_steps: 2,
            cs_steps: 3,
        };
        let mut w = World::new(p, MemoryModel::Dsm, timing, Some(1));
        assert_eq!(w.step(0), Event::Progress); // ncs 2 -> 1
        assert_eq!(w.step(0), Event::Progress); // ncs 1 -> 0
        assert_eq!(w.step(0), Event::BeganEntry);
        assert_eq!(w.step(0), Event::EnteredCs);
        for _ in 0..3 {
            assert_eq!(w.step(0), Event::Progress); // cs dwell
        }
        assert_eq!(w.step(0), Event::BeganExit);
        assert_eq!(w.step(0), Event::BecameDone);
    }

    #[test]
    fn restricting_participants_silences_processes() {
        let mut w = skip_world(4, None);
        w.restrict_participants(&[1, 2]);
        assert_eq!(w.runnable(), vec![1, 2]);
    }

    #[test]
    fn failed_process_takes_no_steps() {
        let mut w = skip_world(2, None);
        w.step(1); // p1 begins entry
        w.fail(1);
        assert_eq!(w.runnable(), vec![0]);
    }

    #[test]
    fn encode_is_deterministic_and_ignores_rmr_state() {
        let w1 = skip_world(3, None);
        let w2 = skip_world(3, None);
        assert_eq!(w1.encode(), w2.encode());
    }

    #[test]
    fn encode_decode_round_trips_mid_execution() {
        let mut w = skip_world(3, Some(5));
        w.step(0); // p0 in entry
        w.step(1);
        w.step(1); // p1 critical
        w.fail(2);
        let enc = w.encode();
        let w2 = World::decode(w.protocol.clone(), w.model, w.timing, &enc);
        assert_eq!(w2.encode(), enc);
        assert_eq!(w2.procs[1].phase, w.procs[1].phase);
        assert!(w2.procs[2].failed);
        assert_eq!(w2.procs[0].stack, w.procs[0].stack);
    }
}

//! Source-conformance audit over the workspace's own sources.
//!
//! ```text
//! cargo run -p kex-lint --bin lint                     # text report
//! cargo run -p kex-lint --bin lint -- --json           # machine-readable report
//! cargo run -p kex-lint --bin lint -- --assert         # exit non-zero on any finding (CI mode)
//! cargo run -p kex-lint --bin lint -- --write-manifest # regenerate docs/ordering_sites.json
//! cargo run -p kex-lint --features seqcst --bin lint -- --assert
//!     # audit the collapsed-ordering build
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use kex_analyze::Config;
use kex_lint::{audit, generate_manifest, render_json, render_text, Build, Inputs, Workspace};

const USAGE: &str =
    "usage: lint [--json] [--assert] [--write-manifest] [--root PATH] [--build default|seqcst]\n\
                     \n\
                     Token-level conformance lints over the workspace sources: ordering-policy\n\
                     checker (ord::* constants, docs/ordering_sites.json manifest and the\n\
                     docs/MEMORY_ORDERING.md audit table, reconciled both ways), facade-bypass\n\
                     detector, busy-wait backoff lint, the cross-layer drift audit against\n\
                     the kex-obs runtime site registry (BENCH_native.json) and the kex-analyze\n\
                     protocol IR, and the ordering-obligation pass (per-site roles checked\n\
                     against the IR-derived release/acquire minimums).";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut json = false;
    let mut assert_clean = false;
    let mut write_manifest = false;
    let mut build = Build::active();
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--assert" => assert_clean = true,
            "--write-manifest" => write_manifest = true,
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).unwrap_or_else(|| usage()));
            }
            "--build" => {
                i += 1;
                build = match args.get(i).map(String::as_str) {
                    Some("default") => Build::Default,
                    Some("seqcst") => Build::SeqCst,
                    _ => usage(),
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
        i += 1;
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let inputs = Inputs::load(&root);

    if write_manifest {
        let text = match generate_manifest(&ws, inputs.bench.as_deref()) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = root.join("docs/ordering_sites.json");
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("lint: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let report = audit(&ws, &inputs, build, &Config::default());
    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if assert_clean && !report.clean() {
        eprintln!(
            "lint: {} finding(s) — see report above",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Source-level conformance lints for the kex workspace.
//!
//! The repository's correctness story leans on three *conventions* that
//! rustc cannot enforce:
//!
//! 1. **Ordering policy** — every atomic call site in
//!    `crates/core/src/native/` names its memory ordering through the
//!    audited constants in `kex_core::native::ordering` (never a literal
//!    `Ordering::*`), and every site has a justification row in
//!    `docs/MEMORY_ORDERING.md` plus an entry in the committed site
//!    manifest `docs/ordering_sites.json`.
//! 2. **Facade discipline** — library code reaches atomics, spin hints
//!    and thread spawning only through the `kex_util::sync` facade, so a
//!    single `--cfg loom` (or `--features obs`) rebuild swaps every call
//!    site onto the model-checked / instrumented backend. A direct
//!    `std::sync::atomic` import silently opts a site out of both.
//! 3. **Spin etiquette** — native busy-wait loops back off through
//!    `kex_util::Backoff` (which routes to the facade's spin hint), so
//!    the loom build can bound them and the contended benchmarks measure
//!    what production runs.
//!
//! `kex-lint` is a dependency-free, token-level analyzer over the
//! workspace's own sources that machine-checks all three, plus a
//! **cross-layer drift audit**: the same physical `file:line` inventory
//! is maintained independently by this crate (source scan), by
//! `docs/MEMORY_ORDERING.md` (the human audit table), by the kex-obs
//! runtime site registry (`#[track_caller]` interning, exported into
//! `BENCH_native.json`), and by the kex-analyze protocol IR (per-variable
//! access summaries). The manifest `docs/ordering_sites.json` is the
//! committed rendezvous point; the drift pass fails if any layer
//! disagrees with it in either direction. On top of the inventory sits
//! the **ordering-obligation pass**: every manifest site carries a
//! derived `role` (spin / publish / handshake / counter / private),
//! and the claimed ordering must both fit the role's policy and
//! satisfy the per-variable minimum the kex-analyze IR derives — so a
//! manifest row relaxing a publish or handshake participant is a hard
//! error, not just drift.
//!
//! The scanner is deliberately *token-level*, not a Rust parser: it
//! masks comments, strings and char literals (preserving byte offsets
//! and line numbers), tracks `#[cfg(test)]` brace regions, and pattern
//! matches the remainder. That is exactly enough for the five lints and
//! keeps the crate free of syn-style dependencies (the workspace builds
//! fully offline).
//!
//! Findings can be suppressed per line with a trailing directive
//! comment, e.g. `// kex-lint: allow(spin): <reason>`; the directive
//! must share the line with the flagged construct so that suppressions
//! never shift the `file:line` coordinates the audit table cites.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use kex_analyze::Config;
use kex_core::sim::build::Algorithm;
use kex_obs::json::{self, Json};

/// Schema identifier written into `docs/ordering_sites.json`.
pub const MANIFEST_SCHEMA: &str = "kex-lint/ordering_sites/v2";

/// Schema identifier of the JSON findings report.
pub const FINDINGS_SCHEMA: &str = "kex-lint/findings/v1";

/// Schema identifier expected of `BENCH_native.json`.
const BENCH_SCHEMA: &str = "kex-bench/native_obs/v1";

/// Repo-relative directory roots loaded into a [`Workspace`].
///
/// `crates/loom` and `crates/obs` are the facade's alternative backends
/// (they *implement* the abstraction and legitimately touch std), and
/// `crates/bench` is a host-side harness that is explicitly allowed
/// `std::hint::black_box` and friends — none of the three is scanned.
const SCAN_ROOTS: &[&str] = &[
    "crates/core/src",
    "crates/waitfree/src",
    "crates/store/src",
    "crates/util/src",
    "crates/util/tests",
    "crates/sim/src",
    "crates/analyze/src",
    "crates/lint/src",
    "src",
];

/// The audited hot-path directory.
const NATIVE_PREFIX: &str = "crates/core/src/native/";

/// The one file allowed to spell `Ordering::*` literals: it *defines*
/// the audited constants.
const ORDERING_MODULE: &str = "crates/core/src/native/ordering.rs";

/// The wait-free layer, covered by the literal-`Ordering::*` ban (its
/// sites are not in the manifest inventory — the layer is uniformly
/// SeqCst by design — but spelling orderings inline would dodge any
/// future audit, so the naming discipline applies there too).
const WAITFREE_PREFIX: &str = "crates/waitfree/src/";

/// The waitfree counterpart of `native::ordering`: defines that
/// crate's named ordering constant, so it may spell `Ordering::*`.
const WAITFREE_ORDERING_MODULE: &str = "crates/waitfree/src/ordering.rs";

/// The store service layer, covered by the same literal-`Ordering::*`
/// ban (uniformly SeqCst by design, like the wait-free layer).
const STORE_PREFIX: &str = "crates/store/src/";

/// The store counterpart of `native::ordering`: defines that crate's
/// named ordering constant, so it may spell `Ordering::*`.
const STORE_ORDERING_MODULE: &str = "crates/store/src/ordering.rs";

/// Native files exempt from the site passes: test scaffolding compiled
/// only under `cfg(test)` (via the `mod` declaration, not an in-file
/// region), so it is not an audited hot path.
const NATIVE_TEST_SUPPORT: &[&str] = &["crates/core/src/native/testutil.rs"];

/// Substrings whose appearance (in code, not comments/strings) bypasses
/// the `kex_util::sync` facade.
const FACADE_PATTERNS: &[&str] = &[
    "std::sync::atomic",
    "core::sync::atomic",
    "std::hint::spin_loop",
    "core::hint::spin_loop",
    "std::thread::spawn",
    "std::thread::yield_now",
];

/// Files allowed to name the facade-bypassing paths, with the reason on
/// record (rendered into findings if the list drifts out of date).
const FACADE_ALLOW: &[(&str, &str)] = &[
    (
        "crates/util/src/sync.rs",
        "the facade itself: re-exports std as its non-loom, non-obs backend",
    ),
    (
        "crates/util/src/lib.rs",
        "backoff tuning globals are plain std atomics on purpose; the loom build compiles them out",
    ),
    (
        "crates/util/tests/zero_cost.rs",
        "asserts the facade's std backend is type-identical to std::sync::atomic",
    ),
];

/// Atomic methods whose call sites constitute the ordering inventory.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Ordering keywords recognized in the audit table's *Implemented*
/// column, longest first so `SeqCst` wins over nothing and `AcqRel`
/// is matched before `Acquire`/`Release` by earliest-position search.
const ORDERING_KEYWORDS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

/// One [`IR_MAP`] row: native file, the IR algorithm modelling it, and
/// the receiver-name → IR-variable aliases.
type IrMapRow = (
    &'static str,
    Algorithm,
    &'static [(&'static str, &'static str)],
);

/// Map from native file to the analyzer-IR algorithm modelling it, plus
/// the receiver-name → IR-variable aliases. Files absent here have no
/// statement-level IR counterpart (MCS and Yang–Anderson are native-only
/// building blocks; the registry is plumbing) and their manifest `ir`
/// fields stay `null`.
const IR_MAP: &[IrMapRow] = &[
    ("fig2.rs", Algorithm::CcChain, &[("x", "x"), ("q", "q")]),
    (
        "fig6.rs",
        Algorithm::DsmChain,
        &[("x", "x"), ("q", "q"), ("r", "r"), ("p", "p")],
    ),
    ("fast_path.rs", Algorithm::CcFastPath, &[("x", "x")]),
    ("renaming.rs", Algorithm::AssignmentCc, &[("bits", "x")]),
    ("fig1.rs", Algorithm::QueueFig1, &[]),
];

// ---------------------------------------------------------------------------
// Ordering roles (manifest schema v2)
// ---------------------------------------------------------------------------

/// The role vocabulary of manifest schema v2. Each site is classified
/// by what its ordering *does*: `spin` (the acquire side of a handoff,
/// read in a wait loop), `publish` (the release side of a handoff
/// write), `handshake` (a Dekker-style store/load or RMW pair that
/// needs the single SC total order), `counter` (an RMW whose own
/// read-modify-write atomicity carries the protocol) and `private`
/// (single-owner or freshness-insensitive accesses).
pub const ROLES: &[&str] = &["spin", "publish", "handshake", "counter", "private"];

/// Sites whose role is pinned by hand because the (op, ordering) shape
/// misclassifies them: the registry's slot claim is an isolated
/// ownership RMW (a counter-style claim, SeqCst out of conservatism,
/// not because it pairs with a remote load) and its slot release is a
/// plain publish. Keyed by (file, op, var) so line drift in the file
/// cannot silently detach the exception.
const ROLE_EXCEPTIONS: &[(&str, &str, &str, &str)] = &[
    (
        "crates/core/src/native/registry.rs",
        "swap",
        "slot",
        "counter",
    ),
    (
        "crates/core/src/native/registry.rs",
        "store",
        "slots",
        "publish",
    ),
];

/// Derives a site's ordering role from its coordinates, op and
/// default-build ordering. This is the single source of truth for the
/// manifest's v2 `role` field: `generate_manifest` writes it and the
/// obligation pass re-derives it for the consistency check.
pub fn derive_role(file: &str, op: &str, var: &str, ordering: &str) -> &'static str {
    if let Some((_, _, _, role)) = ROLE_EXCEPTIONS
        .iter()
        .find(|(f, o, v, _)| *f == file && *o == op && *v == var)
    {
        return role;
    }
    match (op_kind(op), ordering) {
        (_, "SeqCst") => "handshake",
        (_, "Relaxed") => "private",
        ("load", "Acquire") => "spin",
        ("store", "Release") => "publish",
        ("rmw", "AcqRel") => "counter",
        // Non-canonical shapes (a Release load, an Acquire store, ...)
        // only arise from mutations; classify them as private so the
        // role-consistency check flags the drift.
        _ => "private",
    }
}

/// Collapses the manifest `op` vocabulary into load / store / rmw.
fn op_kind(op: &str) -> &'static str {
    match op {
        "load" => "load",
        "store" => "store",
        _ => "rmw",
    }
}

/// Admissible (op kind, claimed orderings) per role. `private` is
/// unconstrained — the obligation layer has nothing to say about
/// single-owner accesses — and returns `None`.
fn role_policy(role: &str) -> Option<(&'static str, &'static [&'static str])> {
    match role {
        "spin" => Some(("load", &["Acquire", "SeqCst"])),
        "publish" => Some(("store", &["Release", "SeqCst"])),
        "handshake" => Some(("any", &["SeqCst"])),
        "counter" => Some(("rmw", &["AcqRel", "SeqCst"])),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// Which lint pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Ordering-policy lint (constants, manifest, audit table).
    Ordering,
    /// Facade-bypass detector.
    Facade,
    /// Busy-wait backoff lint.
    Spin,
    /// Cross-layer site-drift audit (manifest vs runtime vs IR).
    Drift,
    /// Ordering-obligation checker (v2 roles and IR-derived minimums).
    Obligation,
}

impl Pass {
    /// Stable lowercase name (used in reports and `allow(...)`
    /// directives).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Ordering => "ordering",
            Pass::Facade => "facade",
            Pass::Spin => "spin",
            Pass::Drift => "drift",
            Pass::Obligation => "obligation",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which ordering flavour is being audited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Build {
    /// The audited per-site orderings (no `seqcst` feature).
    Default,
    /// `--features seqcst`: every constant must collapse to `SeqCst`.
    SeqCst,
}

impl Build {
    /// The flavour this lint binary itself was compiled for.
    pub fn active() -> Build {
        if cfg!(feature = "seqcst") {
            Build::SeqCst
        } else {
            Build::Default
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Build::Default => "default",
            Build::SeqCst => "seqcst",
        }
    }
}

/// One conformance violation, anchored to a source coordinate.
///
/// `line == 0` marks a file- or artifact-level finding (a missing
/// manifest, a truncated runtime inventory) with no single line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that fired.
    pub pass: Pass,
    /// Repo-relative path (or artifact name such as `BENCH_native.json`).
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "[{}] {} — {}", self.pass, self.file, self.message)
        } else {
            write!(
                f,
                "[{}] {}:{} — {}",
                self.pass, self.file, self.line, self.message
            )
        }
    }
}

fn finding(pass: Pass, file: &str, line: usize, message: impl Into<String>) -> Finding {
    Finding {
        pass,
        file: file.to_string(),
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Source model: masking, test regions, directives
// ---------------------------------------------------------------------------

/// Replaces every byte of comments, string literals and char literals
/// with a space (newlines are preserved), so downstream passes can
/// pattern-match code without being fooled by prose. Byte offsets and
/// line numbers are unchanged: the output has exactly the input's
/// length.
pub fn mask_source(text: &str) -> String {
    let bytes = text.as_bytes();
    let len = bytes.len();
    let mut out = bytes.to_vec();
    let blank = |out: &mut [u8], idx: usize| {
        if out[idx] != b'\n' && out[idx] != b'\r' {
            out[idx] = b' ';
        }
    };
    let mut i = 0;
    while i < len {
        let c = bytes[i];
        if c == b'/' && i + 1 < len && bytes[i + 1] == b'/' {
            while i < len && bytes[i] != b'\n' {
                out[i] = b' ';
                i += 1;
            }
        } else if c == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < len {
                if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                    depth += 1;
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                    depth -= 1;
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, i);
                    i += 1;
                }
            }
        } else if let Some((quote, hashes, raw)) = string_start(bytes, i) {
            // Blank the whole literal, prefix and quotes included.
            for idx in i..=quote {
                blank(&mut out, idx);
            }
            let mut j = quote + 1;
            loop {
                if j >= len {
                    break; // unterminated; nothing more to mask
                }
                if bytes[j] == b'\\' && !raw {
                    blank(&mut out, j);
                    if j + 1 < len {
                        blank(&mut out, j + 1);
                    }
                    j += 2;
                    continue;
                }
                if bytes[j] == b'"' {
                    let close = bytes[j + 1..]
                        .iter()
                        .take(hashes)
                        .take_while(|&&b| b == b'#')
                        .count();
                    if close == hashes {
                        for idx in j..=j + hashes {
                            blank(&mut out, idx);
                        }
                        j += hashes + 1;
                        break;
                    }
                }
                blank(&mut out, j);
                j += 1;
            }
            i = j;
        } else if c == b'\'' {
            if i + 1 < len && bytes[i + 1] == b'\\' {
                // Escaped char literal: '\n', '\\', '\'', '\u{..}'. The
                // byte right after the backslash is always payload, so
                // the closing quote search starts past it.
                let mut j = (i + 3).min(len);
                while j < len && bytes[j] != b'\'' {
                    j += 1;
                }
                for idx in i..=j.min(len - 1) {
                    blank(&mut out, idx);
                }
                i = j + 1;
            } else if i + 1 < len {
                // Either a one-scalar char literal ('x', '—') or a
                // lifetime ('a, 'static). A closing quote directly after
                // one UTF-8 scalar decides.
                let scalar = utf8_len(bytes[i + 1]);
                if i + 1 + scalar < len && bytes[i + 1 + scalar] == b'\'' {
                    for idx in i..=i + 1 + scalar {
                        blank(&mut out, idx);
                    }
                    i += scalar + 2;
                } else {
                    i += 1; // lifetime
                }
            } else {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    String::from_utf8(out).expect("masking replaces whole UTF-8 scalars")
}

/// If a string literal starts at `i`, returns `(index of the opening
/// quote, raw-string hash count, is_raw)`.
fn string_start(bytes: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let prefixed = i > 0 && is_ident(bytes[i - 1]);
    match bytes[i] {
        b'"' => Some((i, 0, false)),
        b'r' | b'b' if !prefixed => {
            let mut j = i + 1;
            if bytes[i] == b'b' && j < bytes.len() && bytes[j] == b'r' {
                j += 1;
            }
            let raw = j > i + 1 || bytes[i] == b'r';
            let mut hashes = 0;
            while raw && j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' && (raw || bytes[i] == b'b') {
                Some((j, hashes, raw))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// One scanned source file with its masked text and structural indexes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Original text.
    pub text: String,
    /// Comment/string-masked text, byte-aligned with `text`.
    pub masked: String,
    line_starts: Vec<usize>,
    test_regions: Vec<(usize, usize)>,
    allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Builds the masked view and structural indexes for `text`.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let masked = mask_source(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_regions = find_test_regions(&masked);
        let allows = find_allow_directives(&text);
        SourceFile {
            path,
            text,
            masked,
            line_starts,
            test_regions,
            allows,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// Whether `offset` falls inside a `#[cfg(test)]`-gated region.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whether `line` carries a `kex-lint: allow(<pass>)` directive.
    pub fn allowed(&self, line: usize, pass: Pass) -> bool {
        self.allows
            .iter()
            .any(|(l, p)| *l == line && p == pass.name())
    }
}

/// Byte ranges of items gated behind `#[cfg(... test ...)]`.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let mb = masked.as_bytes();
    let len = mb.len();
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(rel) = masked[i..].find("#[") {
        let attr_start = i + rel;
        let mut j = attr_start + 2;
        let mut depth = 1usize;
        while j < len && depth > 0 {
            match mb[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr_end = j; // one past the closing `]`
        let attr = masked[attr_start + 2..attr_end.saturating_sub(1)].trim();
        i = attr_end;
        if !(attr.starts_with("cfg") && !attr.starts_with("cfg_attr") && has_word(attr, "test")) {
            continue;
        }
        // Skip whitespace and any further attributes, then take the
        // following item's brace block (or its terminating `;`).
        let mut k = attr_end;
        loop {
            while k < len && mb[k].is_ascii_whitespace() {
                k += 1;
            }
            if k + 1 < len && mb[k] == b'#' && mb[k + 1] == b'[' {
                k += 2;
                let mut d = 1usize;
                while k < len && d > 0 {
                    match mb[k] {
                        b'[' => d += 1,
                        b']' => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        let mut paren = 0isize;
        let mut body_open = None;
        while k < len {
            match mb[k] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    body_open = Some(k);
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let end = match body_open {
            Some(open) => {
                let mut d = 1usize;
                let mut m = open + 1;
                while m < len && d > 0 {
                    match mb[m] {
                        b'{' => d += 1,
                        b'}' => d -= 1,
                        _ => {}
                    }
                    m += 1;
                }
                m
            }
            None => k.min(len),
        };
        regions.push((attr_start, end));
        i = attr_end;
    }
    regions
}

fn has_word(haystack: &str, word: &str) -> bool {
    let hb = haystack.as_bytes();
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !(hb[at - 1].is_ascii_alphanumeric() || hb[at - 1] == b'_');
        let after = at + word.len();
        let after_ok =
            after >= hb.len() || !(hb[after].is_ascii_alphanumeric() || hb[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Collects `kex-lint: allow(<pass>)` directives per line from the
/// *original* text (they live in comments, which masking removes).
fn find_allow_directives(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(at) = line.find("kex-lint:") else {
            continue;
        };
        let rest = &line[at..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        if let Some(close) = after.find(')') {
            out.push((idx + 1, after[..close].trim().to_string()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

/// The scanned source tree.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// All loaded files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every `.rs` file under the scan roots relative to `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        for scan in SCAN_ROOTS {
            let dir = root.join(scan);
            if dir.is_dir() {
                walk(&dir, root, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Looks up a file by repo-relative path.
    pub fn get(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Test support: a copy of the workspace with the first occurrence
    /// of `from` in `path` replaced by `to`.
    ///
    /// # Panics
    /// Panics if the file or the needle is absent — a mutation test that
    /// silently mutates nothing would vacuously pass.
    pub fn replace_in_file(&self, path: &str, from: &str, to: &str) -> Workspace {
        let mut files = self.files.clone();
        let file = files
            .iter_mut()
            .find(|f| f.path == path)
            .unwrap_or_else(|| panic!("no such file in workspace: {path}"));
        assert!(
            file.text.contains(from),
            "mutation needle not found in {path}: {from:?}"
        );
        let text = file.text.replacen(from, to, 1);
        *file = SourceFile::new(path, text);
        Workspace { files }
    }

    /// Test support: a copy of the workspace with `extra` appended to
    /// `path`.
    ///
    /// # Panics
    /// Panics if the file is absent.
    pub fn append_to_file(&self, path: &str, extra: &str) -> Workspace {
        let mut files = self.files.clone();
        let file = files
            .iter_mut()
            .find(|f| f.path == path)
            .unwrap_or_else(|| panic!("no such file in workspace: {path}"));
        let text = format!("{}{extra}", file.text);
        *file = SourceFile::new(path, text);
        Workspace { files }
    }
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::new(rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Atomic-site extraction
// ---------------------------------------------------------------------------

/// An atomic call site in the audited native layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the method token (matches `#[track_caller]`).
    pub line: usize,
    /// The atomic method (`load`, `store`, `fetch_add`, ...).
    pub op: String,
    /// The receiver's final field/binding name (`q`, `slots`, ...).
    pub var: String,
    /// `ord::*` constants named in the arguments, in textual order; the
    /// first is the site's primary (success) ordering.
    pub consts: Vec<String>,
}

impl Site {
    /// The `file:line` key the other layers use.
    pub fn key(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

fn is_native_site_file(path: &str) -> bool {
    path.starts_with(NATIVE_PREFIX)
        && path != ORDERING_MODULE
        && !NATIVE_TEST_SUPPORT.contains(&path)
}

/// Files subject to the literal-`Ordering::*` ban: the native site
/// files plus the wait-free and store layers (minus their own constant
/// modules).
fn is_ordering_policy_file(path: &str) -> bool {
    is_native_site_file(path)
        || (path.starts_with(WAITFREE_PREFIX) && path != WAITFREE_ORDERING_MODULE)
        || (path.starts_with(STORE_PREFIX) && path != STORE_ORDERING_MODULE)
}

/// Extracts every non-test atomic call site under
/// `crates/core/src/native/` that names an `ord::*` constant.
pub fn extract_sites(ws: &Workspace) -> Vec<Site> {
    let mut sites = Vec::new();
    for file in &ws.files {
        if !is_native_site_file(&file.path) {
            continue;
        }
        let mb = file.masked.as_bytes();
        let mut i = 0;
        while let Some(rel) = file.masked[i..].find('.') {
            let dot = i + rel;
            i = dot + 1;
            let mut j = dot + 1;
            while j < mb.len() && (mb[j].is_ascii_alphanumeric() || mb[j] == b'_') {
                j += 1;
            }
            let method = &file.masked[dot + 1..j];
            if !ATOMIC_METHODS.contains(&method) || j >= mb.len() || mb[j] != b'(' {
                continue;
            }
            if file.in_test(dot) {
                continue;
            }
            let Some(close) = match_paren(mb, j) else {
                continue;
            };
            let args = &file.masked[j + 1..close];
            let consts = ord_consts_in(args);
            if consts.is_empty() {
                continue; // not an atomic-ordering call (e.g. slice ops)
            }
            sites.push(Site {
                file: file.path.clone(),
                line: file.line_of(dot + 1),
                op: method.to_string(),
                var: receiver_name(mb, dot),
                consts,
            });
            i = close;
        }
    }
    sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    sites
}

fn match_paren(mb: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = open;
    while k < mb.len() {
        match mb[k] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

fn ord_consts_in(args: &str) -> Vec<String> {
    let ab = args.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = args[from..].find("ord::") {
        let at = from + rel;
        let boundary = at == 0
            || !(ab[at - 1].is_ascii_alphanumeric() || ab[at - 1] == b'_' || ab[at - 1] == b':');
        let mut j = at + "ord::".len();
        while j < ab.len() && (ab[j].is_ascii_alphanumeric() || ab[j] == b'_') {
            j += 1;
        }
        if boundary && j > at + "ord::".len() {
            out.push(args[at + "ord::".len()..j].to_string());
        }
        from = j.max(at + 1);
    }
    out
}

/// Walks backwards from the method's `.` over whitespace and `[...]`
/// index groups to the receiver's final identifier.
fn receiver_name(mb: &[u8], dot: usize) -> String {
    let mut i = dot as isize - 1;
    let at = |i: isize| mb[i as usize];
    loop {
        while i >= 0 && at(i).is_ascii_whitespace() {
            i -= 1;
        }
        if i < 0 {
            return "<expr>".to_string();
        }
        if at(i) == b']' {
            let mut depth = 1;
            i -= 1;
            while i >= 0 && depth > 0 {
                match at(i) {
                    b']' => depth += 1,
                    b'[' => depth -= 1,
                    _ => {}
                }
                i -= 1;
            }
            continue;
        }
        if at(i).is_ascii_alphanumeric() || at(i) == b'_' {
            let end = i as usize + 1;
            while i >= 0 && (at(i).is_ascii_alphanumeric() || at(i) == b'_') {
                i -= 1;
            }
            return String::from_utf8_lossy(&mb[(i + 1) as usize..end]).into_owned();
        }
        return "<expr>".to_string();
    }
}

// ---------------------------------------------------------------------------
// Ordering constants (crates/core/src/native/ordering.rs)
// ---------------------------------------------------------------------------

/// The feature-gated constant tables parsed out of `ordering.rs`.
#[derive(Debug, Clone, Default)]
pub struct OrderingConsts {
    /// Constant name → `Ordering` variant in the default build, with
    /// the declaration line.
    pub default_map: BTreeMap<String, (String, usize)>,
    /// Constant name → variant under `--features seqcst`.
    pub seqcst_map: BTreeMap<String, (String, usize)>,
}

impl OrderingConsts {
    /// The variant a constant resolves to under `build`.
    pub fn resolve(&self, name: &str, build: Build) -> Option<&str> {
        let map = match build {
            Build::Default => &self.default_map,
            Build::SeqCst => &self.seqcst_map,
        };
        map.get(name).map(|(v, _)| v.as_str())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CfgGate {
    DefaultOnly,
    SeqcstOnly,
}

/// Parses the constant tables and checks their internal invariants
/// (both branches present, `seqcst` branch collapses everything).
pub fn parse_ordering_consts(file: &SourceFile) -> (OrderingConsts, Vec<Finding>) {
    let mut consts = OrderingConsts::default();
    let mut findings = Vec::new();
    let mut pending: Option<CfgGate> = None;
    let mut offset = 0usize;
    // Original text, not the masked view: the cfg gate names its
    // feature inside a string literal (`feature = "seqcst"`), which
    // masking blanks. Comment lines are skipped explicitly instead.
    for (idx, line) in file.text.lines().enumerate() {
        let lineno = idx + 1;
        let start = offset;
        offset += line.len() + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") || file.in_test(start) {
            continue;
        }
        if trimmed.starts_with("#[") {
            if trimmed.contains("cfg") && trimmed.contains("seqcst") {
                pending = Some(if trimmed.contains("not") {
                    CfgGate::DefaultOnly
                } else {
                    CfgGate::SeqcstOnly
                });
            } else {
                pending = None;
            }
            continue;
        }
        let gate = pending.take();
        let Some(const_at) = trimmed.find("const ") else {
            continue;
        };
        let Some(colon) = trimmed[const_at..].find(':') else {
            continue;
        };
        let name = trimmed[const_at + "const ".len()..const_at + colon].trim();
        let Some(var_at) = trimmed.find("Ordering::") else {
            continue;
        };
        let variant: String = trimmed[var_at + "Ordering::".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if !ORDERING_KEYWORDS.contains(&variant.as_str()) {
            findings.push(finding(
                Pass::Ordering,
                &file.path,
                lineno,
                format!("constant `{name}` resolves to unknown ordering `{variant}`"),
            ));
            continue;
        }
        match gate {
            Some(CfgGate::DefaultOnly) => {
                consts
                    .default_map
                    .insert(name.to_string(), (variant, lineno));
            }
            Some(CfgGate::SeqcstOnly) => {
                consts
                    .seqcst_map
                    .insert(name.to_string(), (variant, lineno));
            }
            None => {
                consts
                    .default_map
                    .insert(name.to_string(), (variant.clone(), lineno));
                consts
                    .seqcst_map
                    .insert(name.to_string(), (variant, lineno));
            }
        }
    }
    for (name, (_, lineno)) in &consts.default_map {
        match consts.seqcst_map.get(name) {
            None => findings.push(finding(
                Pass::Ordering,
                &file.path,
                *lineno,
                format!("constant `{name}` has no `--features seqcst` branch"),
            )),
            Some((v, l)) if v != "SeqCst" => findings.push(finding(
                Pass::Ordering,
                &file.path,
                *l,
                format!("constant `{name}` does not collapse to SeqCst under --features seqcst (resolves to `{v}`)"),
            )),
            Some(_) => {}
        }
    }
    for (name, (_, lineno)) in &consts.seqcst_map {
        if !consts.default_map.contains_key(name) {
            findings.push(finding(
                Pass::Ordering,
                &file.path,
                *lineno,
                format!("constant `{name}` exists only under --features seqcst"),
            ));
        }
    }
    (consts, findings)
}

// ---------------------------------------------------------------------------
// Audit-table rows (docs/MEMORY_ORDERING.md)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct DocRow {
    file: String,
    line: usize,
    keyword: String,
    doc_line: usize,
}

fn parse_doc_rows(doc: &str) -> (Vec<DocRow>, Vec<Finding>) {
    let mut rows = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in doc.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').collect();
        if cells.len() < 5 {
            continue;
        }
        let site_cell = cells[1].trim();
        let Some(site) = site_cell
            .strip_prefix('`')
            .and_then(|s| s.split('`').next())
        else {
            continue;
        };
        let Some((name, lineno)) = site.rsplit_once(':') else {
            continue;
        };
        if !name.ends_with(".rs") {
            continue;
        }
        let Ok(lineno) = lineno.parse::<usize>() else {
            continue;
        };
        let implemented = cells[3].trim();
        let keyword = ORDERING_KEYWORDS
            .iter()
            .filter_map(|k| implemented.find(k).map(|at| (at, *k)))
            .min()
            .map(|(_, k)| k.to_string());
        match keyword {
            Some(keyword) => rows.push(DocRow {
                file: format!("{NATIVE_PREFIX}{name}"),
                line: lineno,
                keyword,
                doc_line: idx + 1,
            }),
            None => findings.push(finding(
                Pass::Ordering,
                "docs/MEMORY_ORDERING.md",
                idx + 1,
                format!(
                    "audit row for `{site}` has no recognizable ordering keyword: {implemented:?}"
                ),
            )),
        }
    }
    (rows, findings)
}

// ---------------------------------------------------------------------------
// Manifest (docs/ordering_sites.json)
// ---------------------------------------------------------------------------

/// One committed manifest entry: a source site plus its cross-layer
/// links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Repo-relative path.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Atomic method.
    pub op: String,
    /// Receiver name.
    pub var: String,
    /// `ord::*` constants at the site.
    pub consts: Vec<String>,
    /// The default-build ordering the primary constant resolves to.
    pub ordering: String,
    /// The site's ordering role (one of [`ROLES`]), derived by
    /// [`derive_role`] at manifest-generation time.
    pub role: String,
    /// IR variable this receiver models, if the file has an IR
    /// counterpart.
    pub ir: Option<String>,
    /// Exact runtime-registry location (`file:line`) if the committed
    /// `BENCH_native.json` run drove this site; `null` for cold paths
    /// the benchmark workload never exercised.
    pub bench: Option<String>,
}

impl ManifestEntry {
    fn key(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Parses `docs/ordering_sites.json`.
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestEntry>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != MANIFEST_SCHEMA {
        return Err(format!(
            "unexpected manifest schema {schema:?} (want {MANIFEST_SCHEMA:?})"
        ));
    }
    let sites = doc
        .get("sites")
        .and_then(Json::as_arr)
        .ok_or("manifest has no `sites` array")?;
    let mut out = Vec::new();
    for (i, s) in sites.iter().enumerate() {
        let field = |k: &str| -> Result<String, String> {
            s.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("site #{i}: missing string field `{k}`"))
        };
        let opt =
            |k: &str| -> Option<String> { s.get(k).and_then(Json::as_str).map(str::to_string) };
        out.push(ManifestEntry {
            file: field("file")?,
            line: s
                .get("line")
                .and_then(Json::as_u64)
                .ok_or(format!("site #{i}: missing `line`"))? as usize,
            op: field("op")?,
            var: field("var")?,
            consts: s
                .get("consts")
                .and_then(Json::as_arr)
                .ok_or(format!("site #{i}: missing `consts`"))?
                .iter()
                .filter_map(|c| c.as_str().map(str::to_string))
                .collect(),
            ordering: field("ordering")?,
            role: field("role")?,
            ir: opt("ir"),
            bench: opt("bench"),
        });
    }
    Ok(out)
}

/// Regenerates the manifest text from the current sources (and the
/// committed `BENCH_native.json`, for the `bench` links).
pub fn generate_manifest(ws: &Workspace, bench: Option<&str>) -> Result<String, String> {
    let ordering_file = ws
        .get(ORDERING_MODULE)
        .ok_or_else(|| format!("{ORDERING_MODULE} not found in workspace"))?;
    let (consts, findings) = parse_ordering_consts(ordering_file);
    if let Some(f) = findings.first() {
        return Err(format!("cannot generate manifest: {f}"));
    }
    let bench_locs = match bench {
        Some(text) => parse_bench_sites(text)?.locations,
        None => BTreeSet::new(),
    };
    let sites = extract_sites(ws);
    let mut docs = Vec::new();
    for site in &sites {
        let primary = site
            .consts
            .first()
            .ok_or_else(|| format!("{}: site has no ord:: constant", site.key()))?;
        let ordering = consts
            .resolve(primary, Build::Default)
            .ok_or_else(|| format!("{}: unknown constant ord::{primary}", site.key()))?;
        let short = site.file.trim_start_matches(NATIVE_PREFIX);
        let ir = IR_MAP
            .iter()
            .find(|(f, _, _)| *f == short)
            .and_then(|(_, _, aliases)| {
                aliases
                    .iter()
                    .find(|(v, _)| *v == site.var)
                    .map(|(_, ir)| *ir)
            });
        let key = site.key();
        docs.push(Json::obj(vec![
            ("file", site.file.as_str().into()),
            ("line", site.line.into()),
            ("op", site.op.as_str().into()),
            ("var", site.var.as_str().into()),
            (
                "consts",
                Json::arr(site.consts.iter().map(|c| c.as_str().into()).collect()),
            ),
            ("ordering", ordering.into()),
            (
                "role",
                derive_role(&site.file, &site.op, &site.var, ordering).into(),
            ),
            ("ir", ir.map_or(Json::Null, Into::into)),
            (
                "bench",
                if bench_locs.contains(&key) {
                    key.as_str().into()
                } else {
                    Json::Null
                },
            ),
        ]));
    }
    let doc = Json::obj(vec![
        ("schema", MANIFEST_SCHEMA.into()),
        (
            "note",
            "Committed inventory of every audited atomic site in crates/core/src/native/. \
             Checked both ways by kex-lint against the sources, docs/MEMORY_ORDERING.md, \
             the kex-obs runtime site registry (via BENCH_native.json) and the kex-analyze IR. \
             Schema v2 adds the per-site ordering `role` consumed by the obligation pass."
                .into(),
        ),
        (
            "regenerate",
            "cargo run -p kex-lint --bin lint -- --write-manifest".into(),
        ),
        ("sites", Json::arr(docs)),
    ]);
    Ok(doc.to_string_pretty())
}

// ---------------------------------------------------------------------------
// BENCH_native.json (runtime site registry export)
// ---------------------------------------------------------------------------

/// The runtime-observed side of the drift audit.
#[derive(Debug, Clone, Default)]
pub struct BenchSites {
    /// Union of native `file:line` locations across all runs.
    pub locations: BTreeSet<String>,
    /// Algorithms whose site inventory overflowed `SITE_CAP` (the audit
    /// cannot certify completeness for them).
    pub truncated: Vec<String>,
    /// Algorithm entries predating the per-site export.
    pub missing_sites: Vec<String>,
}

/// Parses the per-site inventory out of a `BENCH_native.json` document.
pub fn parse_bench_sites(text: &str) -> Result<BenchSites, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unexpected BENCH_native.json schema {schema:?} (want {BENCH_SCHEMA:?})"
        ));
    }
    let mut out = BenchSites::default();
    let configs = doc
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or("BENCH_native.json has no `configs`")?;
    for config in configs {
        for algo in config
            .get("algorithms")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            let name = algo
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("<unnamed>")
                .to_string();
            if algo
                .get("sites_truncated")
                .map(|v| v == &Json::Bool(true))
                .unwrap_or(false)
            {
                out.truncated.push(name.clone());
            }
            let Some(sites) = algo.get("sites").and_then(Json::as_arr) else {
                out.missing_sites.push(name);
                continue;
            };
            for site in sites {
                let Some(loc) = site.get("location").and_then(Json::as_str) else {
                    continue;
                };
                if loc == "<overflow>" {
                    out.truncated.push(name.clone());
                    continue;
                }
                // Normalize to a repo-relative path: the registry
                // records paths as the compiler saw them.
                let rel = loc.find("crates/").map_or(loc, |at| &loc[at..]);
                out.locations.insert(rel.to_string());
            }
        }
    }
    out.truncated.dedup();
    Ok(out)
}

// ---------------------------------------------------------------------------
// The five passes
// ---------------------------------------------------------------------------

/// Pass 1: ordering policy. Literal `Ordering::*` bans, constant-table
/// invariants, and two-way reconciliation of the source inventory
/// against the manifest and the audit table.
pub fn ordering_pass(
    ws: &Workspace,
    manifest: Option<&str>,
    doc: Option<&str>,
    build: Build,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // 1a. No literal Ordering:: outside the ordering-constant modules
    // (test code exempt). Covers the native hot paths and the
    // wait-free and store layers.
    for file in &ws.files {
        if !is_ordering_policy_file(&file.path) {
            continue;
        }
        let hint = if file.path.starts_with(WAITFREE_PREFIX) {
            "literal `Ordering::*` in the audited wait-free layer — name the constant from `waitfree::ordering` instead"
        } else if file.path.starts_with(STORE_PREFIX) {
            "literal `Ordering::*` in the audited store layer — name the constant from `kex_store`'s `ordering` module instead"
        } else {
            "literal `Ordering::*` in the audited native layer — name an `ord::*` constant from `native::ordering` instead"
        };
        let mut i = 0;
        while let Some(rel) = file.masked[i..].find("Ordering::") {
            let at = i + rel;
            i = at + 1;
            if file.in_test(at) {
                continue;
            }
            let line = file.line_of(at);
            if file.allowed(line, Pass::Ordering) {
                continue;
            }
            findings.push(finding(Pass::Ordering, &file.path, line, hint));
        }
    }

    // 1b. Constant-table invariants.
    let Some(ordering_file) = ws.get(ORDERING_MODULE) else {
        findings.push(finding(
            Pass::Ordering,
            ORDERING_MODULE,
            0,
            "ordering-constant module not found",
        ));
        return findings;
    };
    let (consts, mut const_findings) = parse_ordering_consts(ordering_file);
    findings.append(&mut const_findings);

    let sites = extract_sites(ws);

    // 1c. Every constant a site names must exist; under the seqcst
    // build, every named constant must actively resolve to SeqCst.
    for site in &sites {
        for c in &site.consts {
            match consts.resolve(c, build) {
                None => findings.push(finding(
                    Pass::Ordering,
                    &site.file,
                    site.line,
                    format!("site names unknown constant `ord::{c}`"),
                )),
                Some(v) if build == Build::SeqCst && v != "SeqCst" => {
                    findings.push(finding(
                        Pass::Ordering,
                        &site.file,
                        site.line,
                        format!(
                            "under --features seqcst this site's `ord::{c}` resolves to `{v}`, not SeqCst"
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }

    // 1d. Manifest reconciliation, both directions.
    match manifest.map(parse_manifest) {
        None => findings.push(finding(
            Pass::Ordering,
            "docs/ordering_sites.json",
            0,
            "site manifest missing — generate it with `lint --write-manifest`",
        )),
        Some(Err(e)) => findings.push(finding(
            Pass::Ordering,
            "docs/ordering_sites.json",
            0,
            format!("unreadable site manifest: {e}"),
        )),
        Some(Ok(entries)) => {
            let by_key: BTreeMap<String, &ManifestEntry> =
                entries.iter().map(|e| (e.key(), e)).collect();
            let site_keys: BTreeSet<String> = sites.iter().map(Site::key).collect();
            for site in &sites {
                match by_key.get(&site.key()) {
                    None => findings.push(finding(
                        Pass::Ordering,
                        &site.file,
                        site.line,
                        "atomic site not in docs/ordering_sites.json — regenerate with `lint --write-manifest`",
                    )),
                    Some(entry) => {
                        if entry.op != site.op || entry.var != site.var || entry.consts != site.consts
                        {
                            findings.push(finding(
                                Pass::Ordering,
                                &site.file,
                                site.line,
                                format!(
                                    "manifest drift: source is `{}.{}({})` but manifest records `{}.{}({})`",
                                    site.var,
                                    site.op,
                                    site.consts.join(", "),
                                    entry.var,
                                    entry.op,
                                    entry.consts.join(", "),
                                ),
                            ));
                        } else if let Some(primary) = site.consts.first() {
                            let resolved = consts.resolve(primary, Build::Default).unwrap_or("?");
                            if entry.ordering != resolved {
                                findings.push(finding(
                                    Pass::Ordering,
                                    &site.file,
                                    site.line,
                                    format!(
                                        "manifest declares `{}` but `ord::{primary}` resolves to `{resolved}` in the default build",
                                        entry.ordering
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            for entry in &entries {
                if !site_keys.contains(&entry.key()) {
                    findings.push(finding(
                        Pass::Ordering,
                        &entry.file,
                        entry.line,
                        "manifest records an atomic site that no longer exists in the source — regenerate with `lint --write-manifest`",
                    ));
                }
            }
        }
    }

    // 1e. Audit-table reconciliation, both directions. The table
    // documents the default build, so this check is build-independent.
    match doc {
        None => findings.push(finding(
            Pass::Ordering,
            "docs/MEMORY_ORDERING.md",
            0,
            "memory-ordering audit table missing",
        )),
        Some(doc) => {
            let (rows, mut row_findings) = parse_doc_rows(doc);
            findings.append(&mut row_findings);
            let by_key: BTreeMap<String, &DocRow> = rows
                .iter()
                .map(|r| (format!("{}:{}", r.file, r.line), r))
                .collect();
            let site_keys: BTreeSet<String> = sites.iter().map(Site::key).collect();
            for site in &sites {
                match by_key.get(&site.key()) {
                    None => findings.push(finding(
                        Pass::Ordering,
                        &site.file,
                        site.line,
                        "no docs/MEMORY_ORDERING.md audit row for this atomic site",
                    )),
                    Some(row) => {
                        let primary = site.consts.first().map(String::as_str).unwrap_or("?");
                        let resolved = consts.resolve(primary, Build::Default).unwrap_or("?");
                        if row.keyword != resolved {
                            findings.push(finding(
                                Pass::Ordering,
                                &site.file,
                                site.line,
                                format!(
                                    "audit table (docs/MEMORY_ORDERING.md:{}) says `{}` but `ord::{primary}` resolves to `{resolved}`",
                                    row.doc_line, row.keyword
                                ),
                            ));
                        }
                    }
                }
            }
            for row in &rows {
                let key = format!("{}:{}", row.file, row.line);
                if !site_keys.contains(&key) {
                    findings.push(finding(
                        Pass::Ordering,
                        &row.file,
                        row.line,
                        format!(
                            "docs/MEMORY_ORDERING.md:{} documents an atomic site that does not exist in the source",
                            row.doc_line
                        ),
                    ));
                }
            }
        }
    }

    findings
}

/// Pass 2: facade-bypass detector.
pub fn facade_pass(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if FACADE_ALLOW.iter().any(|(p, _)| *p == file.path) {
            continue;
        }
        for pattern in FACADE_PATTERNS {
            let mut i = 0;
            while let Some(rel) = file.masked[i..].find(pattern) {
                let at = i + rel;
                i = at + 1;
                let line = file.line_of(at);
                if file.allowed(line, Pass::Facade) {
                    continue;
                }
                findings.push(finding(
                    Pass::Facade,
                    &file.path,
                    line,
                    format!(
                        "direct `{pattern}` bypasses the `kex_util::sync` facade (loom/obs builds cannot swap this site)"
                    ),
                ));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Pass 3: spin-loop lint. A native busy-wait (`while` whose condition
/// performs an atomic load) must back off through the facade.
pub fn spin_pass(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if !is_native_site_file(&file.path) {
            continue;
        }
        let mb = file.masked.as_bytes();
        let mut i = 0;
        while let Some(rel) = file.masked[i..].find("while") {
            let at = i + rel;
            i = at + "while".len();
            let before_ok = at == 0 || !(mb[at - 1].is_ascii_alphanumeric() || mb[at - 1] == b'_');
            let after = at + "while".len();
            let after_ok = after < mb.len() && mb[after].is_ascii_whitespace();
            if !before_ok || !after_ok || file.in_test(at) {
                continue;
            }
            // Condition runs to the body's `{` at bracket depth 0.
            let mut k = after;
            let mut depth = 0isize;
            let mut body_open = None;
            while k < mb.len() {
                match mb[k] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => {
                        body_open = Some(k);
                        break;
                    }
                    b';' if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let Some(open) = body_open else { continue };
            let cond = &file.masked[after..open];
            if !cond.contains(".load(") {
                continue;
            }
            let mut d = 1usize;
            let mut m = open + 1;
            while m < mb.len() && d > 0 {
                match mb[m] {
                    b'{' => d += 1,
                    b'}' => d -= 1,
                    _ => {}
                }
                m += 1;
            }
            let body = &file.masked[open + 1..m.saturating_sub(1)];
            let line = file.line_of(at);
            let backs_off = ["snooze", "spin_loop", "yield_now", "park"]
                .iter()
                .any(|w| body.contains(w) || cond.contains(w));
            // A directive anywhere in the loop suppresses it: rustfmt
            // relocates a comment trailing the `while … {` line into the
            // body, so the binding must cover the whole loop extent.
            let body_end_line = file.line_of(m.saturating_sub(1).max(open));
            let allowed = (line..=body_end_line).any(|l| file.allowed(l, Pass::Spin));
            if backs_off || allowed {
                continue;
            }
            findings.push(finding(
                Pass::Spin,
                &file.path,
                line,
                "busy-wait loop without facade backoff — spin through `Backoff::snooze` (or annotate `// kex-lint: allow(spin): <why>`)",
            ));
        }
    }
    findings
}

/// Pass 4: cross-layer drift audit — manifest vs runtime site registry
/// vs analyzer IR.
pub fn drift_pass(
    ws: &Workspace,
    manifest: Option<&str>,
    bench: Option<&str>,
    cfg: &Config,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let entries = match manifest.map(parse_manifest) {
        Some(Ok(entries)) => entries,
        // The ordering pass already reports a missing/unreadable
        // manifest; without one there is nothing to reconcile.
        _ => return findings,
    };
    let sites = extract_sites(ws);
    let site_keys: BTreeSet<String> = sites.iter().map(Site::key).collect();

    // 4a. Runtime registry (BENCH_native.json).
    let bench_sites = match bench.map(parse_bench_sites) {
        None => {
            findings.push(finding(
                Pass::Drift,
                "BENCH_native.json",
                0,
                "runtime site inventory missing — run the native_obs benchmark to regenerate it",
            ));
            None
        }
        Some(Err(e)) => {
            findings.push(finding(
                Pass::Drift,
                "BENCH_native.json",
                0,
                format!("unreadable runtime site inventory: {e}"),
            ));
            None
        }
        Some(Ok(b)) => Some(b),
    };
    if let Some(bench_sites) = &bench_sites {
        for name in &bench_sites.truncated {
            findings.push(finding(
                Pass::Drift,
                "BENCH_native.json",
                0,
                format!(
                    "runtime site registry overflowed SITE_CAP for `{name}` — inventory truncated, drift audit cannot certify coverage"
                ),
            ));
        }
        for name in &bench_sites.missing_sites {
            findings.push(finding(
                Pass::Drift,
                "BENCH_native.json",
                0,
                format!(
                    "algorithm `{name}` entry predates the per-site export — regenerate BENCH_native.json"
                ),
            ));
        }
        for loc in &bench_sites.locations {
            if !loc.starts_with(NATIVE_PREFIX) {
                continue;
            }
            if !site_keys.contains(loc) {
                let (file, line) = loc
                    .rsplit_once(':')
                    .map(|(f, l)| (f.to_string(), l.parse().unwrap_or(0)))
                    .unwrap_or((loc.clone(), 0));
                findings.push(finding(
                    Pass::Drift,
                    &file,
                    line,
                    "runtime registry recorded an atomic site here, but the source inventory has none — stale BENCH_native.json or an unaudited site",
                ));
            }
        }
        for entry in &entries {
            match &entry.bench {
                Some(loc) if !bench_sites.locations.contains(loc) => {
                    findings.push(finding(
                        Pass::Drift,
                        &entry.file,
                        entry.line,
                        "manifest expects runtime traffic at this site but BENCH_native.json no longer records it — site deleted from the registry, or stale artifacts",
                    ));
                }
                None if bench_sites.locations.contains(&entry.key()) => {
                    findings.push(finding(
                        Pass::Drift,
                        &entry.file,
                        entry.line,
                        "runtime registry now records this site but the manifest says it is benchmark-cold — regenerate the manifest",
                    ));
                }
                _ => {}
            }
        }
    }

    // 4b. Analyzer IR: the receiver each manifest entry claims to model
    // must exist among that algorithm's IR variables.
    for entry in &entries {
        let Some(ir) = &entry.ir else { continue };
        let short = entry.file.trim_start_matches(NATIVE_PREFIX);
        let Some((_, algo, _)) = IR_MAP.iter().find(|(f, _, _)| *f == short) else {
            findings.push(finding(
                Pass::Drift,
                &entry.file,
                entry.line,
                format!("manifest claims IR variable `{ir}` but `{short}` has no IR counterpart"),
            ));
            continue;
        };
        let basenames = kex_analyze::ir_var_basenames(*algo, cfg);
        if !basenames.contains(ir) {
            findings.push(finding(
                Pass::Drift,
                &entry.file,
                entry.line,
                format!(
                    "manifest maps receiver `{}` to IR variable `{ir}`, but the {algo:?} protocol IR declares no such variable (has: {})",
                    entry.var,
                    basenames.iter().cloned().collect::<Vec<_>>().join(", "),
                ),
            ));
        }
    }

    findings
}

/// Pass 5: ordering-obligation checker.
///
/// Validates each manifest site's claimed ordering against two
/// independent derivations:
///
/// * the **role policy** — the site's v2 `role` must match what
///   [`derive_role`] re-derives from its (op, ordering) shape (or the
///   pinned exception list), and the claimed ordering must be
///   admissible for that role;
/// * the **IR obligations** — for sites linked to an analyzer-IR
///   variable, the minimum ordering `kex-analyze` derives from the
///   statement graph (publish edges, Dekker/handshake pairs, spin
///   reads). A manifest row claiming `Relaxed` — or anything weaker
///   than the derived minimum — on an obligated site is a hard error.
pub fn obligation_pass(manifest: Option<&str>, cfg: &Config) -> Vec<Finding> {
    use kex_analyze::obligations::{
        derive_obligations, kind_for_op, kind_name, obligation_for, Obligation, Req,
    };

    let mut findings = Vec::new();
    let entries = match manifest.map(parse_manifest) {
        Some(Ok(entries)) => entries,
        // The ordering pass already reports a missing or unreadable
        // manifest; without one there is nothing to check.
        _ => return findings,
    };

    let mut derived: BTreeMap<String, Vec<Obligation>> = BTreeMap::new();
    for entry in &entries {
        // 5a. Role vocabulary.
        if !ROLES.contains(&entry.role.as_str()) {
            findings.push(finding(
                Pass::Obligation,
                &entry.file,
                entry.line,
                format!(
                    "manifest role `{}` is not one of {}",
                    entry.role,
                    ROLES.join("/")
                ),
            ));
            continue;
        }

        // 5b. Role consistency: the committed role must still be what
        // the (op, ordering) shape derives.
        let rederived = derive_role(&entry.file, &entry.op, &entry.var, &entry.ordering);
        if rederived != entry.role {
            findings.push(finding(
                Pass::Obligation,
                &entry.file,
                entry.line,
                format!(
                    "manifest role `{}` does not match the role `{rederived}` derived for a {} `{}` — regenerate with `lint --write-manifest`",
                    entry.role, entry.ordering, entry.op,
                ),
            ));
        }

        // 5c. Role policy: op shape and claimed ordering must be
        // admissible for the committed role.
        if let Some((kind, admissible)) = role_policy(&entry.role) {
            if kind != "any" && op_kind(&entry.op) != kind {
                findings.push(finding(
                    Pass::Obligation,
                    &entry.file,
                    entry.line,
                    format!(
                        "role `{}` is a {kind} role but the site's op is `{}`",
                        entry.role, entry.op,
                    ),
                ));
            }
            if !admissible.contains(&entry.ordering.as_str()) {
                findings.push(finding(
                    Pass::Obligation,
                    &entry.file,
                    entry.line,
                    format!(
                        "role `{}` admits only {} but the site claims `{}`",
                        entry.role,
                        admissible.join("/"),
                        entry.ordering,
                    ),
                ));
            }
        }

        // 5d. IR cross-check: the claimed ordering must satisfy the
        // obligation the analyzer derives for the linked IR variable.
        let Some(ir) = &entry.ir else { continue };
        let short = entry.file.trim_start_matches(NATIVE_PREFIX);
        let Some((_, algo, _)) = IR_MAP.iter().find(|(f, _, _)| *f == short) else {
            continue; // drift pass 4b reports ir-on-unmapped-file
        };
        if !derived.contains_key(short) {
            let obls = match derive_obligations(*algo, cfg) {
                Ok(obls) => obls,
                Err(e) => {
                    findings.push(finding(
                        Pass::Obligation,
                        &entry.file,
                        0,
                        format!("cannot derive ordering obligations for {algo:?}: {e}"),
                    ));
                    Vec::new()
                }
            };
            derived.insert(short.to_string(), obls);
        }
        let Some(obl) = obligation_for(&derived[short], ir, kind_for_op(&entry.op)) else {
            continue;
        };
        let Some(claimed) = Req::parse(&entry.ordering) else {
            findings.push(finding(
                Pass::Obligation,
                &entry.file,
                entry.line,
                format!("unparseable manifest ordering `{}`", entry.ordering),
            ));
            continue;
        };
        if !claimed.satisfies(obl.req) {
            let hard = if claimed == Req::Relaxed {
                " — a Relaxed claim on an obligated site is a hard error"
            } else {
                ""
            };
            findings.push(finding(
                Pass::Obligation,
                &entry.file,
                entry.line,
                format!(
                    "IR obligation violated: the {} of `{ir}` needs at least `{}` ({}), but the manifest claims `{}`{hard}",
                    kind_name(obl.kind),
                    obl.req.keyword(),
                    obl.why,
                    entry.ordering,
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Orchestration & reports
// ---------------------------------------------------------------------------

/// The companion artifacts the cross-checks read.
#[derive(Debug, Clone, Default)]
pub struct Inputs {
    /// `docs/ordering_sites.json` text.
    pub manifest: Option<String>,
    /// `docs/MEMORY_ORDERING.md` text.
    pub doc: Option<String>,
    /// `BENCH_native.json` text.
    pub bench: Option<String>,
}

impl Inputs {
    /// Reads the three artifacts from a repo root (missing files become
    /// `None`, which the passes report as findings).
    pub fn load(root: &Path) -> Inputs {
        let read = |p: &str| fs::read_to_string(root.join(p)).ok();
        Inputs {
            manifest: read("docs/ordering_sites.json"),
            doc: read("docs/MEMORY_ORDERING.md"),
            bench: read("BENCH_native.json"),
        }
    }
}

/// A full audit run: all five passes plus scan statistics.
#[derive(Debug, Clone)]
pub struct Report {
    /// The ordering flavour audited.
    pub build: Build,
    /// Files scanned.
    pub files: usize,
    /// Atomic sites in the inventory.
    pub sites: usize,
    /// All findings, ordered by (pass, file, line).
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when no pass fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings from one pass.
    pub fn by_pass(&self, pass: Pass) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.pass == pass)
    }
}

/// Runs every pass over a loaded workspace.
pub fn audit(ws: &Workspace, inputs: &Inputs, build: Build, cfg: &Config) -> Report {
    let mut findings = ordering_pass(ws, inputs.manifest.as_deref(), inputs.doc.as_deref(), build);
    findings.extend(facade_pass(ws));
    findings.extend(spin_pass(ws));
    findings.extend(drift_pass(
        ws,
        inputs.manifest.as_deref(),
        inputs.bench.as_deref(),
        cfg,
    ));
    findings.extend(obligation_pass(inputs.manifest.as_deref(), cfg));
    findings.sort_by(|a, b| (a.pass, &a.file, a.line).cmp(&(b.pass, &b.file, b.line)));
    Report {
        build,
        files: ws.files.len(),
        sites: extract_sites(ws).len(),
        findings,
    }
}

/// Human-readable report.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kex-lint: source conformance audit (build: {})\n\n",
        report.build.name()
    ));
    out.push_str(&format!("  files scanned  {:>4}\n", report.files));
    out.push_str(&format!("  atomic sites   {:>4}\n", report.sites));
    out.push_str(&format!("  findings       {:>4}\n", report.findings.len()));
    if report.clean() {
        out.push_str("\nclean: sources, manifest, audit table, runtime registry and IR agree\n");
    } else {
        out.push('\n');
        for f in &report.findings {
            out.push_str(&format!("{f}\n"));
        }
    }
    out
}

/// JSON report (schema [`FINDINGS_SCHEMA`]).
pub fn render_json(report: &Report) -> String {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("pass", f.pass.name().into()),
                ("file", f.file.as_str().into()),
                ("line", f.line.into()),
                ("message", f.message.as_str().into()),
            ])
        })
        .collect();
    let counts: Vec<(&str, Json)> = [
        Pass::Ordering,
        Pass::Facade,
        Pass::Spin,
        Pass::Drift,
        Pass::Obligation,
    ]
    .iter()
    .map(|p| (p.name(), Json::U64(report.by_pass(*p).count() as u64)))
    .collect();
    Json::obj(vec![
        ("schema", FINDINGS_SCHEMA.into()),
        ("build", report.build.name().into()),
        ("files_scanned", report.files.into()),
        ("atomic_sites", report.sites.into()),
        ("clean", report.clean().into()),
        ("counts", Json::obj(counts)),
        ("findings", Json::arr(findings)),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_is_offset_preserving_and_strips_prose() {
        let src = "let a = \"x.load(Ordering::SeqCst)\"; // std::sync::atomic\n\
                   let c = 'x'; let q = '\\''; let n = '\\n';\n\
                   /* outer /* nested Ordering::Acquire */ still comment */\n\
                   let s: &'static str = r#\"std::thread::spawn\"#;\n\
                   let done = 1;\n";
        let m = mask_source(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.lines().count(), src.lines().count());
        for banned in [
            "Ordering",
            "std::sync::atomic",
            "std::thread::spawn",
            "nested",
        ] {
            assert!(!m.contains(banned), "{banned:?} survived masking:\n{m}");
        }
        assert!(m.contains("let a"));
        assert!(m.contains("&'static str"), "lifetimes must not be eaten");
        assert!(m.contains("let done = 1;"), "code after literals intact");
    }

    #[test]
    fn test_regions_cover_gated_items_only() {
        let src = "fn hot() { x.load(ord::ACQUIRE); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.load(ord::SEQ_CST); }\n\
                   }\n\
                   fn also_hot() { z.load(ord::SEQ_CST); }\n";
        let f = SourceFile::new("t.rs", src);
        assert!(!f.in_test(src.find("x.load").unwrap()));
        assert!(f.in_test(src.find("y.load").unwrap()));
        assert!(!f.in_test(src.find("z.load").unwrap()));
    }

    #[test]
    fn site_extraction_walks_receivers_and_orderings() {
        let src = "fn f(&self) {\n\
                   \x20   self.slots[self.pid].r[next].fetch_add(1, ord::SEQ_CST);\n\
                   \x20   self\n\
                   \x20       .q\n\
                   \x20       .compare_exchange(a, b, ord::ACQ_REL, ord::ACQUIRE)\n\
                   \x20       .ok();\n\
                   \x20   plain.swap(1, 2);\n\
                   }\n";
        let ws = Workspace {
            files: vec![SourceFile::new("crates/core/src/native/x.rs", src)],
        };
        let sites = extract_sites(&ws);
        assert_eq!(sites.len(), 2, "non-atomic swap must not be a site");
        assert_eq!(
            (sites[0].var.as_str(), sites[0].op.as_str(), sites[0].line),
            ("r", "fetch_add", 2)
        );
        assert_eq!(sites[0].consts, ["SEQ_CST"]);
        assert_eq!(
            (sites[1].var.as_str(), sites[1].op.as_str(), sites[1].line),
            ("q", "compare_exchange", 5),
            "multi-line receivers anchor to the method-token line (track_caller's view)"
        );
        assert_eq!(sites[1].consts, ["ACQ_REL", "ACQUIRE"]);
    }

    #[test]
    fn allow_directives_bind_to_their_line() {
        let src = "fn f() {\n\
                   \x20   while x.load(ord::SEQ_CST) != 0 { // kex-lint: allow(spin): bounded scan\n\
                   \x20   }\n\
                   \x20   while y.load(ord::SEQ_CST) != 0 {\n\
                   \x20   }\n\
                   }\n";
        let ws = Workspace {
            files: vec![SourceFile::new("crates/core/src/native/x.rs", src)],
        };
        let findings = spin_pass(&ws);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        let f = &ws.files[0];
        assert!(f.allowed(2, Pass::Spin));
        assert!(!f.allowed(2, Pass::Facade), "directives are per-pass");
    }

    #[test]
    fn spin_pass_accepts_facade_backoff() {
        let src = "fn f() {\n\
                   \x20   let backoff = Backoff::new();\n\
                   \x20   while x.load(ord::ACQUIRE) == p {\n\
                   \x20       backoff.snooze();\n\
                   \x20   }\n\
                   \x20   for i in 0..n {}\n\
                   }\n";
        let ws = Workspace {
            files: vec![SourceFile::new("crates/core/src/native/x.rs", src)],
        };
        assert!(spin_pass(&ws).is_empty());
    }
}

//! The pinned expected-findings matrix.
//!
//! Two halves:
//!
//! * **clean baseline** — the real workspace, with its committed
//!   manifest, audit table and benchmark artifacts, produces zero
//!   findings in both ordering flavours, and the committed manifest is
//!   byte-identical to what `--write-manifest` would regenerate.
//! * **mutation matrix** — for each lint pass, a surgical mutation of a
//!   source file or companion artifact must produce a finding naming
//!   the exact file and line. This proves every pass actually fires;
//!   without it a refactor could quietly turn the whole lint into a
//!   no-op that still exits 0.
//!
//! Mutations are applied to in-memory copies ([`Workspace::replace_in_file`]
//! and friends); the checkout is never touched.

use std::path::{Path, PathBuf};

use kex_analyze::Config;
use kex_lint::{
    audit, drift_pass, facade_pass, generate_manifest, obligation_pass, ordering_pass,
    parse_manifest, spin_pass, Build, Finding, Inputs, Pass, Workspace, MANIFEST_SCHEMA,
};
use kex_obs::json::{self, Json};

const FIG2: &str = "crates/core/src/native/fig2.rs";
const ORDERING: &str = "crates/core/src/native/ordering.rs";

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn setup() -> (Workspace, Inputs) {
    let root = root();
    (
        Workspace::load(&root).expect("scan workspace"),
        Inputs::load(&root),
    )
}

fn line_of(ws: &Workspace, path: &str, needle: &str) -> usize {
    ws.get(path)
        .unwrap_or_else(|| panic!("no {path}"))
        .text
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("{needle:?} not found in {path}"))
        + 1
}

#[track_caller]
fn assert_finding(findings: &[Finding], pass: Pass, file: &str, line: usize, msg_part: &str) {
    assert!(
        findings.iter().any(|f| f.pass == pass
            && f.file == file
            && f.line == line
            && f.message.contains(msg_part)),
        "expected [{pass}] {file}:{line} containing {msg_part:?}; got:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
}

// ---------------------------------------------------------------------------
// Clean baseline
// ---------------------------------------------------------------------------

#[test]
fn repo_is_clean_in_both_builds() {
    let (ws, inputs) = setup();
    for build in [Build::Default, Build::SeqCst] {
        let report = audit(&ws, &inputs, build, &Config::default());
        assert!(
            report.clean(),
            "expected a clean {} audit; got:\n{}",
            build.name(),
            report
                .findings
                .iter()
                .map(|f| format!("  {f}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
        assert!(
            report.sites >= 60,
            "site inventory collapsed: {}",
            report.sites
        );
    }
}

#[test]
fn committed_manifest_is_fresh() {
    let (ws, inputs) = setup();
    let regenerated = generate_manifest(&ws, inputs.bench.as_deref()).expect("generate");
    assert!(
        regenerated.contains(&format!("\"schema\": \"{MANIFEST_SCHEMA}\"")),
        "regenerated manifest must carry the v2 schema"
    );
    assert_eq!(
        inputs.manifest.as_deref(),
        Some(regenerated.as_str()),
        "docs/ordering_sites.json is stale — rerun `cargo run -p kex-lint --bin lint -- --write-manifest`",
    );
}

// ---------------------------------------------------------------------------
// Ordering-policy mutations
// ---------------------------------------------------------------------------

#[test]
fn flipped_site_constant_is_caught() {
    let (ws, inputs) = setup();
    // Same line, same length: only the ordering constant changes.
    let mutated = ws.replace_in_file(
        FIG2,
        "self.q.load(ord::ACQUIRE) == p",
        "self.q.load(ord::SEQ_CST) == p",
    );
    let line = line_of(&mutated, FIG2, "self.q.load(ord::SEQ_CST)");
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    assert_finding(&findings, Pass::Ordering, FIG2, line, "manifest drift");
    assert_finding(&findings, Pass::Ordering, FIG2, line, "audit table");
}

#[test]
fn flipped_constant_definition_is_caught_at_every_site() {
    let (ws, inputs) = setup();
    let mutated = ws.replace_in_file(
        ORDERING,
        "pub(crate) const ACQUIRE: Ordering = Ordering::Acquire;",
        "pub(crate) const ACQUIRE: Ordering = Ordering::Relaxed;",
    );
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    let line = line_of(&ws, FIG2, "self.q.load(ord::ACQUIRE)");
    assert_finding(
        &findings,
        Pass::Ordering,
        FIG2,
        line,
        "resolves to `Relaxed`",
    );
    // Every ACQUIRE site drifts, not just fig2's spin.
    assert!(
        findings.iter().filter(|f| f.pass == Pass::Ordering).count() >= 8,
        "a constant-definition flip must fan out to all its sites: {findings:?}"
    );
}

#[test]
fn literal_ordering_in_native_code_is_caught() {
    let (ws, inputs) = setup();
    let mutated = ws.replace_in_file(
        FIG2,
        "self.q.load(ord::ACQUIRE)",
        "self.q.load(Ordering::Acquire)",
    );
    let line = line_of(&mutated, FIG2, "Ordering::Acquire)");
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    assert_finding(
        &findings,
        Pass::Ordering,
        FIG2,
        line,
        "literal `Ordering::*`",
    );
}

#[test]
fn broken_seqcst_collapse_is_caught() {
    let (ws, inputs) = setup();
    let mutated = ws.replace_in_file(
        ORDERING,
        "const RELEASE: Ordering = Ordering::SeqCst;",
        "const RELEASE: Ordering = Ordering::Release;",
    );
    // Last match: the default branch declares `Ordering::Release` too;
    // the mutated seqcst branch is the later declaration.
    let line = mutated
        .get(ORDERING)
        .unwrap()
        .text
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("const RELEASE: Ordering = Ordering::Release;"))
        .map(|(i, _)| i + 1)
        .last()
        .unwrap();
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    assert_finding(
        &findings,
        Pass::Ordering,
        ORDERING,
        line,
        "does not collapse to SeqCst",
    );
    // Under the seqcst flavour the same break also fires per-site.
    let seqcst = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::SeqCst,
    );
    assert!(
        seqcst
            .iter()
            .any(|f| f.message.contains("not SeqCst") && f.file != ORDERING),
        "expected per-site seqcst findings: {seqcst:?}"
    );
}

#[test]
fn audit_table_drift_is_caught() {
    let (ws, inputs) = setup();
    let doc = inputs
        .doc
        .as_deref()
        .expect("docs/MEMORY_ORDERING.md present")
        .replacen(
            "`X.load` | **SeqCst load**",
            "`X.load` | **Acquire load**",
            1,
        );
    let line = line_of(&ws, FIG2, "self.x.load(ord::SEQ_CST)");
    let findings = ordering_pass(&ws, inputs.manifest.as_deref(), Some(&doc), Build::Default);
    assert_finding(&findings, Pass::Ordering, FIG2, line, "audit table");
}

#[test]
fn deleted_source_site_leaves_stale_manifest_row() {
    let (ws, inputs) = setup();
    // Replace the whole release with a mutex-free stub: both fig2
    // release sites vanish from the source but stay in the manifest.
    let mutated = ws.replace_in_file(FIG2, "self.x.fetch_add(1, ord::SEQ_CST);", "");
    let line = line_of(&ws, FIG2, "self.x.fetch_add(1, ord::SEQ_CST);");
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    assert_finding(
        &findings,
        Pass::Ordering,
        FIG2,
        line,
        "no longer exists in the source",
    );
}

#[test]
fn literal_ordering_in_waitfree_code_is_caught() {
    let (ws, inputs) = setup();
    let counter = "crates/waitfree/src/counter.rs";
    let mutated = ws.replace_in_file(
        counter,
        "fetch_add(delta, SEQ_CST)",
        "fetch_add(delta, Ordering::SeqCst)",
    );
    let line = line_of(&mutated, counter, "Ordering::SeqCst)");
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    assert_finding(
        &findings,
        Pass::Ordering,
        counter,
        line,
        "audited wait-free layer",
    );
}

#[test]
fn literal_ordering_in_store_code_is_caught() {
    let (ws, inputs) = setup();
    let object = "crates/store/src/object.rs";
    let mutated = ws.replace_in_file(
        object,
        "self.len.fetch_add(1, SEQ_CST)",
        "self.len.fetch_add(1, Ordering::SeqCst)",
    );
    let line = line_of(&mutated, object, "Ordering::SeqCst)");
    let findings = ordering_pass(
        &mutated,
        inputs.manifest.as_deref(),
        inputs.doc.as_deref(),
        Build::Default,
    );
    assert_finding(
        &findings,
        Pass::Ordering,
        object,
        line,
        "audited store layer",
    );
}

#[test]
fn facade_bypass_in_store_code_is_caught() {
    let (ws, _) = setup();
    let shard = "crates/store/src/shard.rs";
    let mutated = ws.append_to_file(shard, "\nuse std::sync::atomic::AtomicU64 as Direct;\n");
    let line = line_of(
        &mutated,
        shard,
        "use std::sync::atomic::AtomicU64 as Direct;",
    );
    let findings = facade_pass(&mutated);
    assert_finding(
        &findings,
        Pass::Facade,
        shard,
        line,
        "bypasses the `kex_util::sync` facade",
    );
}

// ---------------------------------------------------------------------------
// Ordering-obligation mutations
// ---------------------------------------------------------------------------

/// Rewrites one manifest site's string field in a parsed JSON copy.
fn with_site_field(manifest: &str, file: &str, line: usize, field: &str, value: &str) -> String {
    let mut doc = json::parse(manifest).expect("parse manifest");
    let Json::Obj(pairs) = &mut doc else {
        panic!("manifest is not an object")
    };
    let Some((_, Json::Arr(sites))) = pairs.iter_mut().find(|(k, _)| k == "sites") else {
        panic!("manifest has no sites")
    };
    let site = sites
        .iter_mut()
        .find(|s| {
            s.get("file").and_then(Json::as_str) == Some(file)
                && s.get("line").and_then(Json::as_u64) == Some(line as u64)
        })
        .unwrap_or_else(|| panic!("no manifest site {file}:{line}"));
    let Json::Obj(pairs) = site else {
        unreachable!()
    };
    let (_, v) = pairs
        .iter_mut()
        .find(|(k, _)| k == field)
        .unwrap_or_else(|| panic!("{file}:{line} has no `{field}`"));
    *v = Json::Str(value.to_string());
    doc.to_string_pretty()
}

/// One notch down the ordering lattice, per op shape.
fn weakened(ordering: &str, op: &str) -> Option<&'static str> {
    match ordering {
        "SeqCst" => Some(match op {
            "load" => "Acquire",
            "store" => "Release",
            _ => "AcqRel",
        }),
        "AcqRel" => Some("Acquire"),
        "Acquire" | "Release" => Some("Relaxed"),
        _ => None, // Relaxed: nothing left to weaken
    }
}

/// The full mutation matrix: weakening any non-Relaxed manifest site by
/// one notch must produce an obligation finding at that exact site —
/// except the two registry sites whose SeqCst is conservatism, not a
/// proof obligation (their tolerance is itself pinned here: if the
/// exception list drifts, this test fails).
#[test]
fn weakening_any_load_bearing_site_is_caught() {
    let (_, inputs) = setup();
    let manifest = inputs.manifest.as_deref().expect("manifest present");
    let entries = parse_manifest(manifest).expect("parse");
    let tolerated = [
        ("crates/core/src/native/registry.rs", "swap"),
        ("crates/core/src/native/registry.rs", "store"),
    ];
    let cfg = Config::default();
    let mut weakened_sites = 0;
    for entry in &entries {
        let Some(weaker) = weakened(&entry.ordering, &entry.op) else {
            continue;
        };
        weakened_sites += 1;
        let mutated = with_site_field(manifest, &entry.file, entry.line, "ordering", weaker);
        let findings = obligation_pass(Some(&mutated), &cfg);
        let at_site = findings
            .iter()
            .filter(|f| f.pass == Pass::Obligation && f.file == entry.file && f.line == entry.line)
            .count();
        if tolerated.contains(&(entry.file.as_str(), entry.op.as_str())) {
            assert_eq!(
                at_site, 0,
                "{}:{} ({} {} -> {weaker}) is in the tolerated set but fired: {findings:?}",
                entry.file, entry.line, entry.op, entry.ordering,
            );
        } else {
            assert!(
                at_site > 0,
                "weakening {}:{} ({} {} -> {weaker}) escaped the obligation pass",
                entry.file,
                entry.line,
                entry.op,
                entry.ordering,
            );
        }
    }
    assert!(
        weakened_sites >= 50,
        "mutation matrix collapsed: only {weakened_sites} non-Relaxed sites"
    );
}

#[test]
fn relaxed_on_obligated_site_is_hard_error() {
    let (ws, inputs) = setup();
    let manifest = inputs.manifest.as_deref().unwrap();
    // fig2's `x` handshake load: the IR derives a SeqCst obligation
    // (Dekker pair with `q`), so a Relaxed claim is the worst case.
    let line = line_of(&ws, FIG2, "self.x.load(ord::SEQ_CST)");
    let mutated = with_site_field(manifest, FIG2, line, "ordering", "Relaxed");
    let findings = obligation_pass(Some(&mutated), &Config::default());
    assert_finding(
        &findings,
        Pass::Obligation,
        FIG2,
        line,
        "a Relaxed claim on an obligated site is a hard error",
    );
}

#[test]
fn manifest_role_drift_is_caught() {
    let (ws, inputs) = setup();
    let manifest = inputs.manifest.as_deref().unwrap();
    let line = line_of(&ws, FIG2, "self.q.load(ord::ACQUIRE)");
    let mutated = with_site_field(manifest, FIG2, line, "role", "private");
    let findings = obligation_pass(Some(&mutated), &Config::default());
    assert_finding(
        &findings,
        Pass::Obligation,
        FIG2,
        line,
        "does not match the role `spin`",
    );
}

#[test]
fn unknown_manifest_role_is_caught() {
    let (ws, inputs) = setup();
    let manifest = inputs.manifest.as_deref().unwrap();
    let line = line_of(&ws, FIG2, "self.q.load(ord::ACQUIRE)");
    let mutated = with_site_field(manifest, FIG2, line, "role", "frobnicate");
    let findings = obligation_pass(Some(&mutated), &Config::default());
    assert_finding(&findings, Pass::Obligation, FIG2, line, "is not one of");
}

// ---------------------------------------------------------------------------
// Facade and spin mutations
// ---------------------------------------------------------------------------

#[test]
fn facade_bypass_is_caught() {
    let (ws, _) = setup();
    let tree = "crates/core/src/native/tree.rs";
    let mutated = ws.append_to_file(tree, "\nuse std::sync::atomic::AtomicUsize as Direct;\n");
    let line = line_of(
        &mutated,
        tree,
        "use std::sync::atomic::AtomicUsize as Direct;",
    );
    let findings = facade_pass(&mutated);
    assert_finding(
        &findings,
        Pass::Facade,
        tree,
        line,
        "bypasses the `kex_util::sync` facade",
    );
}

#[test]
fn facade_lint_ignores_comments_and_test_scaffolding_keeps_failing() {
    let (ws, _) = setup();
    // A comment mention must NOT fire...
    let tree = "crates/core/src/native/tree.rs";
    let commented = ws.append_to_file(tree, "\n// std::sync::atomic is banned here\n");
    assert!(facade_pass(&commented).is_empty());
    // ...but a cfg(test) import must: loom still compiles test modules,
    // so the facade applies there too (the PR-5 satellite fixes).
    let mutated = ws.replace_in_file(
        "crates/core/src/native/assignment.rs",
        "use kex_util::sync::atomic::{AtomicUsize, Ordering::SeqCst};",
        "use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};",
    );
    let findings = facade_pass(&mutated);
    let line = line_of(
        &mutated,
        "crates/core/src/native/assignment.rs",
        "use std::sync::atomic",
    );
    assert_finding(
        &findings,
        Pass::Facade,
        "crates/core/src/native/assignment.rs",
        line,
        "bypasses",
    );
}

#[test]
fn raw_spin_loop_is_caught() {
    let (ws, _) = setup();
    let mutated = ws.replace_in_file(
        FIG2,
        "let backoff = Backoff::new();\n                while self.q.load(ord::ACQUIRE) == p {\n                    backoff.snooze();\n                }",
        "while self.q.load(ord::ACQUIRE) == p {\n                }",
    );
    let line = line_of(&mutated, FIG2, "while self.q.load(ord::ACQUIRE)");
    let findings = spin_pass(&mutated);
    assert_finding(&findings, Pass::Spin, FIG2, line, "without facade backoff");
}

// ---------------------------------------------------------------------------
// Cross-layer drift mutations
// ---------------------------------------------------------------------------

/// Drops every runtime-registry record for `loc` from a
/// `BENCH_native.json` document.
fn bench_without(text: &str, loc: &str) -> String {
    fn walk(j: &mut Json, loc: &str) {
        match j {
            Json::Arr(items) => {
                items.retain(|it| {
                    it.get("location")
                        .and_then(Json::as_str)
                        .is_none_or(|l| !l.ends_with(loc))
                });
                for it in items {
                    walk(it, loc);
                }
            }
            Json::Obj(pairs) => {
                for (_, v) in pairs {
                    walk(v, loc);
                }
            }
            _ => {}
        }
    }
    let mut doc = json::parse(text).expect("parse BENCH_native.json");
    walk(&mut doc, loc);
    doc.to_string_pretty()
}

#[test]
fn deleted_runtime_site_registration_is_caught() {
    let (ws, inputs) = setup();
    let line = line_of(&ws, FIG2, "self.x.fetch_sub(1, ord::SEQ_CST)");
    let loc = format!("{FIG2}:{line}");
    let bench = bench_without(inputs.bench.as_deref().expect("BENCH_native.json"), &loc);
    let findings = drift_pass(
        &ws,
        inputs.manifest.as_deref(),
        Some(&bench),
        &Config::default(),
    );
    assert_finding(
        &findings,
        Pass::Drift,
        FIG2,
        line,
        "BENCH_native.json no longer records it",
    );
}

#[test]
fn truncated_runtime_registry_is_reported_not_silently_clean() {
    let (ws, inputs) = setup();
    let mut doc = json::parse(inputs.bench.as_deref().unwrap()).unwrap();
    fn set_first_truncation(j: &mut Json) -> bool {
        match j {
            Json::Obj(pairs) => {
                for (k, v) in pairs.iter_mut() {
                    if k == "sites_truncated" {
                        *v = Json::Bool(true);
                        return true;
                    }
                    if set_first_truncation(v) {
                        return true;
                    }
                }
                false
            }
            Json::Arr(items) => items.iter_mut().any(set_first_truncation),
            _ => false,
        }
    }
    assert!(
        set_first_truncation(&mut doc),
        "no sites_truncated field to mutate"
    );
    let findings = drift_pass(
        &ws,
        inputs.manifest.as_deref(),
        Some(&doc.to_string_pretty()),
        &Config::default(),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.pass == Pass::Drift && f.message.contains("truncated")),
        "SITE_CAP overflow must surface as a finding: {findings:?}"
    );
}

#[test]
fn unknown_runtime_site_is_caught() {
    let (ws, inputs) = setup();
    // Inject a fabricated registry record pointing at a line with no
    // audited source site.
    let bench = inputs.bench.as_deref().unwrap().replacen(
        "\"location\": \"crates/core/src/native/fig2.rs:40\"",
        "\"location\": \"crates/core/src/native/fig2.rs:41\"",
        1,
    );
    let findings = drift_pass(
        &ws,
        inputs.manifest.as_deref(),
        Some(&bench),
        &Config::default(),
    );
    assert_finding(
        &findings,
        Pass::Drift,
        FIG2,
        41,
        "the source inventory has none",
    );
}

#[test]
fn ir_variable_drift_is_caught() {
    let (ws, inputs) = setup();
    let manifest = inputs.manifest.as_deref().unwrap();
    let mut doc = json::parse(manifest).unwrap();
    let sites = match doc.get("sites") {
        Some(Json::Arr(_)) => match &mut doc {
            Json::Obj(pairs) => match pairs.iter_mut().find(|(k, _)| k == "sites") {
                Some((_, Json::Arr(sites))) => sites,
                _ => unreachable!(),
            },
            _ => unreachable!(),
        },
        _ => panic!("manifest has no sites"),
    };
    let (file, line) = {
        let site = sites
            .iter_mut()
            .find(|s| s.get("ir").is_some_and(|ir| ir.as_str().is_some()))
            .expect("at least one IR-linked site");
        match site {
            Json::Obj(pairs) => {
                for (k, v) in pairs.iter_mut() {
                    if k == "ir" {
                        *v = Json::Str("no_such_var".into());
                    }
                }
            }
            _ => unreachable!(),
        }
        (
            site.get("file").and_then(Json::as_str).unwrap().to_string(),
            site.get("line").and_then(Json::as_u64).unwrap() as usize,
        )
    };
    let findings = drift_pass(
        &ws,
        Some(&doc.to_string_pretty()),
        inputs.bench.as_deref(),
        &Config::default(),
    );
    assert_finding(
        &findings,
        Pass::Drift,
        &file,
        line,
        "declares no such variable",
    );
}

//! A resume-cached universal construction: same wait-free log as
//! [`crate::universal::Universal`], without the O(history) replay per
//! operation.
//!
//! The textbook construction recomputes its response by replaying the
//! whole log from the sentinel — simple and obviously correct, but the
//! per-operation cost grows without bound, which makes long-lived hot
//! objects impractical. `CachedUniversal` keeps, per process name, the
//! sequential state it had materialized after its previous operation
//! plus the log node that state corresponds to; the next operation
//! resumes the replay from there. Between two operations by the same
//! process at most the *other* `k-1` processes (and helpers) appended,
//! so the resume distance — and hence the amortized apply cost — is
//! `O(k)` instead of `O(history)`.
//!
//! The cache is sound because the log is append-only and immutable once
//! decided, and `S` is deterministic: replaying `cache.state` forward
//! over the decided successors reproduces exactly the state the full
//! replay would compute. Each per-name cache sits behind its own mutex;
//! the k-assignment contract (one live holder per name) makes those
//! locks uncontended, and helping never touches the caches, so
//! wait-freedom of the threading loop is unaffected.
//!
//! The equivalence tests drive this and the textbook construction with
//! identical operation streams and demand identical responses; the
//! `waitfree` criterion bench shows the asymptotic difference.

use kex_util::sync::atomic::{AtomicPtr, AtomicUsize};

use crate::ordering::SEQ_CST;
use kex_util::sync::Mutex;

use crate::consensus::PtrConsensus;
use crate::seq::Sequential;

struct Node<S: Sequential> {
    op: Option<S::Op>,
    decide_next: PtrConsensus<Node<S>>,
    seq: AtomicUsize,
}

impl<S: Sequential> Node<S> {
    fn new(op: Option<S::Op>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            op,
            decide_next: PtrConsensus::new(),
            seq: AtomicUsize::new(0),
        }))
    }
}

/// Per-name resume point: the materialized state *after* applying the
/// log up to and including `node`.
struct Cache<S: Sequential> {
    node: *mut Node<S>,
    state: S,
}

/// A linearizable `k`-process shared object with `O(k)` amortized
/// operation cost (see module docs). Drop-in alternative to
/// [`crate::universal::Universal`].
///
/// ```rust
/// use kex_waitfree::seq::{QueueOp, SeqQueue};
/// use kex_waitfree::CachedUniversal;
///
/// let q: CachedUniversal<SeqQueue<&str>> = CachedUniversal::new(2);
/// q.apply(0, QueueOp::Enqueue("job"));
/// assert_eq!(q.apply(1, QueueOp::Dequeue), Some("job"));
/// ```
pub struct CachedUniversal<S: Sequential + Clone> {
    announce: Vec<AtomicPtr<Node<S>>>,
    head: Vec<AtomicPtr<Node<S>>>,
    caches: Vec<Mutex<Option<Cache<S>>>>,
    tail: *mut Node<S>,
    k: usize,
}

unsafe impl<S: Sequential + Clone> Send for CachedUniversal<S>
where
    S: Send,
    S::Op: Send + Sync,
{
}
unsafe impl<S: Sequential + Clone> Sync for CachedUniversal<S>
where
    S: Send,
    S::Op: Send + Sync,
{
}

impl<S: Sequential + Clone> std::fmt::Debug for CachedUniversal<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedUniversal")
            .field("k", &self.k)
            .finish()
    }
}

impl<S: Sequential + Clone> CachedUniversal<S> {
    /// A fresh object (state `S::default()`) for `k` processes.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one process");
        let tail = Node::new(None);
        unsafe { (*tail).seq.store(1, SEQ_CST) };
        CachedUniversal {
            announce: (0..k).map(|_| AtomicPtr::new(tail)).collect(),
            head: (0..k).map(|_| AtomicPtr::new(tail)).collect(),
            caches: (0..k).map(|_| Mutex::new(None)).collect(),
            tail,
            k,
        }
    }

    /// The process bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    fn max_head(&self) -> *mut Node<S> {
        let mut best = self.tail;
        let mut best_seq = unsafe { (*best).seq.load(SEQ_CST) };
        for h in &self.head {
            let node = h.load(SEQ_CST);
            let seq = unsafe { (*node).seq.load(SEQ_CST) };
            if seq > best_seq {
                best = node;
                best_seq = seq;
            }
        }
        best
    }

    /// Apply `op` on behalf of name `me`; returns the linearized
    /// response. Amortized `O(k)` sequential-apply work per call.
    ///
    /// # Panics
    /// Panics if `me >= k`.
    pub fn apply(&self, me: usize, op: S::Op) -> S::Resp {
        assert!(me < self.k, "name {me} out of range 0..{}", self.k);
        let mine = Node::new(Some(op));
        self.announce[me].store(mine, SEQ_CST);
        self.head[me].store(self.max_head(), SEQ_CST);

        unsafe {
            // Identical wait-free threading loop to `Universal`.
            while (*mine).seq.load(SEQ_CST) == 0 {
                let before = self.head[me].load(SEQ_CST);
                let before_seq = (*before).seq.load(SEQ_CST);
                let help = self.announce[before_seq % self.k].load(SEQ_CST);
                let prefer = if (*help).seq.load(SEQ_CST) == 0 {
                    help
                } else {
                    mine
                };
                let after = (*before).decide_next.decide(prefer);
                (*after).seq.store(before_seq + 1, SEQ_CST);
                self.head[me].store(after, SEQ_CST);
            }
            self.head[me].store(mine, SEQ_CST);

            // Resume from this name's cache instead of the sentinel.
            let mut guard = self.caches[me].lock();
            let (mut cur, mut state) = match guard.take() {
                Some(cache) if (*cache.node).seq.load(SEQ_CST) <= (*mine).seq.load(SEQ_CST) => {
                    (cache.node, cache.state)
                }
                _ => (self.tail, S::default()),
            };
            // Walk the decided chain from `cur` (exclusive) to `mine`
            // (inclusive), applying operations.
            let mut resp = None;
            while cur != mine {
                let next = (*cur).decide_next.peek();
                debug_assert!(!next.is_null(), "chain broken before our node");
                let r = state.apply((*next).op.as_ref().expect("non-sentinel"));
                if next == mine {
                    resp = Some(r);
                }
                cur = next;
            }
            *guard = Some(Cache { node: mine, state });
            resp.expect("our node is on the chain")
        }
    }
}

impl<S: Sequential + Clone> Drop for CachedUniversal<S> {
    fn drop(&mut self) {
        unsafe {
            let mut cur = self.tail;
            while !cur.is_null() {
                let next = (*cur).decide_next.peek();
                drop(Box::from_raw(cur));
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{CounterOp, QueueOp, SeqCounter, SeqQueue};
    use crate::universal::Universal;
    use std::collections::HashSet;

    #[test]
    fn sequential_equivalence_with_the_textbook_construction() {
        let a: Universal<SeqQueue<u32>> = Universal::new(2);
        let b: CachedUniversal<SeqQueue<u32>> = CachedUniversal::new(2);
        let ops = [
            QueueOp::Enqueue(1),
            QueueOp::Enqueue(2),
            QueueOp::Dequeue,
            QueueOp::Enqueue(3),
            QueueOp::Dequeue,
            QueueOp::Dequeue,
            QueueOp::Dequeue,
        ];
        for (i, op) in ops.iter().enumerate() {
            let name = i % 2;
            assert_eq!(a.apply(name, op.clone()), b.apply(name, op.clone()));
        }
    }

    #[test]
    fn counter_linearizes_concurrent_increments() {
        let k = 4;
        let per = 300;
        let c: CachedUniversal<SeqCounter> = CachedUniversal::new(k);
        std::thread::scope(|s| {
            for name in 0..k {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..per {
                        c.apply(name, CounterOp::Add(1));
                    }
                });
            }
        });
        assert_eq!(c.apply(0, CounterOp::Get), (k * per) as i64);
    }

    #[test]
    fn queue_conserves_elements_under_concurrency() {
        let k = 3;
        let per = 150u32;
        let q: CachedUniversal<SeqQueue<u32>> = CachedUniversal::new(k);
        let popped: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|name| {
                    let q = &q;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..per {
                            q.apply(name, QueueOp::Enqueue(name as u32 * 1000 + i));
                            if let Some(v) = q.apply(name, QueueOp::Dequeue) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u32> = popped.into_iter().flatten().collect();
        while let Some(v) = q.apply(0, QueueOp::Dequeue) {
            all.push(v);
        }
        assert_eq!(all.len(), (k as u32 * per) as usize);
        let distinct: HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn long_log_stays_fast_enough_to_finish() {
        // 20k operations through one object: quadratic replay would make
        // this test crawl; the cache keeps it linear.
        let c: CachedUniversal<SeqCounter> = CachedUniversal::new(2);
        for i in 0..20_000 {
            c.apply((i % 2) as usize, CounterOp::Add(1));
        }
        assert_eq!(c.apply(0, CounterOp::Get), 20_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_names() {
        let c: CachedUniversal<SeqCounter> = CachedUniversal::new(2);
        c.apply(5, CounterOp::Get);
    }
}

//! A wait-free universal construction for `k` processes.
//!
//! This is the classic Herlihy construction: operations are *announced*,
//! threaded onto a totally ordered log by winning (or being helped
//! through) a CAS-based consensus per log cell, and responses are
//! computed by deterministically replaying the log prefix. Helping makes
//! it wait-free: a process that keeps losing consensus is eventually
//! pointed to by `(seq + 1) mod k` and every active process proposes *its*
//! announced node until it is threaded.
//!
//! This is exactly the kind of **wait-free k-process object** the paper's
//! methodology presumes (§1): wrap a `Universal<S>` for `k` processes in
//! a k-assignment wrapper (`kex_core::native::Resilient`) and the result
//! is a `(k-1)`-resilient, `N`-process shared object that is effectively
//! wait-free whenever contention stays at or below `k`.
//!
//! ## Costs and caveats
//!
//! * `apply` replays the whole log prefix to compute its response, so the
//!   amortized cost grows with history length — faithful to the textbook
//!   construction, fine for control-plane objects, wrong for hot
//!   counters (use [`crate::counter::SlotCounter`] for those).
//! * Log nodes are reclaimed when the `Universal` is dropped, not during
//!   operation (the log is the object's history and must stay readable
//!   by laggards).

use kex_util::sync::atomic::{AtomicPtr, AtomicUsize};

use crate::ordering::SEQ_CST;

use crate::consensus::PtrConsensus;
use crate::seq::Sequential;

/// One log cell: an announced operation plus the consensus machinery
/// that threads it.
struct Node<S: Sequential> {
    /// The operation; `None` only for the sentinel.
    op: Option<S::Op>,
    /// Consensus on the successor cell. Also the authoritative `next`
    /// pointer for traversal: it is set atomically at decision time, so
    /// the chain from the sentinel to any threaded node is never broken
    /// (a separate "next" field could lag behind the decision).
    decide_next: PtrConsensus<Node<S>>,
    /// Position in the log; 0 = not yet threaded, sentinel = 1.
    seq: AtomicUsize,
}

impl<S: Sequential> Node<S> {
    fn new(op: Option<S::Op>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            op,
            decide_next: PtrConsensus::new(),
            seq: AtomicUsize::new(0),
        }))
    }
}

/// A linearizable, wait-free shared object for `k` processes, built from
/// any deterministic [`Sequential`] specification.
///
/// Process identities are *names* in `0..k` — pass each operation the
/// name of the calling process. Two concurrent calls with the same name
/// are a logic error (the k-assignment wrapper rules them out by
/// construction).
///
/// ```rust
/// use kex_waitfree::seq::{CounterOp, SeqCounter};
/// use kex_waitfree::Universal;
///
/// let counter: Universal<SeqCounter> = Universal::new(3);
/// counter.apply(0, CounterOp::Add(5));
/// counter.apply(2, CounterOp::Add(-2));
/// assert_eq!(counter.apply(1, CounterOp::Get), 3);
/// ```
pub struct Universal<S: Sequential> {
    announce: Vec<AtomicPtr<Node<S>>>,
    head: Vec<AtomicPtr<Node<S>>>,
    tail: *mut Node<S>,
    k: usize,
}

// SAFETY: all shared mutable state is behind atomics; nodes are written
// once (at creation) before being published and are immutable afterwards
// except for their atomic fields. `S` itself is only materialized
// thread-locally during replay.
unsafe impl<S: Sequential> Send for Universal<S> where S::Op: Send + Sync {}
unsafe impl<S: Sequential> Sync for Universal<S> where S::Op: Send + Sync {}

impl<S: Sequential> std::fmt::Debug for Universal<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Universal").field("k", &self.k).finish()
    }
}

impl<S: Sequential> Universal<S> {
    /// A fresh object (state `S::default()`) for `k` processes.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one process");
        let tail = Node::new(None);
        // The sentinel occupies log position 1.
        unsafe { (*tail).seq.store(1, SEQ_CST) };
        Universal {
            announce: (0..k).map(|_| AtomicPtr::new(tail)).collect(),
            head: (0..k).map(|_| AtomicPtr::new(tail)).collect(),
            tail,
            k,
        }
    }

    /// The process bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The node with the largest sequence number among the per-process
    /// heads (every threaded node is reachable from it via `next`).
    fn max_head(&self) -> *mut Node<S> {
        let mut best = self.tail;
        let mut best_seq = unsafe { (*best).seq.load(SEQ_CST) };
        for h in &self.head {
            let node = h.load(SEQ_CST);
            let seq = unsafe { (*node).seq.load(SEQ_CST) };
            if seq > best_seq {
                best = node;
                best_seq = seq;
            }
        }
        best
    }

    /// Apply `op` on behalf of the process named `me` (`0..k`); returns
    /// the linearized response.
    ///
    /// Wait-free: completes in `O(k)` consensus rounds plus one log
    /// replay, regardless of the scheduling (or crash) of other
    /// processes.
    ///
    /// # Panics
    /// Panics if `me >= k`.
    pub fn apply(&self, me: usize, op: S::Op) -> S::Resp {
        assert!(me < self.k, "name {me} out of range 0..{}", self.k);
        let mine = Node::new(Some(op));
        self.announce[me].store(mine, SEQ_CST);
        self.head[me].store(self.max_head(), SEQ_CST);

        unsafe {
            while (*mine).seq.load(SEQ_CST) == 0 {
                let before = self.head[me].load(SEQ_CST);
                let before_seq = (*before).seq.load(SEQ_CST);
                // Help the process whose turn it is; otherwise push our
                // own node.
                let help = self.announce[before_seq % self.k].load(SEQ_CST);
                let prefer = if (*help).seq.load(SEQ_CST) == 0 {
                    help
                } else {
                    mine
                };
                let after = (*before).decide_next.decide(prefer);
                (*after).seq.store(before_seq + 1, SEQ_CST);
                self.head[me].store(after, SEQ_CST);
            }
            self.head[me].store(mine, SEQ_CST);

            // Replay the log up to (and including) our node, following
            // the decided successor chain (complete by construction).
            let mut state = S::default();
            let mut cur = (*self.tail).decide_next.peek();
            loop {
                debug_assert!(!cur.is_null(), "log ended before our node");
                let resp = state.apply((*cur).op.as_ref().expect("non-sentinel"));
                if cur == mine {
                    return resp;
                }
                cur = (*cur).decide_next.peek();
            }
        }
    }

    /// Replay the whole current log into a fresh state and return it —
    /// a linearizable snapshot of the object as of some point during the
    /// call. Used by tests and for draining an object at shutdown.
    pub fn replay(&self) -> S {
        let mut state = S::default();
        unsafe {
            let stop = self.max_head();
            if (*stop).seq.load(SEQ_CST) <= 1 {
                return state;
            }
            let mut cur = (*self.tail).decide_next.peek();
            loop {
                if cur.is_null() {
                    break;
                }
                state.apply((*cur).op.as_ref().expect("non-sentinel"));
                if cur == stop {
                    break;
                }
                cur = (*cur).decide_next.peek();
            }
        }
        state
    }
}

impl<S: Sequential> Drop for Universal<S> {
    fn drop(&mut self) {
        // With exclusive access every announced node has been threaded,
        // so walking the log (via the *decided* pointers, which are
        // complete even where `next` lags) frees everything exactly once.
        unsafe {
            let mut cur = self.tail;
            while !cur.is_null() {
                let next = (*cur).decide_next.peek();
                drop(Box::from_raw(cur));
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{CounterOp, QueueOp, SeqCounter, SeqQueue};
    use std::collections::HashSet;

    #[test]
    fn sequential_use_matches_the_spec() {
        let q: Universal<SeqQueue<u32>> = Universal::new(2);
        assert_eq!(q.apply(0, QueueOp::Enqueue(1)), None);
        assert_eq!(q.apply(1, QueueOp::Enqueue(2)), None);
        assert_eq!(q.apply(0, QueueOp::Dequeue), Some(1));
        assert_eq!(q.apply(0, QueueOp::Dequeue), Some(2));
        assert_eq!(q.apply(1, QueueOp::Dequeue), None);
    }

    #[test]
    fn counter_linearizes_concurrent_increments() {
        let k = 4;
        let per = 200;
        let c: Universal<SeqCounter> = Universal::new(k);
        std::thread::scope(|s| {
            for name in 0..k {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..per {
                        c.apply(name, CounterOp::Add(1));
                    }
                });
            }
        });
        assert_eq!(c.apply(0, CounterOp::Get), (k * per) as i64);
    }

    #[test]
    fn queue_never_duplicates_or_loses_elements() {
        let k = 3;
        let per = 100u32;
        let q: Universal<SeqQueue<u32>> = Universal::new(k);
        let popped: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|name| {
                    let q = &q;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..per {
                            q.apply(name, QueueOp::Enqueue(name as u32 * 1000 + i));
                            if let Some(v) = q.apply(name, QueueOp::Dequeue) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Drain the remainder.
        let mut all: Vec<u32> = popped.into_iter().flatten().collect();
        while let Some(v) = q.apply(0, QueueOp::Dequeue) {
            all.push(v);
        }
        assert_eq!(
            all.len(),
            (k as u32 * per) as usize,
            "lost or duplicated items"
        );
        let distinct: HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len(), "duplicated items");
    }

    #[test]
    fn responses_are_linearizable_per_process_fifo() {
        // Each process enqueues an increasing sequence; any dequeuer must
        // observe each process's items in order (FIFO queue + program
        // order).
        let k = 3;
        let per = 80u32;
        let q: Universal<SeqQueue<(usize, u32)>> = Universal::new(k);
        let seen: Vec<Vec<(usize, u32)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|name| {
                    let q = &q;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..per {
                            q.apply(name, QueueOp::Enqueue((name, i)));
                            if let Some(v) = q.apply(name, QueueOp::Dequeue) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<(usize, u32)> = seen.into_iter().flatten().collect();
        while let Some(v) = q.apply(0, QueueOp::Dequeue) {
            all.push(v);
        }
        // Gather per-producer orders as dequeued from the FIFO: since the
        // queue is FIFO and each producer enqueues in program order, the
        // global dequeue order restricted to one producer must be sorted.
        // (all combines per-thread pops and the final drain, which is a
        // suffix of the FIFO order; checking the drain suffix suffices.)
        let drain_start = all.len().saturating_sub(10);
        let drain = &all[drain_start..];
        for name in 0..k {
            let seqs: Vec<u32> = drain
                .iter()
                .filter(|(n, _)| *n == name)
                .map(|(_, i)| *i)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "producer {name} items reordered: {seqs:?}"
            );
        }
    }

    #[test]
    fn replay_reconstructs_the_state() {
        let q: Universal<SeqQueue<u8>> = Universal::new(2);
        q.apply(0, QueueOp::Enqueue(7));
        q.apply(1, QueueOp::Enqueue(9));
        q.apply(0, QueueOp::Dequeue);
        let mut replayed = q.replay();
        use crate::seq::Sequential;
        assert_eq!(replayed.apply(&QueueOp::Dequeue), Some(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_names() {
        let c: Universal<SeqCounter> = Universal::new(2);
        c.apply(2, CounterOp::Get);
    }

    #[test]
    fn drop_frees_without_crashing_after_heavy_use() {
        let c: Universal<SeqCounter> = Universal::new(3);
        std::thread::scope(|s| {
            for name in 0..3 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..500 {
                        c.apply(name, CounterOp::Add(1));
                    }
                });
            }
        });
        drop(c); // exercised under ASAN-less CI by sheer volume
    }
}

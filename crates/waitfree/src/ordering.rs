//! Named ordering constant for the wait-free layer.
//!
//! Mirrors `kex_core::native::ordering`: every non-test atomic access
//! in this crate names its ordering through a constant defined here
//! instead of spelling a literal `Ordering::*`, so the kex-lint
//! ordering-policy pass can audit the crate the same way it audits the
//! native hot paths. The wait-free constructions are uniformly SeqCst
//! by design — helping protocols race on shared cells (announce
//! arrays, consensus objects, versioned pointers) in patterns none of
//! the weaker orders license — so there is exactly one constant.

use kex_util::sync::atomic::Ordering;

/// The single ordering the wait-free layer uses.
pub(crate) const SEQ_CST: Ordering = Ordering::SeqCst;

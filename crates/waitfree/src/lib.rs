//! # kex-waitfree — wait-free `k`-process shared objects
//!
//! The payload side of the PODC '94 methodology: Anderson & Moir's
//! resiliency wrapper (`kex_core::native::Resilient`) turns a wait-free
//! **k-process** object into a `(k-1)`-resilient **N-process** object.
//! This crate supplies such k-process objects:
//!
//! * [`universal::Universal`] — Herlihy's wait-free universal
//!   construction over any deterministic [`seq::Sequential`]
//!   specification (CAS consensus + helping + log replay).
//! * [`queue::WfQueue`] / [`queue::WfStack`] — typed instantiations.
//! * [`snapshot::Snapshot`] — the Afek et al. wait-free atomic snapshot.
//! * [`counter::SlotCounter`] — per-name slotted counter, the
//!   contention-free shape that a bounded name space makes possible.
//!
//! All objects take the calling process's *name* (`0..k`) explicitly —
//! exactly what the k-assignment wrapper hands out.
//!
//! ```rust
//! use kex_waitfree::queue::WfQueue;
//!
//! let q: WfQueue<u32> = WfQueue::new(3); // 3 names
//! q.enqueue(0, 7);
//! assert_eq!(q.dequeue(2), Some(7));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cached;
pub mod consensus;
pub mod counter;
mod ordering;
pub mod queue;
pub mod register;
pub mod seq;
pub mod snapshot;
pub mod universal;

pub use cached::CachedUniversal;
pub use counter::{FetchAddCounter, SlotCounter};
pub use queue::{WfQueue, WfStack};
pub use register::WfRegister;
pub use seq::Sequential;
pub use snapshot::Snapshot;
pub use universal::Universal;

//! Typed wait-free queue and stack, instantiating the universal
//! construction — ready-made payloads for the resiliency wrapper.

use crate::seq::{QueueOp, SeqQueue, SeqStack, StackOp};
use crate::universal::Universal;

/// A linearizable, wait-free FIFO queue for `k` processes.
#[derive(Debug)]
pub struct WfQueue<T: Clone + Send + Sync> {
    inner: Universal<SeqQueue<T>>,
}

impl<T: Clone + Send + Sync> WfQueue<T> {
    /// An empty queue for `k` processes.
    pub fn new(k: usize) -> Self {
        WfQueue {
            inner: Universal::new(k),
        }
    }

    /// The process bound `k`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Enqueue `value` on behalf of name `me`.
    pub fn enqueue(&self, me: usize, value: T) {
        self.inner.apply(me, QueueOp::Enqueue(value));
    }

    /// Dequeue the head, if any, on behalf of name `me`.
    pub fn dequeue(&self, me: usize) -> Option<T> {
        self.inner.apply(me, QueueOp::Dequeue)
    }
}

/// A linearizable, wait-free LIFO stack for `k` processes.
#[derive(Debug)]
pub struct WfStack<T: Clone + Send + Sync> {
    inner: Universal<SeqStack<T>>,
}

impl<T: Clone + Send + Sync> WfStack<T> {
    /// An empty stack for `k` processes.
    pub fn new(k: usize) -> Self {
        WfStack {
            inner: Universal::new(k),
        }
    }

    /// The process bound `k`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Push `value` on behalf of name `me`.
    pub fn push(&self, me: usize, value: T) {
        self.inner.apply(me, StackOp::Push(value));
    }

    /// Pop the most recent value, if any, on behalf of name `me`.
    pub fn pop(&self, me: usize) -> Option<T> {
        self.inner.apply(me, StackOp::Pop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_round_trip() {
        let q = WfQueue::new(2);
        q.enqueue(0, "a");
        q.enqueue(1, "b");
        assert_eq!(q.dequeue(0), Some("a"));
        assert_eq!(q.dequeue(1), Some("b"));
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn stack_round_trip() {
        let s = WfStack::new(2);
        s.push(0, 1);
        s.push(1, 2);
        assert_eq!(s.pop(0), Some(2));
        assert_eq!(s.pop(1), Some(1));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn concurrent_stack_conserves_elements() {
        let k = 3;
        let per = 60;
        let s = WfStack::new(k);
        let popped: Vec<Vec<u32>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..k)
                .map(|me| {
                    let s = &s;
                    sc.spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..per {
                            s.push(me, (me * 1000 + i) as u32);
                            if let Some(v) = s.pop(me) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u32> = popped.into_iter().flatten().collect();
        while let Some(v) = s.pop(0) {
            all.push(v);
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), k * per, "lost or duplicated stack elements");
    }
}
